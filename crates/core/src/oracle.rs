//! The top-level pin access oracle.

use crate::apgen::{generate_pin_access_points_scratch, AccessPoint, ApGenConfig, ApScratch};
use crate::budget::{
    BudgetAllocator, CancelReason, CancelToken, DeadlineReport, PhaseFractions, RunBudget,
    SkipRecord, StallRecord,
};
use crate::cluster::select_patterns_budget;
use crate::error::{FaultRecord, PaoError, Phase};
use crate::parallel::{parallel_map_budget, ExecReport, ItemFault, PhaseBudget};
use crate::pattern::{generate_patterns, AccessPattern, PatternConfig};
use crate::persist::{aps_fingerprint, ApgenSnapshot, CheckpointStore, PatternSnapshot};
use crate::stats::PaoStats;
use crate::unique::{
    build_instance_context, extract_unique_instances, local_pin_owner, pin_owner, UniqueInstance,
    UniqueInstanceId,
};
use pao_design::{CompId, Design};
use pao_drc::{DrcEngine, DrcScratch, Owner, ShapeSet};
use pao_geom::Rect;
use pao_tech::{LayerId, MacroClass, Tech};
use std::time::Instant;

/// Configuration of the whole three-step analysis.
#[derive(Debug, Clone)]
pub struct PaoConfig {
    /// Step-1 (access point generation) settings.
    pub apgen: ApGenConfig,
    /// Step-2/3 (pattern generation/selection) settings.
    pub pattern: PatternConfig,
    /// Worker threads for every compute phase (AP generation, pattern
    /// DPs, cluster-group selection, repair scans, failed-pin audit).
    /// Defaults to the machine's available parallelism; `1` reproduces
    /// the paper's single-threaded measurement mode bit for bit (the
    /// paper lists multi-threading as future work — implemented here,
    /// with output guaranteed identical for every thread count).
    pub threads: usize,
    /// Post-selection repair rounds (rip-up and re-place of residual
    /// dirty access points, mirroring the router's per-pin freedom).
    /// 0 disables repair — use that to measure the selection stage alone.
    pub repair_rounds: usize,
}

/// The default worker count: all available hardware parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Default for PaoConfig {
    fn default() -> PaoConfig {
        PaoConfig {
            apgen: ApGenConfig::default(),
            pattern: PatternConfig::default(),
            threads: default_threads(),
            repair_rounds: 3,
        }
    }
}

/// Per-unique-instance analysis result.
#[derive(Debug, Clone)]
pub struct UniqueInstanceAccess {
    /// The unique instance this data describes.
    pub info: UniqueInstance,
    /// Access points per master pin (indexed like the master's pin list;
    /// supply pins and pins without geometry have empty lists). Positions
    /// are in the representative's die frame.
    pub pin_aps: Vec<Vec<AccessPoint>>,
    /// The analyzed pin ordering (indices into the master pin list).
    pub pin_order: Vec<usize>,
    /// Generated access patterns over `pin_order`.
    pub patterns: Vec<AccessPattern>,
}

/// The complete result of [`PinAccessOracle::analyze`].
#[derive(Debug, Clone)]
pub struct PaoResult {
    /// Per-unique-instance access data.
    pub unique: Vec<UniqueInstanceAccess>,
    /// Unique instance of each component (`None` for unknown masters).
    pub comp_uniq: Vec<Option<UniqueInstanceId>>,
    /// Selected pattern per component (`None` when no pattern exists).
    pub selection: Vec<Option<usize>>,
    /// Per-pin repair overrides (die-frame access points) applied after
    /// cluster selection, exactly as the downstream router would deviate
    /// from a pattern when a specific pin demands a different AP.
    pub overrides: std::collections::HashMap<(CompId, usize), AccessPoint>,
    /// Run statistics (Tables II/III raw numbers).
    pub stats: PaoStats,
}

impl PaoResult {
    /// The selected access point for `(comp, pin_idx)`, translated into
    /// the component's die frame. `None` when the pin failed analysis.
    #[must_use]
    pub fn access_point(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Option<AccessPoint> {
        if let Some(ap) = self.overrides.get(&(comp, pin_idx)) {
            return Some(ap.clone());
        }
        let ui = self.comp_uniq.get(comp.index()).copied().flatten()?;
        let u = &self.unique[ui.index()];
        let sel = self.selection.get(comp.index()).copied().flatten()?;
        let pat = u.patterns.get(sel)?;
        let pos_in_order = u.pin_order.iter().position(|&p| p == pin_idx)?;
        let ap_idx = *pat.choice.get(pos_in_order)?;
        let mut ap = u.pin_aps[pin_idx].get(ap_idx)?.clone();
        let delta = design.component(comp).location - design.component(u.info.rep).location;
        ap.pos += delta;
        Some(ap)
    }

    /// All access points of `(comp, pin_idx)` (not just the selected one),
    /// translated into the component's die frame.
    #[must_use]
    pub fn all_access_points(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Vec<AccessPoint> {
        let Some(ui) = self.comp_uniq.get(comp.index()).copied().flatten() else {
            return Vec::new();
        };
        let u = &self.unique[ui.index()];
        let delta = design.component(comp).location - design.component(u.info.rep).location;
        u.pin_aps
            .get(pin_idx)
            .map(|aps| {
                aps.iter()
                    .map(|ap| {
                        let mut ap = ap.clone();
                        ap.pos += delta;
                        ap
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// The pin access oracle: runs the three-step PAAF analysis on a placed
/// design (see the [crate docs](crate) for the algorithm outline).
#[derive(Debug, Clone, Default)]
pub struct PinAccessOracle {
    config: PaoConfig,
}

impl PinAccessOracle {
    /// Creates an oracle with the paper's default parameters
    /// (`k = 3`, `α = 0.3`, up to 3 patterns, BCA and history costs on).
    #[must_use]
    pub fn new() -> PinAccessOracle {
        PinAccessOracle::default()
    }

    /// Creates an oracle with custom parameters.
    #[must_use]
    pub fn with_config(config: PaoConfig) -> PinAccessOracle {
        PinAccessOracle { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PaoConfig {
        &self.config
    }

    /// Runs the full three-step analysis.
    ///
    /// When [`pao_obs::enable_metrics`] is on, the run's `apgen.*` /
    /// `pattern.*` / `select.*` / `repair.*` counters land in
    /// [`PaoStats::metrics`] (as a delta, so back-to-back runs in one
    /// process stay separable). When [`pao_obs::enable_trace`] is on,
    /// every phase and every work item records spans collectable with
    /// [`pao_obs::take_trace`].
    #[must_use]
    pub fn analyze(&self, tech: &Tech, design: &Design) -> PaoResult {
        self.analyze_with_budget(tech, design, RunBudget::unlimited())
    }

    /// [`analyze`](Self::analyze) under a [`RunBudget`]: an optional
    /// wall-clock deadline split across the five phases (see
    /// [`BudgetAllocator`]), an optional stall watchdog, and an optional
    /// phase-granular checkpoint store.
    ///
    /// This is the *anytime* entry point — it **always returns a usable
    /// result**. When the budget expires mid-phase, in-flight items
    /// finish, unstarted items degrade exactly like quarantined ones
    /// (skipped apgen/pattern instance → empty access, select group →
    /// default patterns, repair scan → not-dirty, audit pin → counted
    /// failed), and the cuts are reported in
    /// [`PaoStats::deadline`](crate::stats::PaoStats::deadline). With a
    /// checkpoint store attached, completed apgen/pattern work is
    /// persisted after each phase so a later `--resume` run completes the
    /// analysis without redoing it.
    #[must_use]
    pub fn analyze_with_budget(
        &self,
        tech: &Tech,
        design: &Design,
        budget: RunBudget<'_>,
    ) -> PaoResult {
        let RunBudget {
            deadline,
            fractions,
            watchdog,
            checkpoint,
        } = budget;
        let mut ckpt = checkpoint;
        let alloc = BudgetAllocator::new(deadline, fractions);
        let mut skips: Vec<SkipRecord> = Vec::new();
        let mut stalls: Vec<StallRecord> = Vec::new();
        let engine = DrcEngine::new(tech);
        let run_start = Instant::now();
        let metrics_before = pao_obs::metrics_enabled().then(pao_obs::snapshot);

        // ---- Step 1: unique instances + access point generation.
        let phase_span = pao_obs::span("phase.apgen");
        let t0 = Instant::now();
        let infos = extract_unique_instances(tech, design);
        let mut comp_uniq: Vec<Option<UniqueInstanceId>> = vec![None; design.components().len()];
        for info in &infos {
            for &m in &info.members {
                comp_uniq[m.index()] = Some(info.id);
            }
        }
        let apcfg = &self.config.apgen;
        let apgen_token = alloc.phase_token(Phase::Apgen);
        type ApgenItem = (UniqueInstanceAccess, usize, usize, usize, usize);
        let (analyzed, apgen_exec) = {
            let infos = &infos;
            let ck: Option<&CheckpointStore> = ckpt.as_deref();
            parallel_map_budget(
                self.config.threads,
                "apgen.instance",
                (0..infos.len()).collect::<Vec<_>>(),
                || (),
                move |(), idx| -> Result<ApgenItem, PaoError> {
                    let info = &infos[idx];
                    // Checkpoint restore: reuse the persisted snapshot when
                    // its signature (master/orient/phases + representative
                    // location) still matches this run's instance.
                    if let Some(snap) = ck.and_then(|c| c.apgen(idx)) {
                        if snap.master == info.master
                            && snap.orient == info.orient
                            && snap.phases == info.phases
                            && snap.rep_location == design.component(info.rep).location
                        {
                            pao_obs::counter_add("checkpoint.restored.apgen", 1);
                            return Ok((
                                UniqueInstanceAccess {
                                    info: info.clone(),
                                    pin_aps: snap.pin_aps.clone(),
                                    pin_order: Vec::new(),
                                    patterns: Vec::new(),
                                },
                                snap.total,
                                snap.dirty,
                                snap.without,
                                snap.off_track,
                            ));
                        }
                    }
                    let engine = DrcEngine::new(tech);
                    let Some(master) = tech.macro_by_name(&info.master) else {
                        return Err(PaoError::input(format!(
                            "unique instance {} (component `{}`) references unknown master `{}`",
                            info.id.index(),
                            design.component(info.rep).name,
                            info.master
                        )));
                    };
                    let ctx = build_instance_context(tech, design, info.rep);
                    let shapes = design.placed_pin_shapes(tech, info.rep);
                    let mut apcfg = apcfg.clone();
                    if master.class == MacroClass::Block {
                        // Macro pins: planar access acceptable.
                        apcfg.require_via = false;
                    }
                    let mut pin_aps: Vec<Vec<AccessPoint>> = vec![Vec::new(); master.pins.len()];
                    let (mut total, mut dirty, mut without, mut off_track) =
                        (0usize, 0usize, 0usize, 0usize);
                    // One scratch per instance context: the pins share coordinate
                    // buffers and memoized via probes (the audit below re-asks
                    // exactly the placements generation already checked).
                    let mut scratch = ApScratch::new();
                    for (pin_idx, pin) in master.pins.iter().enumerate() {
                        if pin.use_.is_supply() {
                            continue;
                        }
                        let rects: Vec<(LayerId, Rect)> = shapes
                            .iter()
                            .filter(|&&(pi, _, _)| pi == pin_idx)
                            .map(|&(_, l, r)| (l, r))
                            .collect();
                        if rects.is_empty() {
                            continue;
                        }
                        let aps = generate_pin_access_points_scratch(
                            tech,
                            design,
                            &engine,
                            &ctx,
                            pin_idx,
                            &rects,
                            &apcfg,
                            &mut scratch,
                        );
                        total += aps.len();
                        off_track += aps.iter().filter(|ap| ap.is_off_track()).count();
                        if aps.is_empty() {
                            without += 1;
                        } else {
                            // Honest dirty-AP audit (0 by construction for PAAF) —
                            // a memo lookup per AP, not a fresh DRC probe.
                            for ap in &aps {
                                if let Some(v) = ap.primary_via() {
                                    if !scratch.via_clean(
                                        tech,
                                        &engine,
                                        &ctx,
                                        v,
                                        ap.pos,
                                        local_pin_owner(pin_idx),
                                    ) {
                                        dirty += 1;
                                    }
                                }
                            }
                        }
                        pin_aps[pin_idx] = aps;
                    }
                    scratch.flush_obs();
                    Ok((
                        UniqueInstanceAccess {
                            info: info.clone(),
                            pin_aps,
                            pin_order: Vec::new(),
                            patterns: Vec::new(),
                        },
                        total,
                        dirty,
                        without,
                        off_track,
                    ))
                },
                PhaseBudget::new(&apgen_token, watchdog),
            )
        };
        let mut unique: Vec<UniqueInstanceAccess> = Vec::with_capacity(analyzed.len());
        let mut faults: Vec<FaultRecord> = Vec::new();
        let mut total_aps = 0usize;
        let mut dirty_aps = 0usize;
        let mut pins_without_aps = 0usize;
        let mut off_track_aps = 0usize;
        let mut apgen_skip_reasons: Vec<CancelReason> = Vec::new();
        for (idx, outcome) in analyzed.into_iter().enumerate() {
            // Flatten quarantined panics and typed errors into one degraded
            // path: the instance keeps a placeholder (no APs, no patterns)
            // and the run records why. Budget-skipped instances take the
            // same placeholder but are tallied as skips, not faults.
            let flat = match outcome {
                Ok(Ok(item)) => Ok(item),
                Ok(Err(e)) => Err(Some(e.to_string())),
                Err(ItemFault::Panic(reason)) => Err(Some(reason)),
                Err(ItemFault::Skipped(r)) => {
                    apgen_skip_reasons.push(r);
                    Err(None)
                }
            };
            match flat {
                Ok((u, total, dirty, without, off_track)) => {
                    total_aps += total;
                    dirty_aps += dirty;
                    pins_without_aps += without;
                    off_track_aps += off_track;
                    if ckpt.is_some() {
                        let snap = ApgenSnapshot {
                            master: u.info.master.clone(),
                            orient: u.info.orient,
                            phases: u.info.phases.clone(),
                            rep_location: design.component(u.info.rep).location,
                            pin_aps: u.pin_aps.clone(),
                            total,
                            dirty,
                            without,
                            off_track,
                        };
                        if let Some(store) = ckpt.as_mut() {
                            store.put_apgen(idx, snap);
                        }
                    }
                    unique.push(u);
                }
                Err(reason) => {
                    let info = &infos[idx];
                    if let Some(reason) = reason {
                        faults.push(FaultRecord {
                            phase: Phase::Apgen,
                            item: format!(
                                "unique instance {} (`{}` of master `{}`)",
                                info.id.index(),
                                design.component(info.rep).name,
                                info.master
                            ),
                            reason,
                        });
                    }
                    let npins = tech.macro_by_name(&info.master).map_or(0, |m| m.pins.len());
                    unique.push(UniqueInstanceAccess {
                        info: info.clone(),
                        pin_aps: vec![Vec::new(); npins],
                        pin_order: Vec::new(),
                        patterns: Vec::new(),
                    });
                }
            }
        }
        drop(infos);
        record_skips(&mut skips, Phase::Apgen, &apgen_skip_reasons);
        stalls.extend(apgen_token.take_stalls());
        if let Some(store) = ckpt.as_mut() {
            if let Err(e) = store.save_apgen() {
                faults.push(FaultRecord {
                    phase: Phase::Cache,
                    item: "apgen checkpoint".to_owned(),
                    reason: e.to_string(),
                });
            }
        }
        let apgen_time = t0.elapsed();
        drop(phase_span);

        // ---- Step 2: pattern generation per unique instance.
        let phase_span = pao_obs::span("phase.pattern");
        let t1 = Instant::now();
        let pattern_token = alloc.phase_token(Phase::Pattern);
        let pattern_exec;
        let mut pattern_skip_reasons: Vec<CancelReason> = Vec::new();
        let mut pattern_completed: Vec<usize> = Vec::new();
        {
            let unique_ref = &unique;
            let ck: Option<&CheckpointStore> = ckpt.as_deref();
            let (results, exec) = parallel_map_budget(
                self.config.threads,
                "pattern.instance",
                (0..unique_ref.len()).collect::<Vec<_>>(),
                || (),
                |(), i| {
                    // Checkpoint restore: a pattern snapshot is only valid
                    // for the exact access-point table it was computed from,
                    // so the guard pins it to the fingerprint of this run's
                    // (possibly just-restored) apgen output.
                    if let Some(snap) = ck.and_then(|c| c.pattern(i)) {
                        let u = &unique_ref[i];
                        if snap.master == u.info.master
                            && snap.orient == u.info.orient
                            && snap.phases == u.info.phases
                            && snap.aps_fnv == aps_fingerprint(&u.pin_aps)
                        {
                            pao_obs::counter_add("checkpoint.restored.pattern", 1);
                            return (snap.pin_order.clone(), snap.patterns.clone());
                        }
                    }
                    let engine = DrcEngine::new(tech);
                    generate_patterns(tech, &engine, &unique_ref[i].pin_aps, &self.config.pattern)
                },
                PhaseBudget::new(&pattern_token, watchdog),
            );
            pattern_exec = exec;
            for (i, res) in results.into_iter().enumerate() {
                match res {
                    Ok((order, patterns)) => {
                        unique[i].pin_order = order;
                        unique[i].patterns = patterns;
                        pattern_completed.push(i);
                    }
                    // Skipped by the budget: the instance keeps empty
                    // order/patterns (no selected access), tallied below.
                    Err(ItemFault::Skipped(r)) => pattern_skip_reasons.push(r),
                    // Quarantined: the instance keeps empty order/patterns,
                    // so its members simply have no selected access.
                    Err(ItemFault::Panic(reason)) => faults.push(FaultRecord {
                        phase: Phase::Pattern,
                        item: format!(
                            "unique instance {} (master `{}`)",
                            unique[i].info.id.index(),
                            unique[i].info.master
                        ),
                        reason,
                    }),
                }
            }
        }
        record_skips(&mut skips, Phase::Pattern, &pattern_skip_reasons);
        stalls.extend(pattern_token.take_stalls());
        if let Some(store) = ckpt.as_mut() {
            for &i in &pattern_completed {
                let u = &unique[i];
                store.put_pattern(
                    i,
                    PatternSnapshot {
                        master: u.info.master.clone(),
                        orient: u.info.orient,
                        phases: u.info.phases.clone(),
                        aps_fnv: aps_fingerprint(&u.pin_aps),
                        pin_order: u.pin_order.clone(),
                        patterns: u.patterns.clone(),
                    },
                );
            }
            if let Err(e) = store.save_pattern() {
                faults.push(FaultRecord {
                    phase: Phase::Cache,
                    item: "pattern checkpoint".to_owned(),
                    reason: e.to_string(),
                });
            }
        }
        let pattern_time = t1.elapsed();
        drop(phase_span);

        // ---- Step 3: cluster-based selection + final validation.
        let phase_span = pao_obs::span("phase.select");
        let t2 = Instant::now();
        let select_token = alloc.phase_token(Phase::Select);
        let (selection, cluster_exec, select_faults, select_skipped) = select_patterns_budget(
            tech,
            &engine,
            design,
            &comp_uniq,
            &unique,
            self.config.threads,
            PhaseBudget::new(&select_token, watchdog),
        );
        faults.extend(select_faults);
        push_skip(
            &mut skips,
            Phase::Select,
            select_skipped,
            select_token.reason().unwrap_or(CancelReason::Deadline),
        );
        stalls.extend(select_token.take_stalls());
        let mut result = PaoResult {
            unique,
            comp_uniq,
            selection,
            overrides: std::collections::HashMap::new(),
            stats: PaoStats {
                total_aps,
                dirty_aps,
                pins_without_aps,
                off_track_aps,
                apgen_time,
                pattern_time,
                apgen_exec,
                pattern_exec,
                cluster_exec,
                ..PaoStats::default()
            },
        };
        result.stats.unique_instances = result.unique.len();
        drop(phase_span);
        // Repair pass: for residual conflicts the whole-pattern DP cannot
        // untangle (frustrated chains of tightly-abutting boundary pins),
        // deviate per pin to any alternate clean AP — the same freedom the
        // detailed router has when it consumes the access points.
        let phase_span = pao_obs::span("phase.repair");
        let repair_token = alloc.phase_token(Phase::Repair);
        let mut repair_skipped = 0usize;
        for _round in 0..self.config.repair_rounds {
            // All repair rounds share one phase token: once it expires, no
            // further round starts and the remaining scans are skipped.
            if repair_token.is_cancelled() {
                break;
            }
            pao_obs::counter_add("repair.rounds", 1);
            let (repaired, exec, repair_faults, round_skipped) = repair_failed_pins_budget(
                tech,
                design,
                &mut result,
                self.config.threads,
                PhaseBudget::new(&repair_token, watchdog),
            );
            result.stats.repair_exec.merge(&exec);
            faults.extend(repair_faults);
            repair_skipped += round_skipped;
            if repaired == 0 {
                break;
            }
        }
        push_skip(
            &mut skips,
            Phase::Repair,
            repair_skipped,
            repair_token.reason().unwrap_or(CancelReason::Deadline),
        );
        stalls.extend(repair_token.take_stalls());
        result.stats.repaired_pins = result.overrides.len();
        drop(phase_span);
        let phase_span = pao_obs::span("phase.audit");
        let audit_token = alloc.phase_token(Phase::Audit);
        let ((total_pins, failed_pins), audit_exec, audit_faults, audit_skipped) =
            count_failed_pins_with_budget(
                tech,
                design,
                |comp, pin_idx| result.access_point(design, comp, pin_idx),
                self.config.threads,
                PhaseBudget::new(&audit_token, watchdog),
            );
        faults.extend(audit_faults);
        push_skip(
            &mut skips,
            Phase::Audit,
            audit_skipped,
            audit_token.reason().unwrap_or(CancelReason::Deadline),
        );
        stalls.extend(audit_token.take_stalls());
        result.stats.audit_exec = audit_exec;
        result.stats.total_pins = total_pins;
        result.stats.failed_pins = failed_pins;
        drop(phase_span);
        for fault in &faults {
            pao_obs::counter_add(fault.phase.quarantine_counter(), 1);
        }
        result.stats.quarantined = faults;
        result.stats.deadline = DeadlineReport {
            budget: deadline,
            skipped: skips,
            stalls,
        };
        result.stats.cluster_time = t2.elapsed();
        result.stats.run_time = run_start.elapsed();
        if let Some(before) = metrics_before {
            result.stats.metrics = pao_obs::snapshot().delta_since(&before);
        }
        // Record this run's observed phase-time split so the next budgeted
        // run over this checkpoint directory allocates from history instead
        // of the built-in default. Partial runs are biased (cut phases look
        // cheap), so only complete runs update the history.
        if let Some(store) = ckpt.as_mut() {
            if !result.stats.deadline.is_partial() {
                if let Err(e) = store.save_fractions(PhaseFractions::from_stats(&result.stats)) {
                    result.stats.quarantined.push(FaultRecord {
                        phase: Phase::Cache,
                        item: "phase-history checkpoint".to_owned(),
                        reason: e.to_string(),
                    });
                }
            }
        }
        result
    }
}

/// Tallies one phase's budget-skipped items into the run's skip records
/// (grouped by cancel reason) and the `deadline.skipped.<phase>` counter.
fn record_skips(skips: &mut Vec<SkipRecord>, phase: Phase, reasons: &[CancelReason]) {
    for reason in [
        CancelReason::Deadline,
        CancelReason::Stall,
        CancelReason::External,
    ] {
        let items = reasons.iter().filter(|&&r| r == reason).count();
        push_skip(skips, phase, items, reason);
    }
}

/// Appends one [`SkipRecord`] (and bumps the phase's skip counter) when
/// `items > 0`; no-op otherwise.
pub(crate) fn push_skip(
    skips: &mut Vec<SkipRecord>,
    phase: Phase,
    items: usize,
    reason: CancelReason,
) {
    if items > 0 {
        pao_obs::counter_add(phase.deadline_counter(), items as u64);
        skips.push(SkipRecord {
            phase,
            items,
            reason,
        });
    }
}

/// One repair round: identifies every connected pin whose selected access
/// is dirty in the whole-design context, **rips up** all their vias, and
/// greedily re-places each (current AP first, then alternates) against the
/// remaining context — so mutually-blocking pairs can both move. Returns
/// the number of pins re-placed.
///
/// The dirty-pin scan (the dominant cost: one whole-design DRC probe per
/// connected pin) fans out over `threads` workers. The greedy
/// re-placement itself stays sequential — it is order-dependent by design
/// and touches only the few dirty pins.
///
/// A scan item that panics is quarantined: its pin is treated as
/// not-dirty (left untouched this round) and reported in the returned
/// fault list instead of aborting the run. A scan item skipped by an
/// expired [`CancelToken`] is likewise treated as not-dirty, but counted
/// in the returned skip tally instead of producing a fault record.
pub(crate) fn repair_failed_pins_budget(
    tech: &Tech,
    design: &Design,
    result: &mut PaoResult,
    threads: usize,
    budget: PhaseBudget<'_>,
) -> (usize, ExecReport, Vec<FaultRecord>, usize) {
    let engine = DrcEngine::new(tech);
    let (ctx, connected) = build_global_context(tech, design, result);
    let is_dirty = |ap: &AccessPoint, owner: Owner, ctx: &ShapeSet, ws: &mut DrcScratch| -> bool {
        match ap.primary_via() {
            Some(v) => !engine.via_placement_clean(tech.via(v), ap.pos, owner, ctx, ws),
            None => ap.planar.is_empty(),
        }
    };
    let (flags, exec) = {
        let (result, ctx, is_dirty) = (&*result, &ctx, &is_dirty);
        parallel_map_budget(
            threads,
            "repair.scan",
            connected.clone(),
            DrcScratch::new,
            move |ws, (comp, pin_idx)| {
                let dirty = match result.access_point(design, comp, pin_idx) {
                    Some(ap) => is_dirty(&ap, pin_owner(comp, pin_idx), ctx, ws),
                    None => true,
                };
                ws.flush_obs();
                dirty
            },
            budget,
        )
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let mut skipped = 0usize;
    let dirty: Vec<(CompId, usize)> = connected
        .iter()
        .copied()
        .zip(flags)
        .filter_map(|((comp, pin_idx), d)| match d {
            Ok(d) => d.then_some((comp, pin_idx)),
            Err(ItemFault::Skipped(_)) => {
                skipped += 1;
                None
            }
            Err(ItemFault::Panic(reason)) => {
                faults.push(FaultRecord {
                    phase: Phase::Repair,
                    item: pin_label(tech, design, comp, pin_idx),
                    reason,
                });
                None
            }
        })
        .collect();
    pao_obs::hist_record("repair.dirty_pins", dirty.len() as u64);
    if dirty.is_empty() {
        return (0, exec, faults, skipped);
    }
    // Rebuild the context without the dirty pins' vias (rip-up).
    let dirty_set: std::collections::HashSet<(CompId, usize)> = dirty.iter().copied().collect();
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            ctx.insert(layer, rect, pin_owner(comp, pin_idx));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            ctx.insert(layer, rect, Owner::obs(u64::from(comp.0)));
        }
    }
    for &(comp, pin_idx) in &connected {
        if dirty_set.contains(&(comp, pin_idx)) {
            continue;
        }
        if let Some(ap) = result.access_point(design, comp, pin_idx) {
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).placed_shapes(ap.pos) {
                    ctx.insert(layer, rect, pin_owner(comp, pin_idx));
                }
            }
        }
    }
    ctx.rebuild();
    // Greedy re-placement.
    let mut repaired = 0usize;
    let mut ws = DrcScratch::new();
    for &(comp, pin_idx) in &dirty {
        let owner = pin_owner(comp, pin_idx);
        let current = result.access_point(design, comp, pin_idx);
        let mut candidates: Vec<AccessPoint> = Vec::new();
        candidates.extend(current.clone());
        for alt in result.all_access_points(design, comp, pin_idx) {
            if current.as_ref().map(|c| c.pos) != Some(alt.pos) {
                candidates.push(alt);
            }
        }
        // `find_map` keeps the winning candidate *and* its via together,
        // so there is no second (fallible) `primary_via` lookup.
        let placed = candidates.into_iter().find_map(|cand| {
            let v = cand.primary_via()?;
            (!is_dirty(&cand, owner, &ctx, &mut ws)).then_some((cand, v))
        });
        if let Some((cand, v)) = placed {
            for (l, r) in tech.via(v).placed_shapes(cand.pos) {
                ctx.insert(l, r, owner);
            }
            result.overrides.insert((comp, pin_idx), cand);
            repaired += 1;
            pao_obs::counter_add("repair.replaced", 1);
        } else if let Some(cur) = current {
            // Nothing clean: keep the current choice committed so later
            // pins at least see it.
            if let Some(v) = cur.primary_via() {
                for (l, r) in tech.via(v).placed_shapes(cur.pos) {
                    ctx.insert(l, r, owner);
                }
            }
        }
    }
    ws.flush_obs();
    (repaired, exec, faults, skipped)
}

/// `"pin <component>/<pin name>"` for fault reports; degrades to the pin
/// index when the master is unknown.
fn pin_label(tech: &Tech, design: &Design, comp: CompId, pin_idx: usize) -> String {
    let cname = &design.component(comp).name;
    match design
        .component(comp)
        .master_in(tech)
        .and_then(|m| m.pins.get(pin_idx))
    {
        Some(pin) => format!("pin {cname}/{}", pin.name),
        None => format!("pin {cname}/#{pin_idx}"),
    }
}

/// Builds the whole-design shape context (pins, obstructions, every
/// selected access via) plus the connected-pin list.
fn build_global_context(
    tech: &Tech,
    design: &Design,
    result: &PaoResult,
) -> (ShapeSet, Vec<(CompId, usize)>) {
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            ctx.insert(layer, rect, pin_owner(comp, pin_idx));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            ctx.insert(layer, rect, Owner::obs(u64::from(comp.0)));
        }
    }
    let mut connected: Vec<(CompId, usize)> = Vec::new();
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            if !design.component(comp).is_placed {
                continue;
            }
            let Some(master) = design.component(comp).master_in(tech) else {
                continue;
            };
            let Some(pin_idx) = master.pins.iter().position(|p| p.name == pin_name) else {
                continue;
            };
            connected.push((comp, pin_idx));
        }
    }
    for &(comp, pin_idx) in &connected {
        if let Some(ap) = result.access_point(design, comp, pin_idx) {
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).placed_shapes(ap.pos) {
                    ctx.insert(layer, rect, pin_owner(comp, pin_idx));
                }
            }
        }
    }
    ctx.rebuild();
    (ctx, connected)
}

/// Counts Table III's `(total pins, failed pins)`: every component pin
/// with a net attached must end with a DRC-clean access point, checked
/// against the **whole-design** context (all pins, obstructions and every
/// other selected via).
#[must_use]
pub fn count_failed_pins(tech: &Tech, design: &Design, result: &PaoResult) -> (usize, usize) {
    count_failed_pins_threaded(tech, design, result, 1).0
}

/// [`count_failed_pins`] with the per-pin DRC probes fanned out over
/// `threads` workers.
#[must_use]
pub fn count_failed_pins_threaded(
    tech: &Tech,
    design: &Design,
    result: &PaoResult,
    threads: usize,
) -> ((usize, usize), ExecReport) {
    count_failed_pins_with_threaded(
        tech,
        design,
        |comp, pin_idx| result.access_point(design, comp, pin_idx),
        threads,
    )
}

/// Generic form of [`count_failed_pins`]: `accessor` supplies the selected
/// access point per `(component, pin index)` in die coordinates. Used to
/// score both PAAF and baseline pin access with identical rules.
#[must_use]
pub fn count_failed_pins_with(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
) -> (usize, usize) {
    count_failed_pins_with_threaded(tech, design, accessor, 1).0
}

/// [`count_failed_pins_with`] with the per-pin DRC probes fanned out over
/// `threads` workers. The audit context is immutable once built, so every
/// connected pin checks independently.
#[must_use]
pub fn count_failed_pins_with_threaded(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
) -> ((usize, usize), ExecReport) {
    let (counts, exec, _faults) = count_failed_pins_with_faults(tech, design, accessor, threads);
    (counts, exec)
}

/// Fault-isolated form of [`count_failed_pins_with_threaded`]: an audit
/// probe that panics quarantines its pin (counted failed — the audit could
/// not certify it) and the fault is returned instead of aborting.
#[must_use]
pub fn count_failed_pins_with_faults(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
) -> ((usize, usize), ExecReport, Vec<FaultRecord>) {
    let token = CancelToken::never();
    let (counts, exec, faults, _skipped) = count_failed_pins_with_budget(
        tech,
        design,
        accessor,
        threads,
        PhaseBudget::new(&token, None),
    );
    (counts, exec, faults)
}

/// [`count_failed_pins_with_faults`] under a phase budget: a pin skipped
/// by an expired [`CancelToken`] conservatively counts as failed (it was
/// never certified clean) and lands in the returned skip tally rather
/// than the fault list.
#[must_use]
pub fn count_failed_pins_with_budget(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
    budget: PhaseBudget<'_>,
) -> ((usize, usize), ExecReport, Vec<FaultRecord>, usize) {
    // Global context: all placed pin/obs shapes + all selected vias.
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            ctx.insert(layer, rect, pin_owner(comp, pin_idx));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            ctx.insert(layer, rect, Owner::obs(u64::from(comp.0)));
        }
    }
    // Connected pins and their selected access.
    let mut connected: Vec<(CompId, usize)> = Vec::new();
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            if !design.component(comp).is_placed {
                continue;
            }
            let Some(master) = design.component(comp).master_in(tech) else {
                continue;
            };
            let Some(pin_idx) = master.pins.iter().position(|p| p.name == pin_name) else {
                continue;
            };
            connected.push((comp, pin_idx));
        }
    }
    for &(comp, pin_idx) in &connected {
        if let Some(ap) = accessor(comp, pin_idx) {
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).placed_shapes(ap.pos) {
                    ctx.insert(layer, rect, pin_owner(comp, pin_idx));
                }
            }
        }
    }
    ctx.rebuild();
    let engine = DrcEngine::new(tech);
    let (oks, exec) = {
        let (ctx, engine, accessor) = (&ctx, &engine, &accessor);
        parallel_map_budget(
            threads,
            "audit.pin",
            connected.clone(),
            DrcScratch::new,
            move |ws, (comp, pin_idx)| {
                let ok = match accessor(comp, pin_idx) {
                    Some(ap) => match ap.primary_via() {
                        Some(v) => engine.via_placement_clean(
                            tech.via(v),
                            ap.pos,
                            pin_owner(comp, pin_idx),
                            ctx,
                            ws,
                        ),
                        // Planar-only access (macro pins): accept.
                        None => !ap.planar.is_empty(),
                    },
                    None => false,
                };
                ws.flush_obs();
                ok
            },
            budget,
        )
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let mut failed = 0usize;
    let mut skipped = 0usize;
    for (&(comp, pin_idx), ok) in connected.iter().zip(oks) {
        match ok {
            Ok(true) => {}
            Ok(false) => failed += 1,
            // Skipped by the budget: never certified clean, so it
            // conservatively counts as failed (no fault record).
            Err(ItemFault::Skipped(_)) => {
                failed += 1;
                skipped += 1;
            }
            // Quarantined probe: the pin could not be certified clean, so
            // it conservatively counts as failed.
            Err(ItemFault::Panic(reason)) => {
                failed += 1;
                faults.push(FaultRecord {
                    phase: Phase::Audit,
                    item: pin_label(tech, design, comp, pin_idx),
                    reason,
                });
            }
        }
    }
    ((connected.len(), failed), exec, faults, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::{Component, Net, NetPin, TrackPattern};
    use pao_geom::{Dir, Orient, Point};
    use pao_tech::rules::MinStepRule;
    use pao_tech::{Layer, Macro, Pin, PinDir, Port, ViaDef};

    /// A small but complete world: 3-layer tech, one 2-pin cell, a design
    /// with two abutting instances and nets.
    fn world() -> (Tech, Design) {
        let mut t = Tech::new(1000);
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.min_step = Some(MinStepRule::simple(60));
        let m1 = t.add_layer(m1);
        let v1 = t.add_layer(Layer::cut("V1", 70, 80));
        let m2 = t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        let mut via = ViaDef::new(
            "via1_0",
            m1,
            vec![Rect::new(-65, -35, 65, 35)],
            v1,
            vec![Rect::new(-35, -35, 35, 35)],
            m2,
            vec![Rect::new(-35, -65, 35, 65)],
        );
        via.is_default = true;
        t.add_via(via);
        // 1200×1400 cell with pins A (left) and Y (right), both tall bars
        // crossing tracks at y = 100…1300.
        let mut cell = Macro::new("BUFX1", 1200, 1400);
        cell.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(m1, vec![Rect::new(150, 100, 300, 900)])],
        ));
        cell.pins.push(Pin::new(
            "Y",
            PinDir::Output,
            vec![Port::rects(m1, vec![Rect::new(800, 100, 950, 900)])],
        ));
        t.add_macro(cell);

        let mut d = Design::new("mini", Rect::new(0, 0, 20_000, 20_000));
        d.tracks
            .push(TrackPattern::new(Dir::Horizontal, 100, 200, 90, vec![m1]));
        d.tracks
            .push(TrackPattern::new(Dir::Vertical, 100, 200, 90, vec![m2]));
        let u0 = d.add_component(Component::new("u0", "BUFX1", Point::new(200, 0), Orient::N));
        let u1 = d.add_component(Component::new(
            "u1",
            "BUFX1",
            Point::new(1400, 0),
            Orient::N,
        ));
        let mut n0 = Net::new("n0");
        n0.pins.push(NetPin::Comp {
            comp: u0,
            pin: "Y".into(),
        });
        n0.pins.push(NetPin::Comp {
            comp: u1,
            pin: "A".into(),
        });
        d.add_net(n0);
        let mut n1 = Net::new("n1");
        n1.pins.push(NetPin::Comp {
            comp: u0,
            pin: "A".into(),
        });
        d.add_net(n1);
        let mut n2 = Net::new("n2");
        n2.pins.push(NetPin::Comp {
            comp: u1,
            pin: "Y".into(),
        });
        d.add_net(n2);
        (t, d)
    }

    #[test]
    fn full_analysis_is_clean_on_easy_design() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        // Both instances share a signature (x offset = 1200 = 6 pitches).
        assert_eq!(result.stats.unique_instances, 1);
        assert!(result.stats.total_aps >= 6, "{}", result.stats);
        assert_eq!(result.stats.dirty_aps, 0);
        assert_eq!(result.stats.pins_without_aps, 0);
        assert_eq!(result.stats.total_pins, 4);
        assert_eq!(result.stats.failed_pins, 0, "{}", result.stats);
        // Every connected pin resolves to an access point on its pin shape.
        for (ci, comp) in d.components().iter().enumerate() {
            let master = comp.master_in(&t).unwrap();
            for (pi, _) in master.pins.iter().enumerate() {
                let ap = result.access_point(&d, CompId(ci as u32), pi).unwrap();
                let shapes = d.placed_pin_shapes(&t, CompId(ci as u32));
                assert!(
                    shapes
                        .iter()
                        .any(|&(p, _, r)| p == pi && r.contains(ap.pos)),
                    "AP {} not on pin {pi} of {}",
                    ap.pos,
                    comp.name
                );
            }
        }
    }

    #[test]
    fn members_share_unique_analysis() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        let a0 = result.access_point(&d, CompId(0), 0).unwrap();
        let a1 = result.access_point(&d, CompId(1), 0).unwrap();
        // Same relative position, translated by the placement delta…
        assert_eq!(a1.pos - a0.pos, Point::new(1200, 0));
        // …and identical type/via data.
        assert_eq!(a0.pref_type, a1.pref_type);
        assert_eq!(a0.vias, a1.vias);
    }

    #[test]
    fn all_access_points_translated() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        let aps0 = result.all_access_points(&d, CompId(0), 0);
        let aps1 = result.all_access_points(&d, CompId(1), 0);
        assert_eq!(aps0.len(), aps1.len());
        assert!(!aps0.is_empty());
        for (a, b) in aps0.iter().zip(&aps1) {
            assert_eq!(b.pos - a.pos, Point::new(1200, 0));
        }
    }

    #[test]
    fn unknown_pin_returns_none() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        assert!(result.access_point(&d, CompId(0), 99).is_none());
    }
}
