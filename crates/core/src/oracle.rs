//! The top-level pin access oracle.

use crate::apgen::{generate_pin_access_points_scratch, AccessPoint, ApGenConfig, ApScratch};
use crate::budget::{
    BudgetAllocator, CancelReason, CancelToken, DeadlineReport, PhaseFractions, RunBudget,
    SkipRecord, StallRecord,
};
use crate::cluster::{select_patterns_budget, SelectTuning};
use crate::error::{FaultRecord, PaoError, Phase};
use crate::parallel::{parallel_map_budget, ExecReport, ItemFault, PhaseBudget};
use crate::pattern::{generate_patterns_tagged, AccessPattern, PatternConfig};
use crate::persist::{aps_fingerprint, ApgenSnapshot, CheckpointStore, PatternSnapshot};
use crate::stats::PaoStats;
use crate::unique::{
    build_instance_context, extract_unique_instances, local_pin_owner, pin_owner, UniqueInstance,
    UniqueInstanceId,
};
use pao_design::{CompId, Design};
use pao_drc::{DrcEngine, DrcScratch, Owner, ShapeSet};
use pao_geom::Rect;
use pao_tech::{LayerId, MacroClass, Tech};
use std::time::Instant;

/// Configuration of the whole three-step analysis.
#[derive(Debug, Clone)]
pub struct PaoConfig {
    /// Step-1 (access point generation) settings.
    pub apgen: ApGenConfig,
    /// Step-2/3 (pattern generation/selection) settings.
    pub pattern: PatternConfig,
    /// Worker threads for every compute phase (AP generation, pattern
    /// DPs, cluster-group selection, repair scans, failed-pin audit).
    /// Defaults to the machine's available parallelism; `1` reproduces
    /// the paper's single-threaded measurement mode bit for bit (the
    /// paper lists multi-threading as future work — implemented here,
    /// with output guaranteed identical for every thread count).
    pub threads: usize,
    /// Post-selection repair rounds (rip-up and re-place of residual
    /// dirty access points, mirroring the router's per-pin freedom).
    /// 0 disables repair — use that to measure the selection stage alone.
    pub repair_rounds: usize,
    /// Cluster-selection fast-path tuning (memoization, wavefront split).
    /// Every setting produces bit-identical selections.
    pub select: SelectTuning,
}

/// The default worker count: all available hardware parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Default for PaoConfig {
    fn default() -> PaoConfig {
        PaoConfig {
            apgen: ApGenConfig::default(),
            pattern: PatternConfig::default(),
            threads: default_threads(),
            repair_rounds: 3,
            select: SelectTuning::default(),
        }
    }
}

/// Per-unique-instance analysis result.
#[derive(Debug, Clone)]
pub struct UniqueInstanceAccess {
    /// The unique instance this data describes.
    pub info: UniqueInstance,
    /// Access points per master pin (indexed like the master's pin list;
    /// supply pins and pins without geometry have empty lists). Positions
    /// are in the representative's die frame.
    pub pin_aps: Vec<Vec<AccessPoint>>,
    /// The analyzed pin ordering (indices into the master pin list).
    pub pin_order: Vec<usize>,
    /// Generated access patterns over `pin_order`.
    pub patterns: Vec<AccessPattern>,
}

/// The complete result of [`PinAccessOracle::analyze`].
#[derive(Debug, Clone)]
pub struct PaoResult {
    /// Per-unique-instance access data.
    pub unique: Vec<UniqueInstanceAccess>,
    /// Unique instance of each component (`None` for unknown masters).
    pub comp_uniq: Vec<Option<UniqueInstanceId>>,
    /// Selected pattern per component (`None` when no pattern exists).
    pub selection: Vec<Option<usize>>,
    /// Per-pin repair overrides (die-frame access points) applied after
    /// cluster selection, exactly as the downstream router would deviate
    /// from a pattern when a specific pin demands a different AP.
    pub overrides: std::collections::HashMap<(CompId, usize), AccessPoint>,
    /// Run statistics (Tables II/III raw numbers).
    pub stats: PaoStats,
}

impl PaoResult {
    /// The selected access point for `(comp, pin_idx)`, translated into
    /// the component's die frame. `None` when the pin failed analysis.
    #[must_use]
    pub fn access_point(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Option<AccessPoint> {
        if let Some(ap) = self.overrides.get(&(comp, pin_idx)) {
            return Some(ap.clone());
        }
        let ui = self.comp_uniq.get(comp.index()).copied().flatten()?;
        let u = &self.unique[ui.index()];
        let sel = self.selection.get(comp.index()).copied().flatten()?;
        let pat = u.patterns.get(sel)?;
        let pos_in_order = u.pin_order.iter().position(|&p| p == pin_idx)?;
        let ap_idx = *pat.choice.get(pos_in_order)?;
        let mut ap = u.pin_aps[pin_idx].get(ap_idx)?.clone();
        let delta = design.component(comp).location - design.component(u.info.rep).location;
        ap.pos += delta;
        Some(ap)
    }

    /// All access points of `(comp, pin_idx)` (not just the selected one),
    /// translated into the component's die frame.
    #[must_use]
    pub fn all_access_points(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Vec<AccessPoint> {
        let Some(ui) = self.comp_uniq.get(comp.index()).copied().flatten() else {
            return Vec::new();
        };
        let u = &self.unique[ui.index()];
        let delta = design.component(comp).location - design.component(u.info.rep).location;
        u.pin_aps
            .get(pin_idx)
            .map(|aps| {
                aps.iter()
                    .map(|ap| {
                        let mut ap = ap.clone();
                        ap.pos += delta;
                        ap
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// The pin access oracle: runs the three-step PAAF analysis on a placed
/// design (see the [crate docs](crate) for the algorithm outline).
#[derive(Debug, Clone, Default)]
pub struct PinAccessOracle {
    config: PaoConfig,
}

impl PinAccessOracle {
    /// Creates an oracle with the paper's default parameters
    /// (`k = 3`, `α = 0.3`, up to 3 patterns, BCA and history costs on).
    #[must_use]
    pub fn new() -> PinAccessOracle {
        PinAccessOracle::default()
    }

    /// Creates an oracle with custom parameters.
    #[must_use]
    pub fn with_config(config: PaoConfig) -> PinAccessOracle {
        PinAccessOracle { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PaoConfig {
        &self.config
    }

    /// Runs the full three-step analysis.
    ///
    /// When [`pao_obs::enable_metrics`] is on, the run's `apgen.*` /
    /// `pattern.*` / `select.*` / `repair.*` counters land in
    /// [`PaoStats::metrics`] (as a delta, so back-to-back runs in one
    /// process stay separable). When [`pao_obs::enable_trace`] is on,
    /// every phase and every work item records spans collectable with
    /// [`pao_obs::take_trace`].
    #[must_use]
    pub fn analyze(&self, tech: &Tech, design: &Design) -> PaoResult {
        self.analyze_with_budget(tech, design, RunBudget::unlimited())
    }

    /// [`analyze`](Self::analyze) under a [`RunBudget`]: an optional
    /// wall-clock deadline split across the five phases (see
    /// [`BudgetAllocator`]), an optional stall watchdog, and an optional
    /// phase-granular checkpoint store.
    ///
    /// This is the *anytime* entry point — it **always returns a usable
    /// result**. When the budget expires mid-phase, in-flight items
    /// finish, unstarted items degrade exactly like quarantined ones
    /// (skipped apgen/pattern instance → empty access, select group →
    /// default patterns, repair scan → not-dirty, audit pin → counted
    /// failed), and the cuts are reported in
    /// [`PaoStats::deadline`](crate::stats::PaoStats::deadline). With a
    /// checkpoint store attached, completed apgen/pattern work is
    /// persisted after each phase so a later `--resume` run completes the
    /// analysis without redoing it.
    #[must_use]
    pub fn analyze_with_budget(
        &self,
        tech: &Tech,
        design: &Design,
        budget: RunBudget<'_>,
    ) -> PaoResult {
        let RunBudget {
            deadline,
            fractions,
            watchdog,
            checkpoint,
        } = budget;
        let mut ckpt = checkpoint;
        let alloc = BudgetAllocator::new(deadline, fractions);
        let mut skips: Vec<SkipRecord> = Vec::new();
        let mut stalls: Vec<StallRecord> = Vec::new();
        let engine = DrcEngine::new(tech);
        let run_start = Instant::now();
        let metrics_before = pao_obs::metrics_enabled().then(pao_obs::snapshot);

        // ---- Step 1: unique instances + access point generation.
        let phase_span = pao_obs::span("phase.apgen");
        let t0 = Instant::now();
        let infos = extract_unique_instances(tech, design);
        let mut comp_uniq: Vec<Option<UniqueInstanceId>> = vec![None; design.components().len()];
        for info in &infos {
            for &m in &info.members {
                comp_uniq[m.index()] = Some(info.id);
            }
        }
        let apcfg = &self.config.apgen;
        let apgen_token = alloc.phase_token(Phase::Apgen);
        type ApgenItem = (UniqueInstanceAccess, usize, usize, usize, usize);
        let (analyzed, apgen_exec) = {
            let infos = &infos;
            let ck: Option<&CheckpointStore> = ckpt.as_deref();
            parallel_map_budget(
                self.config.threads,
                "apgen.instance",
                (0..infos.len()).collect::<Vec<_>>(),
                || (),
                move |(), idx| -> Result<ApgenItem, PaoError> {
                    let info = &infos[idx];
                    // Checkpoint restore: reuse the persisted snapshot when
                    // its signature (master/orient/phases + representative
                    // location) still matches this run's instance.
                    if let Some(snap) = ck.and_then(|c| c.apgen(idx)) {
                        if snap.master == info.master
                            && snap.orient == info.orient
                            && snap.phases == info.phases
                            && snap.rep_location == design.component(info.rep).location
                        {
                            pao_obs::counter_add("checkpoint.restored.apgen", 1);
                            return Ok((
                                UniqueInstanceAccess {
                                    info: info.clone(),
                                    pin_aps: snap.pin_aps.clone(),
                                    pin_order: Vec::new(),
                                    patterns: Vec::new(),
                                },
                                snap.total,
                                snap.dirty,
                                snap.without,
                                snap.off_track,
                            ));
                        }
                    }
                    let engine = DrcEngine::new(tech);
                    let Some(master) = tech.macro_by_name(&info.master) else {
                        return Err(PaoError::input(format!(
                            "unique instance {} (component `{}`) references unknown master `{}`",
                            info.id.index(),
                            design.component(info.rep).name,
                            info.master
                        )));
                    };
                    let ctx = build_instance_context(tech, design, info.rep);
                    let shapes = design.placed_pin_shapes(tech, info.rep);
                    let mut apcfg = apcfg.clone();
                    if master.class == MacroClass::Block {
                        // Macro pins: planar access acceptable.
                        apcfg.require_via = false;
                    }
                    let mut pin_aps: Vec<Vec<AccessPoint>> = vec![Vec::new(); master.pins.len()];
                    let (mut total, mut dirty, mut without, mut off_track) =
                        (0usize, 0usize, 0usize, 0usize);
                    // One scratch per instance context: the pins share coordinate
                    // buffers and memoized via probes (the audit below re-asks
                    // exactly the placements generation already checked).
                    let mut scratch = ApScratch::new();
                    scratch.set_ledger_instance(idx as u64);
                    for (pin_idx, pin) in master.pins.iter().enumerate() {
                        if pin.use_.is_supply() {
                            continue;
                        }
                        let rects: Vec<(LayerId, Rect)> = shapes
                            .iter()
                            .filter(|&&(pi, _, _)| pi == pin_idx)
                            .map(|&(_, l, r)| (l, r))
                            .collect();
                        if rects.is_empty() {
                            continue;
                        }
                        let aps = generate_pin_access_points_scratch(
                            tech,
                            design,
                            &engine,
                            &ctx,
                            pin_idx,
                            &rects,
                            &apcfg,
                            &mut scratch,
                        );
                        total += aps.len();
                        off_track += aps.iter().filter(|ap| ap.is_off_track()).count();
                        if aps.is_empty() {
                            without += 1;
                        } else {
                            // Honest dirty-AP audit (0 by construction for PAAF) —
                            // a memo lookup per AP, not a fresh DRC probe.
                            for ap in &aps {
                                if let Some(v) = ap.primary_via() {
                                    if !scratch.via_clean(
                                        tech,
                                        &engine,
                                        &ctx,
                                        v,
                                        ap.pos,
                                        local_pin_owner(pin_idx),
                                    ) {
                                        dirty += 1;
                                    }
                                }
                            }
                        }
                        pin_aps[pin_idx] = aps;
                    }
                    scratch.flush_obs();
                    Ok((
                        UniqueInstanceAccess {
                            info: info.clone(),
                            pin_aps,
                            pin_order: Vec::new(),
                            patterns: Vec::new(),
                        },
                        total,
                        dirty,
                        without,
                        off_track,
                    ))
                },
                PhaseBudget::new(&apgen_token, watchdog),
            )
        };
        let mut unique: Vec<UniqueInstanceAccess> = Vec::with_capacity(analyzed.len());
        let mut faults: Vec<FaultRecord> = Vec::new();
        let mut total_aps = 0usize;
        let mut dirty_aps = 0usize;
        let mut pins_without_aps = 0usize;
        let mut off_track_aps = 0usize;
        let mut apgen_skip_reasons: Vec<CancelReason> = Vec::new();
        for (idx, outcome) in analyzed.into_iter().enumerate() {
            // Flatten quarantined panics and typed errors into one degraded
            // path: the instance keeps a placeholder (no APs, no patterns)
            // and the run records why. Budget-skipped instances take the
            // same placeholder but are tallied as skips, not faults.
            let flat = match outcome {
                Ok(Ok(item)) => Ok(item),
                Ok(Err(e)) => Err(Some(e.to_string())),
                Err(ItemFault::Panic(reason)) => Err(Some(reason)),
                Err(ItemFault::Skipped(r)) => {
                    apgen_skip_reasons.push(r);
                    Err(None)
                }
            };
            match flat {
                Ok((u, total, dirty, without, off_track)) => {
                    total_aps += total;
                    dirty_aps += dirty;
                    pins_without_aps += without;
                    off_track_aps += off_track;
                    if ckpt.is_some() {
                        let snap = ApgenSnapshot {
                            master: u.info.master,
                            orient: u.info.orient,
                            phases: u.info.phases.clone(),
                            rep_location: design.component(u.info.rep).location,
                            pin_aps: u.pin_aps.clone(),
                            total,
                            dirty,
                            without,
                            off_track,
                        };
                        if let Some(store) = ckpt.as_mut() {
                            store.put_apgen(idx, snap);
                        }
                    }
                    unique.push(u);
                }
                Err(reason) => {
                    let info = &infos[idx];
                    if let Some(reason) = reason {
                        faults.push(FaultRecord {
                            phase: Phase::Apgen,
                            item: format!(
                                "unique instance {} (`{}` of master `{}`)",
                                info.id.index(),
                                design.component(info.rep).name,
                                info.master
                            ),
                            reason,
                        });
                    }
                    let npins = tech.macro_by_name(&info.master).map_or(0, |m| m.pins.len());
                    unique.push(UniqueInstanceAccess {
                        info: info.clone(),
                        pin_aps: vec![Vec::new(); npins],
                        pin_order: Vec::new(),
                        patterns: Vec::new(),
                    });
                }
            }
        }
        drop(infos);
        record_skips(&mut skips, Phase::Apgen, &apgen_skip_reasons);
        stalls.extend(apgen_token.take_stalls());
        if let Some(store) = ckpt.as_mut() {
            if let Err(e) = store.save_apgen() {
                faults.push(FaultRecord {
                    phase: Phase::Cache,
                    item: "apgen checkpoint".to_owned(),
                    reason: e.to_string(),
                });
            }
        }
        let apgen_time = t0.elapsed();
        drop(phase_span);

        // ---- Step 2: pattern generation per unique instance.
        let phase_span = pao_obs::span("phase.pattern");
        let t1 = Instant::now();
        let pattern_token = alloc.phase_token(Phase::Pattern);
        let pattern_exec;
        let mut pattern_skip_reasons: Vec<CancelReason> = Vec::new();
        let mut pattern_completed: Vec<usize> = Vec::new();
        {
            let unique_ref = &unique;
            let ck: Option<&CheckpointStore> = ckpt.as_deref();
            let (results, exec) = parallel_map_budget(
                self.config.threads,
                "pattern.instance",
                (0..unique_ref.len()).collect::<Vec<_>>(),
                || (),
                |(), i| {
                    // Checkpoint restore: a pattern snapshot is only valid
                    // for the exact access-point table it was computed from,
                    // so the guard pins it to the fingerprint of this run's
                    // (possibly just-restored) apgen output.
                    if let Some(snap) = ck.and_then(|c| c.pattern(i)) {
                        let u = &unique_ref[i];
                        if snap.master == u.info.master
                            && snap.orient == u.info.orient
                            && snap.phases == u.info.phases
                            && snap.aps_fnv == aps_fingerprint(&u.pin_aps)
                        {
                            pao_obs::counter_add("checkpoint.restored.pattern", 1);
                            return (snap.pin_order.clone(), snap.patterns.clone());
                        }
                    }
                    let engine = DrcEngine::new(tech);
                    generate_patterns_tagged(
                        tech,
                        &engine,
                        &unique_ref[i].pin_aps,
                        &self.config.pattern,
                        i as u64,
                    )
                },
                PhaseBudget::new(&pattern_token, watchdog),
            );
            pattern_exec = exec;
            for (i, res) in results.into_iter().enumerate() {
                match res {
                    Ok((order, patterns)) => {
                        unique[i].pin_order = order;
                        unique[i].patterns = patterns;
                        pattern_completed.push(i);
                    }
                    // Skipped by the budget: the instance keeps empty
                    // order/patterns (no selected access), tallied below.
                    Err(ItemFault::Skipped(r)) => pattern_skip_reasons.push(r),
                    // Quarantined: the instance keeps empty order/patterns,
                    // so its members simply have no selected access.
                    Err(ItemFault::Panic(reason)) => faults.push(FaultRecord {
                        phase: Phase::Pattern,
                        item: format!(
                            "unique instance {} (master `{}`)",
                            unique[i].info.id.index(),
                            unique[i].info.master
                        ),
                        reason,
                    }),
                }
            }
        }
        record_skips(&mut skips, Phase::Pattern, &pattern_skip_reasons);
        stalls.extend(pattern_token.take_stalls());
        if let Some(store) = ckpt.as_mut() {
            for &i in &pattern_completed {
                let u = &unique[i];
                store.put_pattern(
                    i,
                    PatternSnapshot {
                        master: u.info.master,
                        orient: u.info.orient,
                        phases: u.info.phases.clone(),
                        aps_fnv: aps_fingerprint(&u.pin_aps),
                        pin_order: u.pin_order.clone(),
                        patterns: u.patterns.clone(),
                    },
                );
            }
            if let Err(e) = store.save_pattern() {
                faults.push(FaultRecord {
                    phase: Phase::Cache,
                    item: "pattern checkpoint".to_owned(),
                    reason: e.to_string(),
                });
            }
        }
        let pattern_time = t1.elapsed();
        drop(phase_span);

        // ---- Step 3: cluster-based selection + final validation.
        let phase_span = pao_obs::span("phase.select");
        let t2 = Instant::now();
        let select_token = alloc.phase_token(Phase::Select);
        let select_out = select_patterns_budget(
            tech,
            &engine,
            design,
            &comp_uniq,
            &unique,
            self.config.threads,
            &self.config.select,
            PhaseBudget::new(&select_token, watchdog),
        );
        faults.extend(select_out.faults);
        push_skip(
            &mut skips,
            Phase::Select,
            select_out.skipped,
            select_token.reason().unwrap_or(CancelReason::Deadline),
        );
        stalls.extend(select_token.take_stalls());
        let mut result = PaoResult {
            unique,
            comp_uniq,
            selection: select_out.selection,
            overrides: std::collections::HashMap::new(),
            stats: PaoStats {
                total_aps,
                dirty_aps,
                pins_without_aps,
                off_track_aps,
                apgen_time,
                pattern_time,
                apgen_exec,
                pattern_exec,
                cluster_exec: select_out.exec,
                select_telemetry: select_out.telemetry,
                ..PaoStats::default()
            },
        };
        result.stats.unique_instances = result.unique.len();
        drop(phase_span);
        // Repair pass: for residual conflicts the whole-pattern DP cannot
        // untangle (frustrated chains of tightly-abutting boundary pins),
        // deviate per pin to any alternate clean AP — the same freedom the
        // detailed router has when it consumes the access points.
        let phase_span = pao_obs::span("phase.repair");
        let repair_token = alloc.phase_token(Phase::Repair);
        // The whole-design base context and connected-pin list depend only
        // on the placement, so they are built once and shared by every
        // repair round and the final audit (each use completes a clone
        // with the then-current selected vias).
        let gctx = GlobalContext::build_threaded(tech, design, self.config.threads);
        let mut repair_skipped = 0usize;
        // Scan verdicts of the last repair round, usable as audit hints:
        // valid only when that round repaired nothing (the overrides — and
        // therefore the audit context — are unchanged since the scan).
        let mut scan_ok: Option<Vec<Option<bool>>> = None;
        for round in 0..self.config.repair_rounds {
            // All repair rounds share one phase token: once it expires, no
            // further round starts and the remaining scans are skipped.
            if repair_token.is_cancelled() {
                scan_ok = None;
                break;
            }
            pao_obs::counter_add("repair.rounds", 1);
            let (repaired, exec, repair_faults, round_skipped, ok_flags) =
                repair_failed_pins_budget(
                    tech,
                    design,
                    &gctx,
                    &mut result,
                    self.config.threads,
                    round,
                    PhaseBudget::new(&repair_token, watchdog),
                );
            result.stats.repair_exec.merge(&exec);
            faults.extend(repair_faults);
            repair_skipped += round_skipped;
            scan_ok = (repaired == 0).then_some(ok_flags);
            if repaired == 0 {
                break;
            }
        }
        push_skip(
            &mut skips,
            Phase::Repair,
            repair_skipped,
            repair_token.reason().unwrap_or(CancelReason::Deadline),
        );
        stalls.extend(repair_token.take_stalls());
        result.stats.repaired_pins = result.overrides.len();
        drop(phase_span);
        let phase_span = pao_obs::span("phase.audit");
        let audit_token = alloc.phase_token(Phase::Audit);
        let ((total_pins, failed_pins), audit_exec, audit_faults, audit_skipped) =
            audit_pins_budget(
                tech,
                design,
                &gctx,
                &|comp, pin_idx| result.access_point(design, comp, pin_idx),
                scan_ok.as_deref(),
                self.config.threads,
                PhaseBudget::new(&audit_token, watchdog),
            );
        faults.extend(audit_faults);
        push_skip(
            &mut skips,
            Phase::Audit,
            audit_skipped,
            audit_token.reason().unwrap_or(CancelReason::Deadline),
        );
        stalls.extend(audit_token.take_stalls());
        result.stats.audit_exec = audit_exec;
        result.stats.total_pins = total_pins;
        result.stats.failed_pins = failed_pins;
        drop(phase_span);
        for fault in &faults {
            pao_obs::counter_add(fault.phase.quarantine_counter(), 1);
        }
        result.stats.quarantined = faults;
        result.stats.deadline = DeadlineReport {
            budget: deadline,
            skipped: skips,
            stalls,
        };
        result.stats.cluster_time = t2.elapsed();
        result.stats.run_time = run_start.elapsed();
        if let Some(before) = metrics_before {
            result.stats.metrics = pao_obs::snapshot().delta_since(&before);
        }
        // Record this run's observed phase-time split so the next budgeted
        // run over this checkpoint directory allocates from history instead
        // of the built-in default. Partial runs are biased (cut phases look
        // cheap), so only complete runs update the history.
        if let Some(store) = ckpt.as_mut() {
            if !result.stats.deadline.is_partial() {
                if let Err(e) = store.save_fractions(PhaseFractions::from_stats(&result.stats)) {
                    result.stats.quarantined.push(FaultRecord {
                        phase: Phase::Cache,
                        item: "phase-history checkpoint".to_owned(),
                        reason: e.to_string(),
                    });
                }
            }
        }
        result
    }
}

/// Tallies one phase's budget-skipped items into the run's skip records
/// (grouped by cancel reason) and the `deadline.skipped.<phase>` counter.
fn record_skips(skips: &mut Vec<SkipRecord>, phase: Phase, reasons: &[CancelReason]) {
    for reason in [
        CancelReason::Deadline,
        CancelReason::Stall,
        CancelReason::External,
    ] {
        let items = reasons.iter().filter(|&&r| r == reason).count();
        push_skip(skips, phase, items, reason);
    }
}

/// Appends one [`SkipRecord`] (and bumps the phase's skip counter) when
/// `items > 0`; no-op otherwise.
pub(crate) fn push_skip(
    skips: &mut Vec<SkipRecord>,
    phase: Phase,
    items: usize,
    reason: CancelReason,
) {
    if items > 0 {
        pao_obs::counter_add(phase.deadline_counter(), items as u64);
        skips.push(SkipRecord {
            phase,
            items,
            reason,
        });
    }
}

/// One repair round: identifies every connected pin whose selected access
/// is dirty in the whole-design context, **rips up** all their vias, and
/// greedily re-places each (current AP first, then alternates) against the
/// remaining context — so mutually-blocking pairs can both move. Returns
/// the number of pins re-placed.
///
/// The dirty-pin scan (the dominant cost: one whole-design DRC probe per
/// connected pin) fans out over `threads` workers. The greedy
/// re-placement itself stays sequential — it is order-dependent by design
/// and touches only the few dirty pins.
///
/// A scan item that panics is quarantined: its pin is treated as
/// not-dirty (left untouched this round) and reported in the returned
/// fault list instead of aborting the run. A scan item skipped by an
/// expired [`CancelToken`] is likewise treated as not-dirty, but counted
/// in the returned skip tally instead of producing a fault record.
///
/// The fifth element of the return is the per-connected-pin scan verdict
/// (`Some(clean)`; `None` for panicked/skipped items) — reusable as audit
/// hints when the round repaired nothing.
/// What the repair scan needs from a selected access point: position,
/// primary via and the planar fallback — resolved without cloning the
/// access point's `Vec`s.
struct ScanAp {
    pos: pao_geom::Point,
    via: Option<pao_tech::ViaId>,
    planar_ok: bool,
}

/// Per-worker scan state: the DRC workspace plus the verdict memo and
/// its reusable key buffer.
struct ScanScratch {
    ws: DrcScratch,
    memo: std::collections::HashMap<Vec<u64>, bool>,
    neigh: Vec<u32>,
    /// Stage-1 candidates: foreign components whose reach bounds meet
    /// the current pin's via-hull window.
    cands: Vec<u32>,
    /// The current pin's per-via-shape probe windows (layer, halo-grown
    /// rect).
    wins: Vec<(LayerId, Rect)>,
    /// Foreign shapes inside the current pin's probe windows, copied
    /// during stage 2 of the neighborhood scan; never packed (probes
    /// scan its handful of raw items linearly).
    mini: ShapeSet,
    tuples: Vec<(i64, i64, u64)>,
    key: Vec<u64>,
}

impl Default for ScanScratch {
    fn default() -> ScanScratch {
        ScanScratch {
            ws: DrcScratch::default(),
            memo: std::collections::HashMap::new(),
            neigh: Vec::new(),
            cands: Vec::new(),
            wins: Vec::new(),
            // Sized lazily on first use (the layer count lives in `Tech`).
            mini: ShapeSet::new(0),
            tuples: Vec::new(),
            key: Vec::new(),
        }
    }
}

/// [`PaoResult::access_point`] minus the allocations: resolves the
/// selected AP for `(comp, pin_idx)` into a [`ScanAp`].
fn scan_ap(result: &PaoResult, design: &Design, comp: CompId, pin_idx: usize) -> Option<ScanAp> {
    if let Some(ap) = result.overrides.get(&(comp, pin_idx)) {
        return Some(ScanAp {
            pos: ap.pos,
            via: ap.primary_via(),
            planar_ok: !ap.planar.is_empty(),
        });
    }
    let ui = result.comp_uniq.get(comp.index()).copied().flatten()?;
    let u = &result.unique[ui.index()];
    let sel = result.selection.get(comp.index()).copied().flatten()?;
    let pat = u.patterns.get(sel)?;
    let pos_in_order = u.pin_order.iter().position(|&p| p == pin_idx)?;
    let ap_idx = *pat.choice.get(pos_in_order)?;
    let ap = u.pin_aps.get(pin_idx)?.get(ap_idx)?;
    let delta = design.component(comp).location - design.component(u.info.rep).location;
    Some(ScanAp {
        pos: ap.pos + delta,
        via: ap.primary_via(),
        planar_ok: !ap.planar.is_empty(),
    })
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn repair_failed_pins_budget(
    tech: &Tech,
    design: &Design,
    gctx: &GlobalContext,
    result: &mut PaoResult,
    threads: usize,
    round: usize,
    budget: PhaseBudget<'_>,
) -> (
    usize,
    ExecReport,
    Vec<FaultRecord>,
    usize,
    Vec<Option<bool>>,
) {
    let engine = DrcEngine::new(tech);
    let connected = &gctx.connected;
    // Selected access points, reduced to what the scan needs (position,
    // primary via, planar fallback) and resolved once: `access_point`
    // clones two `Vec`s and walks the pin order per call, so the scan
    // below indexes this slice instead of re-resolving every pin (and
    // the via-index fill reuses the same resolutions).
    let selected: Vec<Option<ScanAp>> = connected
        .iter()
        .map(|&(comp, pin_idx)| scan_ap(result, design, comp, pin_idx))
        .collect();
    // Selected-vias-only index: lets the same-component fast path below
    // rule out foreign via conflicts without probing the full context.
    let mut via_index = ShapeSet::new(tech.layers().len());
    for (&(comp, pin_idx), ap) in connected.iter().zip(&selected) {
        let Some(ap) = ap else { continue };
        let Some(v) = ap.via else { continue };
        for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
            via_index.insert_deferred(layer, rect, pin_owner(comp, pin_idx));
        }
    }
    let overridden: std::collections::HashSet<u32> =
        result.overrides.keys().map(|&(c, _)| c.0).collect();
    let comp_uniq = &result.comp_uniq;
    let selection = &result.selection;
    let poisoned =
        |c: u32| overridden.contains(&c) || comp_uniq.get(c as usize).copied().flatten().is_none();
    // A pin of a certified component needs no probe when no foreign
    // component is in reach: AP generation proved its via clean against
    // the cell's own shapes, and whole-pattern validation proved the
    // pattern's vias clean against each other — together exactly the
    // isolated pin's probe environment.
    let unique = &result.unique;
    let certified = |c: u32| -> bool {
        let Some(u) = comp_uniq.get(c as usize).copied().flatten() else {
            return false;
        };
        let Some(sel) = selection.get(c as usize).copied().flatten() else {
            return false;
        };
        unique[u.index()]
            .patterns
            .get(sel)
            .is_some_and(|p| p.validated)
    };
    // The packed form of the via index only serves direct probes (pins of
    // poisoned or uncertified components) and the greedy re-place windows.
    // When those are rare — the common case — the handful of raw linear
    // window scans is far cheaper than a full STR pack of every selected
    // via; with many direct probes the pack pays for itself.
    if connected
        .iter()
        .filter(|&&(c, _)| poisoned(c.0) || !certified(c.0))
        .count()
        > 64
    {
        via_index.rebuild();
    }
    // Split probe instead of one merged pack: the full check runs against
    // the packed base, and a pairwise-only check runs against the packed
    // via index. This covers every rule exactly once — merged-geometry
    // rules only ever union same-owner shapes, which all live in the
    // base (a pin's own selected via adds nothing to its own union), and
    // pairwise rules skip same-owner shapes, so the via's own copy in
    // the index is inert. Skipping the base+vias repack saves the
    // dominant setup cost of every scan round.
    let base = &gctx.base;
    let is_dirty = |ap: &ScanAp, owner: Owner, ws: &mut DrcScratch| -> bool {
        match ap.via {
            Some(v) => {
                let vd = tech.via(v);
                !(engine.via_placement_clean(vd, ap.pos, owner, base, ws)
                    && engine.via_pairwise_clean(vd, ap.pos, owner, &via_index, ws))
            }
            None => !ap.planar_ok,
        }
    };
    // Scan neighborhoods: a probe for a pin's via only ever touches
    // shapes within the via's own layers' search halos of its shapes,
    // and a neighboring component's shapes all lie inside that
    // component's reach bounds (base-shape hull grown by its selected
    // via hulls). So the set of components that can influence the
    // verdict is found with one query of the via hull window against a
    // component-bounds tree — no per-shape walks — and the verdict is a
    // pure function of the pin's (unique instance, pattern, pin index)
    // plus every such neighbor's (offset, unique instance, pattern):
    // equal keys see identical shape environments and the verdict
    // transfers. Components carrying a repair override place vias
    // off-pattern and components without a unique instance have no
    // translation-invariant geometry; both poison the neighborhood and
    // force direct probes.
    // Hull of each via's shapes around the drop point, and the widest
    // search halo among the via's own layers: the hull translated to the
    // pin's position and expanded by that halo bounds every context
    // shape a probe of this via can read.
    let origin = pao_geom::Point::new(0, 0);
    let via_hulls: Vec<Rect> = tech
        .vias()
        .iter()
        .map(|v| {
            v.each_placed_shape(origin)
                .map(|(_, r)| r)
                .reduce(Rect::hull)
                .unwrap_or_else(|| Rect::new(0, 0, 0, 0))
        })
        .collect();
    let via_margins: Vec<pao_geom::Dbu> = tech
        .vias()
        .iter()
        .map(|v| {
            v.each_placed_shape(origin)
                .map(|(l, _)| engine.halo(l))
                .max()
                .unwrap_or(0)
        })
        .collect();
    // `(unique << 32) | pattern` — the memoized identity of one
    // component. A missing pattern keeps the `u32::MAX` sentinel: its
    // base shapes still follow from the unique instance, it just
    // contributes no via.
    let key_part = |c: u32| -> u64 {
        let u = comp_uniq
            .get(c as usize)
            .copied()
            .flatten()
            .map_or(u64::MAX, |u| u.index() as u64);
        let sel = selection
            .get(c as usize)
            .copied()
            .flatten()
            .map_or(u64::from(u32::MAX), |s| s as u64);
        (u << 32) | sel
    };
    // Component reach bounds: base-shape hull grown by every selected
    // via's full placed hull, so all via geometry is covered even where
    // an access point sits outside the pin shapes.
    let mut bounds_ext: Vec<Option<Rect>> = gctx.bounds.clone();
    for (&(comp, _), ap) in connected.iter().zip(&selected) {
        let Some(ap) = ap else { continue };
        let Some(v) = ap.via else { continue };
        let p = via_hulls[v.index()].translated(ap.pos);
        let b = &mut bounds_ext[comp.index()];
        *b = Some(b.map_or(p, |r| r.hull(p)));
    }
    let comp_tree: pao_geom::RTree<u32> = pao_geom::RTree::bulk_load(
        bounds_ext
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|r| (r, i as u32)))
            .collect(),
    );
    // Per-component shape lists (pin + obstruction + selected-via shapes,
    // exactly the scan context's contents): once stage 1 has named the
    // few candidate components near a pin, stage 2 walks their lists
    // directly instead of descending the global trees once per probe
    // window. One flat pass here beats thousands of tree queries there.
    let mut csr: Vec<Vec<(LayerId, Rect, Owner)>> = vec![Vec::new(); design.components().len()];
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            csr[ci].push((layer, rect, pin_owner(comp, pin_idx)));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            csr[ci].push((layer, rect, Owner::obs(u64::from(comp.0))));
        }
    }
    for (&(comp, pin_idx), ap) in connected.iter().zip(&selected) {
        let Some(ap) = ap else { continue };
        let Some(v) = ap.via else { continue };
        for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
            csr[comp.index()].push((layer, rect, pin_owner(comp, pin_idx)));
        }
    }
    let (flags, exec) = {
        let (selected, csr, is_dirty, engine) = (&selected, &csr, &is_dirty, &engine);
        let (comp_tree, via_hulls, poisoned, key_part) =
            (&comp_tree, &via_hulls, &poisoned, &key_part);
        parallel_map_budget(
            threads,
            "repair.scan",
            (0..connected.len()).collect(),
            ScanScratch::default,
            move |s, i: usize| {
                let (comp, pin_idx) = connected[i];
                let dirty = match &selected[i] {
                    Some(ap) => 'verdict: {
                        let Some(v) = ap.via else {
                            // Planar-only verdicts are a field read.
                            break 'verdict !ap.planar_ok;
                        };
                        if poisoned(comp.0) {
                            break 'verdict is_dirty(ap, pin_owner(comp, pin_idx), &mut s.ws);
                        }
                        // Stage 1 — bbox filter: any foreign component
                        // whose reach bounds meet the via hull window?
                        let w = via_hulls[v.index()]
                            .translated(ap.pos)
                            .expanded(via_margins[v.index()]);
                        s.cands.clear();
                        comp_tree.visit(w, &mut |_, &c| {
                            if c != comp.0 {
                                s.cands.push(c);
                            }
                            true
                        });
                        // Stage 2 — for bbox-near pins, refine to the
                        // components whose shapes actually fall inside
                        // the probe windows (per-shape, per-layer
                        // halos). Pins whose windows hold nothing
                        // foreign join the certified fast path after
                        // all, and the memo key shrinks to the real
                        // environment, so it repeats far more often.
                        s.neigh.clear();
                        if !s.cands.is_empty() {
                            if s.mini.num_layers() == tech.layers().len() {
                                s.mini.clear();
                            } else {
                                s.mini = ShapeSet::new(tech.layers().len());
                            }
                            s.wins.clear();
                            for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
                                s.wins.push((layer, rect.expanded(engine.halo(layer))));
                            }
                            // `touches` (closed contact) matches the
                            // spatial index's window semantics, so the
                            // neighbor sets — and hence the memo keys —
                            // are the same ones tree queries would yield.
                            for &c in &s.cands {
                                let mut hit = false;
                                for &(layer, r, o) in &csr[c as usize] {
                                    if s.wins.iter().any(|&(wl, w)| wl == layer && r.touches(w)) {
                                        s.mini.insert_deferred(layer, r, o);
                                        hit = true;
                                    }
                                }
                                if hit {
                                    s.neigh.push(c);
                                }
                            }
                        }
                        if s.neigh.is_empty() && certified(comp.0) {
                            pao_obs::counter_add("repair.scan.fast_clean", 1);
                            break 'verdict false;
                        }
                        if s.neigh.iter().any(|&c| poisoned(c)) {
                            break 'verdict is_dirty(ap, pin_owner(comp, pin_idx), &mut s.ws);
                        }
                        let own_loc = design.component(comp).location;
                        s.tuples.clear();
                        for &c in &s.neigh {
                            let loc = design.component(CompId(c)).location;
                            s.tuples
                                .push((loc.x - own_loc.x, loc.y - own_loc.y, key_part(c)));
                        }
                        s.tuples.sort_unstable();
                        s.key.clear();
                        s.key.push(key_part(comp.0));
                        s.key.push(pin_idx as u64);
                        for &(dx, dy, us) in &s.tuples {
                            s.key.push(dx as u64);
                            s.key.push(dy as u64);
                            s.key.push(us);
                        }
                        // Worker-local memo: verdicts are pure functions
                        // of the key, so results stay
                        // thread-count-invariant.
                        if let Some(&d) = s.memo.get(s.key.as_slice()) {
                            pao_obs::counter_add("repair.scan.memo_hits", 1);
                            d
                        } else {
                            // A certified component's own-cell checks are
                            // already proven (AP generation probed the via
                            // against every own-cell shape; whole-pattern
                            // validation probed sibling vias against each
                            // other), so only the *foreign* shapes — the
                            // exact set stage 2 copied into the scratch
                            // mini-context — can still reject, and only
                            // through pairwise rules: merged-geometry
                            // unions are same-owner, hence own. One probe
                            // over a handful of raw shapes replaces two
                            // full-context probes.
                            let d = if certified(comp.0) {
                                !engine.via_pairwise_clean(
                                    tech.via(v),
                                    ap.pos,
                                    pin_owner(comp, pin_idx),
                                    &s.mini,
                                    &mut s.ws,
                                )
                            } else {
                                is_dirty(ap, pin_owner(comp, pin_idx), &mut s.ws)
                            };
                            s.memo.insert(s.key.clone(), d);
                            pao_obs::counter_add("repair.scan.memo_misses", 1);
                            d
                        }
                    }
                    None => true,
                };
                s.ws.flush_obs();
                dirty
            },
            budget,
        )
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let mut skipped = 0usize;
    let mut scan_ok: Vec<Option<bool>> = Vec::with_capacity(connected.len());
    let dirty: Vec<(CompId, usize)> = connected
        .iter()
        .copied()
        .zip(flags)
        .filter_map(|((comp, pin_idx), d)| match d {
            Ok(d) => {
                scan_ok.push(Some(!d));
                // Sequential collection loop: the dirty-pin records land
                // in scan order regardless of worker count.
                if d && pao_obs::ledger_enabled() {
                    pao_obs::ledger::record(
                        pao_obs::LedgerRecord::new(
                            pao_obs::LedgerEvent::RepairDirty,
                            (u64::from(comp.0) << 16) | pin_idx as u64,
                            0,
                        )
                        .with_aux(round as u32),
                    );
                }
                d.then_some((comp, pin_idx))
            }
            Err(ItemFault::Skipped(_)) => {
                scan_ok.push(None);
                skipped += 1;
                None
            }
            Err(ItemFault::Panic(reason)) => {
                scan_ok.push(None);
                faults.push(FaultRecord {
                    phase: Phase::Repair,
                    item: pin_label(tech, design, comp, pin_idx),
                    reason,
                });
                None
            }
        })
        .collect();
    pao_obs::hist_record("repair.dirty_pins", dirty.len() as u64);
    if dirty.is_empty() {
        return (0, exec, faults, skipped, scan_ok);
    }
    // Greedy re-placement probes a windowed rip-up context instead of a
    // full base+vias repack: only shapes a dirty pin's candidate probes
    // can actually read are copied in. Each window is the hull of the
    // pin's candidate positions grown by the widest via extent plus the
    // engine's interaction range — a superset of every probe window —
    // filled from the packed base and via index with the dirty pins'
    // own (ripped-up) vias filtered out. Shapes duplicated by
    // overlapping windows cannot change a verdict: every check is a
    // predicate over individual context shapes or same-owner unions,
    // and a union is idempotent.
    let ripped: std::collections::HashSet<Owner> =
        dirty.iter().map(|&(c, p)| pin_owner(c, p)).collect();
    let margin = engine.interaction_range() + crate::cluster::max_via_extent(tech);
    let mut currents: Vec<Option<AccessPoint>> = Vec::with_capacity(dirty.len());
    let mut cand_lists: Vec<Vec<AccessPoint>> = Vec::with_capacity(dirty.len());
    let mut ctx = ShapeSet::new(gctx.base.num_layers());
    for &(comp, pin_idx) in &dirty {
        let current = result.access_point(design, comp, pin_idx);
        let mut candidates: Vec<AccessPoint> = Vec::new();
        candidates.extend(current.clone());
        for alt in result.all_access_points(design, comp, pin_idx) {
            if current.as_ref().map(|c| c.pos) != Some(alt.pos) {
                candidates.push(alt);
            }
        }
        if let Some(hull) = candidates
            .iter()
            .map(|c| Rect::from_points(c.pos, c.pos))
            .reduce(Rect::hull)
        {
            let w = hull.expanded(margin);
            for li in 0..gctx.base.num_layers() {
                let layer = LayerId(li as u32);
                gctx.base.for_each_in(layer, w, |r, o| {
                    ctx.insert_deferred(layer, r, o);
                    true
                });
                via_index.for_each_in(layer, w, |r, o| {
                    if !ripped.contains(&o) {
                        ctx.insert_deferred(layer, r, o);
                    }
                    true
                });
            }
        }
        currents.push(current);
        cand_lists.push(candidates);
    }
    ctx.rebuild();
    let mut repaired = 0usize;
    let mut ws = DrcScratch::new();
    for (i, &(comp, pin_idx)) in dirty.iter().enumerate() {
        let owner = pin_owner(comp, pin_idx);
        let current = currents[i].take();
        // `find_map` keeps the winning candidate *and* its via together,
        // so there is no second (fallible) `primary_via` lookup.
        let placed = std::mem::take(&mut cand_lists[i])
            .into_iter()
            .enumerate()
            .find_map(|(ci, cand)| {
                let v = cand.primary_via()?;
                engine
                    .via_placement_clean(tech.via(v), cand.pos, owner, &ctx, &mut ws)
                    .then_some((ci, cand, v))
            });
        if let Some((ci, cand, v)) = placed {
            for (l, r) in tech.via(v).each_placed_shape(cand.pos) {
                ctx.insert(l, r, owner);
            }
            if pao_obs::ledger_enabled() {
                pao_obs::ledger::record(
                    pao_obs::LedgerRecord::new(
                        pao_obs::LedgerEvent::RepairReplaced,
                        (u64::from(comp.0) << 16) | pin_idx as u64,
                        ci as u32,
                    )
                    .with_aux(round as u32)
                    .with_pos(cand.pos.x, cand.pos.y),
                );
            }
            result.overrides.insert((comp, pin_idx), cand);
            repaired += 1;
            pao_obs::counter_add("repair.replaced", 1);
        } else {
            if pao_obs::ledger_enabled() {
                pao_obs::ledger::record(
                    pao_obs::LedgerRecord::new(
                        pao_obs::LedgerEvent::RepairStuck,
                        (u64::from(comp.0) << 16) | pin_idx as u64,
                        0,
                    )
                    .with_aux(round as u32),
                );
            }
            if let Some(cur) = current {
                // Nothing clean: keep the current choice committed so later
                // pins at least see it.
                if let Some(v) = cur.primary_via() {
                    for (l, r) in tech.via(v).each_placed_shape(cur.pos) {
                        ctx.insert(l, r, owner);
                    }
                }
            }
        }
    }
    ws.flush_obs();
    (repaired, exec, faults, skipped, scan_ok)
}

/// `"pin <component>/<pin name>"` for fault reports; degrades to the pin
/// index when the master is unknown.
fn pin_label(tech: &Tech, design: &Design, comp: CompId, pin_idx: usize) -> String {
    let cname = &design.component(comp).name;
    match design
        .component(comp)
        .master_in(tech)
        .and_then(|m| m.pins.get(pin_idx))
    {
        Some(pin) => format!("pin {cname}/{}", pin.name),
        None => format!("pin {cname}/#{pin_idx}"),
    }
}

/// The placement-dependent half of the whole-design audit/repair context:
/// every placed pin/obstruction shape (packed and queryable) plus the
/// connected-pin list. Built **once** per analysis — selection-dependent
/// via shapes are layered on per use by [`GlobalContext::with_vias`],
/// which is far cheaper than re-walking and re-transforming the whole
/// placement for every repair round and the final audit.
pub(crate) struct GlobalContext {
    /// All placed pin and obstruction shapes, packed: the repair scan
    /// and its windowed greedy context query it directly (paired with
    /// the selected-vias index), and [`GlobalContext::with_vias`] feeds
    /// it to [`ShapeSet::merged`] for the full-audit repack.
    pub(crate) base: ShapeSet,
    /// Every `(component, pin index)` with a net attached, in net order.
    pub(crate) connected: Vec<(CompId, usize)>,
    /// Hull of each component's placed pin/obstruction shapes (`None`
    /// when a component contributes nothing to `base`). Feeds the repair
    /// scan's bbox-proximity neighborhoods.
    pub(crate) bounds: Vec<Option<Rect>>,
}

/// Components per [`GlobalContext`] build shard. The partition depends
/// only on the design size — never on the thread count — so the merged
/// tree structure (and with it every downstream query order) is
/// byte-identical at any `--threads` value. 4096 components keep a
/// million-instance design at a few hundred shards while a benchmark-size
/// design (≤4k cells) still packs as one monolithic tree.
const GCTX_SHARD: usize = 4096;

impl GlobalContext {
    /// Walks the placement once (base shapes + connected-pin list), with
    /// contiguous component chunks built (shapes transformed + STR-packed)
    /// on up to `threads` workers, then stitched with
    /// [`ShapeSet::from_shards`]. Placement rows make contiguous component
    /// indices spatially local, so the stitched tree prunes nearly as well
    /// as a monolithic pack.
    pub(crate) fn build_threaded(tech: &Tech, design: &Design, threads: usize) -> GlobalContext {
        let n = design.components().len();
        let num_layers = tech.layers().len();
        let chunks: Vec<(usize, usize)> = (0..n)
            .step_by(GCTX_SHARD)
            .map(|lo| (lo, (lo + GCTX_SHARD).min(n)))
            .collect();
        let shard_out: Vec<(ShapeSet, Vec<Option<Rect>>)> =
            crate::parallel::parallel_map(threads, chunks, |(lo, hi)| {
                let mut set = ShapeSet::new(num_layers);
                let mut bounds: Vec<Option<Rect>> = vec![None; hi - lo];
                for (slot, (ci, c)) in bounds
                    .iter_mut()
                    .zip(design.components()[lo..hi].iter().enumerate())
                {
                    let comp = CompId((lo + ci) as u32);
                    if c.master_in(tech).is_none() || !c.is_placed {
                        continue;
                    }
                    design.for_each_placed_pin_shape(tech, comp, |pin_idx, layer, rect| {
                        set.insert_deferred(layer, rect, pin_owner(comp, pin_idx));
                        *slot = Some(slot.map_or(rect, |b| b.hull(rect)));
                    });
                    design.for_each_placed_obs_shape(tech, comp, |layer, rect| {
                        set.insert_deferred(layer, rect, Owner::obs(u64::from(comp.0)));
                        *slot = Some(slot.map_or(rect, |b| b.hull(rect)));
                    });
                }
                set.rebuild();
                (set, bounds)
            });
        let mut bounds: Vec<Option<Rect>> = Vec::with_capacity(n);
        let mut shards: Vec<ShapeSet> = Vec::with_capacity(shard_out.len());
        for (set, b) in shard_out {
            shards.push(set);
            bounds.extend(b);
        }
        let base = if shards.is_empty() {
            ShapeSet::new(num_layers)
        } else {
            ShapeSet::from_shards(shards)
        };
        let mut connected: Vec<(CompId, usize)> = Vec::new();
        for net in design.nets() {
            for (comp, pin_name) in net.comp_pins() {
                if !design.component(comp).is_placed {
                    continue;
                }
                let Some(master) = design.component(comp).master_in(tech) else {
                    continue;
                };
                let Some(pin_idx) = master.pins.iter().position(|p| p.name == pin_name) else {
                    continue;
                };
                connected.push((comp, pin_idx));
            }
        }
        GlobalContext {
            base,
            connected,
            bounds,
        }
    }

    /// A full context: the base plus every connected pin's selected via
    /// per `accessor`, excluding pins in `skip` (rip-up). Repacked.
    pub(crate) fn with_vias(
        &self,
        tech: &Tech,
        accessor: &(impl Fn(CompId, usize) -> Option<AccessPoint> + ?Sized),
        skip: Option<&std::collections::HashSet<(CompId, usize)>>,
    ) -> ShapeSet {
        let mut vias = ShapeSet::new(self.base.num_layers());
        for &(comp, pin_idx) in &self.connected {
            if skip.is_some_and(|s| s.contains(&(comp, pin_idx))) {
                continue;
            }
            if let Some(ap) = accessor(comp, pin_idx) {
                if let Some(v) = ap.primary_via() {
                    for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
                        vias.insert_deferred(layer, rect, pin_owner(comp, pin_idx));
                    }
                }
            }
        }
        // `merged` bulk-loads base + vias in one pack per layer — no
        // clone of an index that the repack would discard anyway.
        self.base.merged(&vias)
    }
}

/// Counts Table III's `(total pins, failed pins)`: every component pin
/// with a net attached must end with a DRC-clean access point, checked
/// against the **whole-design** context (all pins, obstructions and every
/// other selected via).
#[must_use]
pub fn count_failed_pins(tech: &Tech, design: &Design, result: &PaoResult) -> (usize, usize) {
    count_failed_pins_threaded(tech, design, result, 1).0
}

/// [`count_failed_pins`] with the per-pin DRC probes fanned out over
/// `threads` workers.
#[must_use]
pub fn count_failed_pins_threaded(
    tech: &Tech,
    design: &Design,
    result: &PaoResult,
    threads: usize,
) -> ((usize, usize), ExecReport) {
    count_failed_pins_with_threaded(
        tech,
        design,
        |comp, pin_idx| result.access_point(design, comp, pin_idx),
        threads,
    )
}

/// Generic form of [`count_failed_pins`]: `accessor` supplies the selected
/// access point per `(component, pin index)` in die coordinates. Used to
/// score both PAAF and baseline pin access with identical rules.
#[must_use]
pub fn count_failed_pins_with(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
) -> (usize, usize) {
    count_failed_pins_with_threaded(tech, design, accessor, 1).0
}

/// [`count_failed_pins_with`] with the per-pin DRC probes fanned out over
/// `threads` workers. The audit context is immutable once built, so every
/// connected pin checks independently.
#[must_use]
pub fn count_failed_pins_with_threaded(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
) -> ((usize, usize), ExecReport) {
    let (counts, exec, _faults) = count_failed_pins_with_faults(tech, design, accessor, threads);
    (counts, exec)
}

/// Fault-isolated form of [`count_failed_pins_with_threaded`]: an audit
/// probe that panics quarantines its pin (counted failed — the audit could
/// not certify it) and the fault is returned instead of aborting.
#[must_use]
pub fn count_failed_pins_with_faults(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
) -> ((usize, usize), ExecReport, Vec<FaultRecord>) {
    let token = CancelToken::never();
    let (counts, exec, faults, _skipped) = count_failed_pins_with_budget(
        tech,
        design,
        accessor,
        threads,
        PhaseBudget::new(&token, None),
    );
    (counts, exec, faults)
}

/// [`count_failed_pins_with_faults`] under a phase budget: a pin skipped
/// by an expired [`CancelToken`] conservatively counts as failed (it was
/// never certified clean) and lands in the returned skip tally rather
/// than the fault list.
#[must_use]
pub fn count_failed_pins_with_budget(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
    budget: PhaseBudget<'_>,
) -> ((usize, usize), ExecReport, Vec<FaultRecord>, usize) {
    let gctx = GlobalContext::build_threaded(tech, design, threads);
    audit_pins_budget(tech, design, &gctx, &accessor, None, threads, budget)
}

/// The audit over a prebuilt [`GlobalContext`], optionally short-cutting
/// with per-pin `hints` (the last repair round's scan verdicts, aligned
/// with `gctx.connected`; `None` entries are probed normally). When every
/// pin carries a hint, the audit context is never even built — the scan
/// already probed the identical context. Hinted pins still flow through
/// the `audit.pin` executor, so fault isolation, budgeting and the
/// thread-count identity contract are unchanged.
pub(crate) fn audit_pins_budget(
    tech: &Tech,
    design: &Design,
    gctx: &GlobalContext,
    accessor: &(impl Fn(CompId, usize) -> Option<AccessPoint> + Sync),
    hints: Option<&[Option<bool>]>,
    threads: usize,
    budget: PhaseBudget<'_>,
) -> ((usize, usize), ExecReport, Vec<FaultRecord>, usize) {
    let connected = &gctx.connected;
    let hint_of = |i: usize| -> Option<bool> {
        hints
            .filter(|h| h.len() == connected.len())
            .and_then(|h| h[i])
    };
    let engine = DrcEngine::new(tech);
    let unhinted: Vec<usize> = (0..connected.len())
        .filter(|&i| hint_of(i).is_none())
        .collect();
    let ctx = if unhinted.is_empty() {
        pao_obs::counter_add("audit.hinted_all", 1);
        None
    } else if hints.is_some_and(|h| h.len() == connected.len())
        && unhinted.len() * 8 <= connected.len()
    {
        // A hinted audit with only a few residual probes (the last repair
        // round's greedy pins) doesn't need the full base+vias repack:
        // every probe reads only within its via shapes' per-layer search
        // halos, so a context holding just those windows' shapes gives
        // identical verdicts. The windows are filled from the packed
        // base plus a raw (never packed) selected-via set — raw queries
        // scan each layer's pending items linearly, which for a handful
        // of windows beats packing four-digit via counts outright.
        // Shapes duplicated by overlapping windows are verdict-neutral:
        // merged checks take idempotent same-owner unions, pairwise
        // checks merely re-test the same pair.
        pao_obs::counter_add("audit.windowed_ctx", 1);
        let mut vias = ShapeSet::new(gctx.base.num_layers());
        for &(comp, pin_idx) in connected {
            if let Some(ap) = accessor(comp, pin_idx) {
                if let Some(v) = ap.primary_via() {
                    for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
                        vias.insert_deferred(layer, rect, pin_owner(comp, pin_idx));
                    }
                }
            }
        }
        let mut wctx = ShapeSet::new(gctx.base.num_layers());
        for &i in &unhinted {
            let (comp, pin_idx) = connected[i];
            let Some(ap) = accessor(comp, pin_idx) else {
                continue;
            };
            let Some(v) = ap.primary_via() else { continue };
            for (layer, rect) in tech.via(v).each_placed_shape(ap.pos) {
                let w = rect.expanded(engine.halo(layer));
                let mut put = |r: Rect, o: Owner| {
                    wctx.insert_deferred(layer, r, o);
                    true
                };
                gctx.base.for_each_in(layer, w, &mut put);
                vias.for_each_in(layer, w, &mut put);
            }
        }
        wctx.rebuild();
        Some(wctx)
    } else {
        Some(gctx.with_vias(tech, accessor, None))
    };
    let (oks, exec) = {
        let (ctx, engine, hint_of) = (&ctx, &engine, &hint_of);
        parallel_map_budget(
            threads,
            "audit.pin",
            (0..connected.len()).collect::<Vec<_>>(),
            DrcScratch::new,
            move |ws, i| {
                if let Some(ok) = hint_of(i) {
                    pao_obs::counter_add("audit.hint_hits", 1);
                    return ok;
                }
                let (comp, pin_idx) = connected[i];
                // `ctx` is `Some` whenever any pin lacks a hint.
                let ok = match (accessor(comp, pin_idx), ctx) {
                    (Some(ap), Some(ctx)) => match ap.primary_via() {
                        Some(v) => engine.via_placement_clean(
                            tech.via(v),
                            ap.pos,
                            pin_owner(comp, pin_idx),
                            ctx,
                            ws,
                        ),
                        // Planar-only access (macro pins): accept.
                        None => !ap.planar.is_empty(),
                    },
                    _ => false,
                };
                ws.flush_obs();
                ok
            },
            budget,
        )
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let mut failed = 0usize;
    let mut skipped = 0usize;
    for (&(comp, pin_idx), ok) in connected.iter().zip(oks) {
        match ok {
            Ok(true) => {}
            Ok(false) => failed += 1,
            // Skipped by the budget: never certified clean, so it
            // conservatively counts as failed (no fault record).
            Err(ItemFault::Skipped(_)) => {
                failed += 1;
                skipped += 1;
            }
            // Quarantined probe: the pin could not be certified clean, so
            // it conservatively counts as failed.
            Err(ItemFault::Panic(reason)) => {
                failed += 1;
                faults.push(FaultRecord {
                    phase: Phase::Audit,
                    item: pin_label(tech, design, comp, pin_idx),
                    reason,
                });
            }
        }
    }
    ((connected.len(), failed), exec, faults, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::{Component, Net, NetPin, TrackPattern};
    use pao_geom::{Dir, Orient, Point};
    use pao_tech::rules::MinStepRule;
    use pao_tech::{Layer, Macro, Pin, PinDir, Port, ViaDef};

    /// A small but complete world: 3-layer tech, one 2-pin cell, a design
    /// with two abutting instances and nets.
    fn world() -> (Tech, Design) {
        let mut t = Tech::new(1000);
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.min_step = Some(MinStepRule::simple(60));
        let m1 = t.add_layer(m1);
        let v1 = t.add_layer(Layer::cut("V1", 70, 80));
        let m2 = t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        let mut via = ViaDef::new(
            "via1_0",
            m1,
            vec![Rect::new(-65, -35, 65, 35)],
            v1,
            vec![Rect::new(-35, -35, 35, 35)],
            m2,
            vec![Rect::new(-35, -65, 35, 65)],
        );
        via.is_default = true;
        t.add_via(via);
        // 1200×1400 cell with pins A (left) and Y (right), both tall bars
        // crossing tracks at y = 100…1300.
        let mut cell = Macro::new("BUFX1", 1200, 1400);
        cell.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(m1, vec![Rect::new(150, 100, 300, 900)])],
        ));
        cell.pins.push(Pin::new(
            "Y",
            PinDir::Output,
            vec![Port::rects(m1, vec![Rect::new(800, 100, 950, 900)])],
        ));
        t.add_macro(cell);

        let mut d = Design::new("mini", Rect::new(0, 0, 20_000, 20_000));
        d.tracks
            .push(TrackPattern::new(Dir::Horizontal, 100, 200, 90, vec![m1]));
        d.tracks
            .push(TrackPattern::new(Dir::Vertical, 100, 200, 90, vec![m2]));
        let u0 = d.add_component(Component::new("u0", "BUFX1", Point::new(200, 0), Orient::N));
        let u1 = d.add_component(Component::new(
            "u1",
            "BUFX1",
            Point::new(1400, 0),
            Orient::N,
        ));
        let mut n0 = Net::new("n0");
        n0.pins.push(NetPin::Comp {
            comp: u0,
            pin: "Y".into(),
        });
        n0.pins.push(NetPin::Comp {
            comp: u1,
            pin: "A".into(),
        });
        d.add_net(n0);
        let mut n1 = Net::new("n1");
        n1.pins.push(NetPin::Comp {
            comp: u0,
            pin: "A".into(),
        });
        d.add_net(n1);
        let mut n2 = Net::new("n2");
        n2.pins.push(NetPin::Comp {
            comp: u1,
            pin: "Y".into(),
        });
        d.add_net(n2);
        (t, d)
    }

    #[test]
    fn full_analysis_is_clean_on_easy_design() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        // Both instances share a signature (x offset = 1200 = 6 pitches).
        assert_eq!(result.stats.unique_instances, 1);
        assert!(result.stats.total_aps >= 6, "{}", result.stats);
        assert_eq!(result.stats.dirty_aps, 0);
        assert_eq!(result.stats.pins_without_aps, 0);
        assert_eq!(result.stats.total_pins, 4);
        assert_eq!(result.stats.failed_pins, 0, "{}", result.stats);
        // Every connected pin resolves to an access point on its pin shape.
        for (ci, comp) in d.components().iter().enumerate() {
            let master = comp.master_in(&t).unwrap();
            for (pi, _) in master.pins.iter().enumerate() {
                let ap = result.access_point(&d, CompId(ci as u32), pi).unwrap();
                let shapes = d.placed_pin_shapes(&t, CompId(ci as u32));
                assert!(
                    shapes
                        .iter()
                        .any(|&(p, _, r)| p == pi && r.contains(ap.pos)),
                    "AP {} not on pin {pi} of {}",
                    ap.pos,
                    comp.name
                );
            }
        }
    }

    #[test]
    fn members_share_unique_analysis() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        let a0 = result.access_point(&d, CompId(0), 0).unwrap();
        let a1 = result.access_point(&d, CompId(1), 0).unwrap();
        // Same relative position, translated by the placement delta…
        assert_eq!(a1.pos - a0.pos, Point::new(1200, 0));
        // …and identical type/via data.
        assert_eq!(a0.pref_type, a1.pref_type);
        assert_eq!(a0.vias, a1.vias);
    }

    #[test]
    fn all_access_points_translated() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        let aps0 = result.all_access_points(&d, CompId(0), 0);
        let aps1 = result.all_access_points(&d, CompId(1), 0);
        assert_eq!(aps0.len(), aps1.len());
        assert!(!aps0.is_empty());
        for (a, b) in aps0.iter().zip(&aps1) {
            assert_eq!(b.pos - a.pos, Point::new(1200, 0));
        }
    }

    #[test]
    fn unknown_pin_returns_none() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        assert!(result.access_point(&d, CompId(0), 99).is_none());
    }
}
