//! The top-level pin access oracle.

use crate::apgen::{generate_pin_access_points_scratch, AccessPoint, ApGenConfig, ApScratch};
use crate::cluster::select_patterns_threaded;
use crate::error::{FaultRecord, PaoError, Phase};
use crate::parallel::{parallel_map_quarantine, ExecReport};
use crate::pattern::{generate_patterns, AccessPattern, PatternConfig};
use crate::stats::PaoStats;
use crate::unique::{
    build_instance_context, extract_unique_instances, local_pin_owner, pin_owner, UniqueInstance,
    UniqueInstanceId,
};
use pao_design::{CompId, Design};
use pao_drc::{DrcEngine, DrcScratch, Owner, ShapeSet};
use pao_geom::Rect;
use pao_tech::{LayerId, MacroClass, Tech};
use std::time::Instant;

/// Configuration of the whole three-step analysis.
#[derive(Debug, Clone)]
pub struct PaoConfig {
    /// Step-1 (access point generation) settings.
    pub apgen: ApGenConfig,
    /// Step-2/3 (pattern generation/selection) settings.
    pub pattern: PatternConfig,
    /// Worker threads for every compute phase (AP generation, pattern
    /// DPs, cluster-group selection, repair scans, failed-pin audit).
    /// Defaults to the machine's available parallelism; `1` reproduces
    /// the paper's single-threaded measurement mode bit for bit (the
    /// paper lists multi-threading as future work — implemented here,
    /// with output guaranteed identical for every thread count).
    pub threads: usize,
    /// Post-selection repair rounds (rip-up and re-place of residual
    /// dirty access points, mirroring the router's per-pin freedom).
    /// 0 disables repair — use that to measure the selection stage alone.
    pub repair_rounds: usize,
}

/// The default worker count: all available hardware parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Default for PaoConfig {
    fn default() -> PaoConfig {
        PaoConfig {
            apgen: ApGenConfig::default(),
            pattern: PatternConfig::default(),
            threads: default_threads(),
            repair_rounds: 3,
        }
    }
}

/// Per-unique-instance analysis result.
#[derive(Debug, Clone)]
pub struct UniqueInstanceAccess {
    /// The unique instance this data describes.
    pub info: UniqueInstance,
    /// Access points per master pin (indexed like the master's pin list;
    /// supply pins and pins without geometry have empty lists). Positions
    /// are in the representative's die frame.
    pub pin_aps: Vec<Vec<AccessPoint>>,
    /// The analyzed pin ordering (indices into the master pin list).
    pub pin_order: Vec<usize>,
    /// Generated access patterns over `pin_order`.
    pub patterns: Vec<AccessPattern>,
}

/// The complete result of [`PinAccessOracle::analyze`].
#[derive(Debug, Clone)]
pub struct PaoResult {
    /// Per-unique-instance access data.
    pub unique: Vec<UniqueInstanceAccess>,
    /// Unique instance of each component (`None` for unknown masters).
    pub comp_uniq: Vec<Option<UniqueInstanceId>>,
    /// Selected pattern per component (`None` when no pattern exists).
    pub selection: Vec<Option<usize>>,
    /// Per-pin repair overrides (die-frame access points) applied after
    /// cluster selection, exactly as the downstream router would deviate
    /// from a pattern when a specific pin demands a different AP.
    pub overrides: std::collections::HashMap<(CompId, usize), AccessPoint>,
    /// Run statistics (Tables II/III raw numbers).
    pub stats: PaoStats,
}

impl PaoResult {
    /// The selected access point for `(comp, pin_idx)`, translated into
    /// the component's die frame. `None` when the pin failed analysis.
    #[must_use]
    pub fn access_point(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Option<AccessPoint> {
        if let Some(ap) = self.overrides.get(&(comp, pin_idx)) {
            return Some(ap.clone());
        }
        let ui = self.comp_uniq.get(comp.index()).copied().flatten()?;
        let u = &self.unique[ui.index()];
        let sel = self.selection.get(comp.index()).copied().flatten()?;
        let pat = u.patterns.get(sel)?;
        let pos_in_order = u.pin_order.iter().position(|&p| p == pin_idx)?;
        let ap_idx = *pat.choice.get(pos_in_order)?;
        let mut ap = u.pin_aps[pin_idx].get(ap_idx)?.clone();
        let delta = design.component(comp).location - design.component(u.info.rep).location;
        ap.pos += delta;
        Some(ap)
    }

    /// All access points of `(comp, pin_idx)` (not just the selected one),
    /// translated into the component's die frame.
    #[must_use]
    pub fn all_access_points(
        &self,
        design: &Design,
        comp: CompId,
        pin_idx: usize,
    ) -> Vec<AccessPoint> {
        let Some(ui) = self.comp_uniq.get(comp.index()).copied().flatten() else {
            return Vec::new();
        };
        let u = &self.unique[ui.index()];
        let delta = design.component(comp).location - design.component(u.info.rep).location;
        u.pin_aps
            .get(pin_idx)
            .map(|aps| {
                aps.iter()
                    .map(|ap| {
                        let mut ap = ap.clone();
                        ap.pos += delta;
                        ap
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// The pin access oracle: runs the three-step PAAF analysis on a placed
/// design (see the [crate docs](crate) for the algorithm outline).
#[derive(Debug, Clone, Default)]
pub struct PinAccessOracle {
    config: PaoConfig,
}

impl PinAccessOracle {
    /// Creates an oracle with the paper's default parameters
    /// (`k = 3`, `α = 0.3`, up to 3 patterns, BCA and history costs on).
    #[must_use]
    pub fn new() -> PinAccessOracle {
        PinAccessOracle::default()
    }

    /// Creates an oracle with custom parameters.
    #[must_use]
    pub fn with_config(config: PaoConfig) -> PinAccessOracle {
        PinAccessOracle { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &PaoConfig {
        &self.config
    }

    /// Runs the full three-step analysis.
    ///
    /// When [`pao_obs::enable_metrics`] is on, the run's `apgen.*` /
    /// `pattern.*` / `select.*` / `repair.*` counters land in
    /// [`PaoStats::metrics`] (as a delta, so back-to-back runs in one
    /// process stay separable). When [`pao_obs::enable_trace`] is on,
    /// every phase and every work item records spans collectable with
    /// [`pao_obs::take_trace`].
    #[must_use]
    pub fn analyze(&self, tech: &Tech, design: &Design) -> PaoResult {
        let engine = DrcEngine::new(tech);
        let run_start = Instant::now();
        let metrics_before = pao_obs::metrics_enabled().then(pao_obs::snapshot);

        // ---- Step 1: unique instances + access point generation.
        let phase_span = pao_obs::span("phase.apgen");
        let t0 = Instant::now();
        let infos = extract_unique_instances(tech, design);
        let mut comp_uniq: Vec<Option<UniqueInstanceId>> = vec![None; design.components().len()];
        for info in &infos {
            for &m in &info.members {
                comp_uniq[m.index()] = Some(info.id);
            }
        }
        let apcfg = &self.config.apgen;
        type ApgenItem = (UniqueInstanceAccess, usize, usize, usize, usize);
        let (analyzed, apgen_exec) = {
            let infos = &infos;
            parallel_map_quarantine(
                self.config.threads,
                "apgen.instance",
                (0..infos.len()).collect::<Vec<_>>(),
                || (),
                move |(), idx| -> Result<ApgenItem, PaoError> {
                    let info = &infos[idx];
                    let engine = DrcEngine::new(tech);
                    let Some(master) = tech.macro_by_name(&info.master) else {
                        return Err(PaoError::input(format!(
                            "unique instance {} (component `{}`) references unknown master `{}`",
                            info.id.index(),
                            design.component(info.rep).name,
                            info.master
                        )));
                    };
                    let ctx = build_instance_context(tech, design, info.rep);
                    let shapes = design.placed_pin_shapes(tech, info.rep);
                    let mut apcfg = apcfg.clone();
                    if master.class == MacroClass::Block {
                        // Macro pins: planar access acceptable.
                        apcfg.require_via = false;
                    }
                    let mut pin_aps: Vec<Vec<AccessPoint>> = vec![Vec::new(); master.pins.len()];
                    let (mut total, mut dirty, mut without, mut off_track) =
                        (0usize, 0usize, 0usize, 0usize);
                    // One scratch per instance context: the pins share coordinate
                    // buffers and memoized via probes (the audit below re-asks
                    // exactly the placements generation already checked).
                    let mut scratch = ApScratch::new();
                    for (pin_idx, pin) in master.pins.iter().enumerate() {
                        if pin.use_.is_supply() {
                            continue;
                        }
                        let rects: Vec<(LayerId, Rect)> = shapes
                            .iter()
                            .filter(|&&(pi, _, _)| pi == pin_idx)
                            .map(|&(_, l, r)| (l, r))
                            .collect();
                        if rects.is_empty() {
                            continue;
                        }
                        let aps = generate_pin_access_points_scratch(
                            tech,
                            design,
                            &engine,
                            &ctx,
                            pin_idx,
                            &rects,
                            &apcfg,
                            &mut scratch,
                        );
                        total += aps.len();
                        off_track += aps.iter().filter(|ap| ap.is_off_track()).count();
                        if aps.is_empty() {
                            without += 1;
                        } else {
                            // Honest dirty-AP audit (0 by construction for PAAF) —
                            // a memo lookup per AP, not a fresh DRC probe.
                            for ap in &aps {
                                if let Some(v) = ap.primary_via() {
                                    if !scratch.via_clean(
                                        tech,
                                        &engine,
                                        &ctx,
                                        v,
                                        ap.pos,
                                        local_pin_owner(pin_idx),
                                    ) {
                                        dirty += 1;
                                    }
                                }
                            }
                        }
                        pin_aps[pin_idx] = aps;
                    }
                    scratch.flush_obs();
                    Ok((
                        UniqueInstanceAccess {
                            info: info.clone(),
                            pin_aps,
                            pin_order: Vec::new(),
                            patterns: Vec::new(),
                        },
                        total,
                        dirty,
                        without,
                        off_track,
                    ))
                },
            )
        };
        let mut unique: Vec<UniqueInstanceAccess> = Vec::with_capacity(analyzed.len());
        let mut faults: Vec<FaultRecord> = Vec::new();
        let mut total_aps = 0usize;
        let mut dirty_aps = 0usize;
        let mut pins_without_aps = 0usize;
        let mut off_track_aps = 0usize;
        for (idx, outcome) in analyzed.into_iter().enumerate() {
            // Flatten quarantined panics and typed errors into one degraded
            // path: the instance keeps a placeholder (no APs, no patterns)
            // and the run records why.
            let flat = match outcome {
                Ok(Ok(item)) => Ok(item),
                Ok(Err(e)) => Err(e.to_string()),
                Err(reason) => Err(reason),
            };
            match flat {
                Ok((u, total, dirty, without, off_track)) => {
                    total_aps += total;
                    dirty_aps += dirty;
                    pins_without_aps += without;
                    off_track_aps += off_track;
                    unique.push(u);
                }
                Err(reason) => {
                    let info = &infos[idx];
                    faults.push(FaultRecord {
                        phase: Phase::Apgen,
                        item: format!(
                            "unique instance {} (`{}` of master `{}`)",
                            info.id.index(),
                            design.component(info.rep).name,
                            info.master
                        ),
                        reason,
                    });
                    let npins = tech.macro_by_name(&info.master).map_or(0, |m| m.pins.len());
                    unique.push(UniqueInstanceAccess {
                        info: info.clone(),
                        pin_aps: vec![Vec::new(); npins],
                        pin_order: Vec::new(),
                        patterns: Vec::new(),
                    });
                }
            }
        }
        drop(infos);
        let apgen_time = t0.elapsed();
        drop(phase_span);

        // ---- Step 2: pattern generation per unique instance.
        let phase_span = pao_obs::span("phase.pattern");
        let t1 = Instant::now();
        let pattern_exec;
        {
            let unique_ref = &unique;
            let (results, exec) = parallel_map_quarantine(
                self.config.threads,
                "pattern.instance",
                (0..unique_ref.len()).collect::<Vec<_>>(),
                || (),
                |(), i| {
                    let engine = DrcEngine::new(tech);
                    generate_patterns(tech, &engine, &unique_ref[i].pin_aps, &self.config.pattern)
                },
            );
            pattern_exec = exec;
            for (i, res) in results.into_iter().enumerate() {
                match res {
                    Ok((order, patterns)) => {
                        unique[i].pin_order = order;
                        unique[i].patterns = patterns;
                    }
                    // Quarantined: the instance keeps empty order/patterns,
                    // so its members simply have no selected access.
                    Err(reason) => faults.push(FaultRecord {
                        phase: Phase::Pattern,
                        item: format!(
                            "unique instance {} (master `{}`)",
                            unique[i].info.id.index(),
                            unique[i].info.master
                        ),
                        reason,
                    }),
                }
            }
        }
        let pattern_time = t1.elapsed();
        drop(phase_span);

        // ---- Step 3: cluster-based selection + final validation.
        let phase_span = pao_obs::span("phase.select");
        let t2 = Instant::now();
        let (selection, cluster_exec, select_faults) = select_patterns_threaded(
            tech,
            &engine,
            design,
            &comp_uniq,
            &unique,
            self.config.threads,
        );
        faults.extend(select_faults);
        let mut result = PaoResult {
            unique,
            comp_uniq,
            selection,
            overrides: std::collections::HashMap::new(),
            stats: PaoStats {
                total_aps,
                dirty_aps,
                pins_without_aps,
                off_track_aps,
                apgen_time,
                pattern_time,
                apgen_exec,
                pattern_exec,
                cluster_exec,
                ..PaoStats::default()
            },
        };
        result.stats.unique_instances = result.unique.len();
        drop(phase_span);
        // Repair pass: for residual conflicts the whole-pattern DP cannot
        // untangle (frustrated chains of tightly-abutting boundary pins),
        // deviate per pin to any alternate clean AP — the same freedom the
        // detailed router has when it consumes the access points.
        let phase_span = pao_obs::span("phase.repair");
        for _round in 0..self.config.repair_rounds {
            pao_obs::counter_add("repair.rounds", 1);
            let (repaired, exec, repair_faults) =
                repair_failed_pins_threaded(tech, design, &mut result, self.config.threads);
            result.stats.repair_exec.merge(&exec);
            faults.extend(repair_faults);
            if repaired == 0 {
                break;
            }
        }
        result.stats.repaired_pins = result.overrides.len();
        drop(phase_span);
        let phase_span = pao_obs::span("phase.audit");
        let ((total_pins, failed_pins), audit_exec, audit_faults) = count_failed_pins_with_faults(
            tech,
            design,
            |comp, pin_idx| result.access_point(design, comp, pin_idx),
            self.config.threads,
        );
        faults.extend(audit_faults);
        result.stats.audit_exec = audit_exec;
        result.stats.total_pins = total_pins;
        result.stats.failed_pins = failed_pins;
        drop(phase_span);
        for fault in &faults {
            pao_obs::counter_add(fault.phase.quarantine_counter(), 1);
        }
        result.stats.quarantined = faults;
        result.stats.cluster_time = t2.elapsed();
        result.stats.run_time = run_start.elapsed();
        if let Some(before) = metrics_before {
            result.stats.metrics = pao_obs::snapshot().delta_since(&before);
        }
        result
    }
}

/// One repair round: identifies every connected pin whose selected access
/// is dirty in the whole-design context, **rips up** all their vias, and
/// greedily re-places each (current AP first, then alternates) against the
/// remaining context — so mutually-blocking pairs can both move. Returns
/// the number of pins re-placed.
///
/// The dirty-pin scan (the dominant cost: one whole-design DRC probe per
/// connected pin) fans out over `threads` workers. The greedy
/// re-placement itself stays sequential — it is order-dependent by design
/// and touches only the few dirty pins.
///
/// A scan item that panics is quarantined: its pin is treated as
/// not-dirty (left untouched this round) and reported in the returned
/// fault list instead of aborting the run.
pub(crate) fn repair_failed_pins_threaded(
    tech: &Tech,
    design: &Design,
    result: &mut PaoResult,
    threads: usize,
) -> (usize, ExecReport, Vec<FaultRecord>) {
    let engine = DrcEngine::new(tech);
    let (ctx, connected) = build_global_context(tech, design, result);
    let is_dirty = |ap: &AccessPoint, owner: Owner, ctx: &ShapeSet, ws: &mut DrcScratch| -> bool {
        match ap.primary_via() {
            Some(v) => !engine.via_placement_clean(tech.via(v), ap.pos, owner, ctx, ws),
            None => ap.planar.is_empty(),
        }
    };
    let (flags, exec) = {
        let (result, ctx, is_dirty) = (&*result, &ctx, &is_dirty);
        parallel_map_quarantine(
            threads,
            "repair.scan",
            connected.clone(),
            DrcScratch::new,
            move |ws, (comp, pin_idx)| {
                let dirty = match result.access_point(design, comp, pin_idx) {
                    Some(ap) => is_dirty(&ap, pin_owner(comp, pin_idx), ctx, ws),
                    None => true,
                };
                ws.flush_obs();
                dirty
            },
        )
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let dirty: Vec<(CompId, usize)> = connected
        .iter()
        .copied()
        .zip(flags)
        .filter_map(|((comp, pin_idx), d)| match d {
            Ok(d) => d.then_some((comp, pin_idx)),
            Err(reason) => {
                faults.push(FaultRecord {
                    phase: Phase::Repair,
                    item: pin_label(tech, design, comp, pin_idx),
                    reason,
                });
                None
            }
        })
        .collect();
    pao_obs::hist_record("repair.dirty_pins", dirty.len() as u64);
    if dirty.is_empty() {
        return (0, exec, faults);
    }
    // Rebuild the context without the dirty pins' vias (rip-up).
    let dirty_set: std::collections::HashSet<(CompId, usize)> = dirty.iter().copied().collect();
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            ctx.insert(layer, rect, pin_owner(comp, pin_idx));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            ctx.insert(layer, rect, Owner::obs(u64::from(comp.0)));
        }
    }
    for &(comp, pin_idx) in &connected {
        if dirty_set.contains(&(comp, pin_idx)) {
            continue;
        }
        if let Some(ap) = result.access_point(design, comp, pin_idx) {
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).placed_shapes(ap.pos) {
                    ctx.insert(layer, rect, pin_owner(comp, pin_idx));
                }
            }
        }
    }
    ctx.rebuild();
    // Greedy re-placement.
    let mut repaired = 0usize;
    let mut ws = DrcScratch::new();
    for &(comp, pin_idx) in &dirty {
        let owner = pin_owner(comp, pin_idx);
        let current = result.access_point(design, comp, pin_idx);
        let mut candidates: Vec<AccessPoint> = Vec::new();
        candidates.extend(current.clone());
        for alt in result.all_access_points(design, comp, pin_idx) {
            if current.as_ref().map(|c| c.pos) != Some(alt.pos) {
                candidates.push(alt);
            }
        }
        // `find_map` keeps the winning candidate *and* its via together,
        // so there is no second (fallible) `primary_via` lookup.
        let placed = candidates.into_iter().find_map(|cand| {
            let v = cand.primary_via()?;
            (!is_dirty(&cand, owner, &ctx, &mut ws)).then_some((cand, v))
        });
        if let Some((cand, v)) = placed {
            for (l, r) in tech.via(v).placed_shapes(cand.pos) {
                ctx.insert(l, r, owner);
            }
            result.overrides.insert((comp, pin_idx), cand);
            repaired += 1;
            pao_obs::counter_add("repair.replaced", 1);
        } else if let Some(cur) = current {
            // Nothing clean: keep the current choice committed so later
            // pins at least see it.
            if let Some(v) = cur.primary_via() {
                for (l, r) in tech.via(v).placed_shapes(cur.pos) {
                    ctx.insert(l, r, owner);
                }
            }
        }
    }
    ws.flush_obs();
    (repaired, exec, faults)
}

/// `"pin <component>/<pin name>"` for fault reports; degrades to the pin
/// index when the master is unknown.
fn pin_label(tech: &Tech, design: &Design, comp: CompId, pin_idx: usize) -> String {
    let cname = &design.component(comp).name;
    match design
        .component(comp)
        .master_in(tech)
        .and_then(|m| m.pins.get(pin_idx))
    {
        Some(pin) => format!("pin {cname}/{}", pin.name),
        None => format!("pin {cname}/#{pin_idx}"),
    }
}

/// Builds the whole-design shape context (pins, obstructions, every
/// selected access via) plus the connected-pin list.
fn build_global_context(
    tech: &Tech,
    design: &Design,
    result: &PaoResult,
) -> (ShapeSet, Vec<(CompId, usize)>) {
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            ctx.insert(layer, rect, pin_owner(comp, pin_idx));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            ctx.insert(layer, rect, Owner::obs(u64::from(comp.0)));
        }
    }
    let mut connected: Vec<(CompId, usize)> = Vec::new();
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            if !design.component(comp).is_placed {
                continue;
            }
            let Some(master) = design.component(comp).master_in(tech) else {
                continue;
            };
            let Some(pin_idx) = master.pins.iter().position(|p| p.name == pin_name) else {
                continue;
            };
            connected.push((comp, pin_idx));
        }
    }
    for &(comp, pin_idx) in &connected {
        if let Some(ap) = result.access_point(design, comp, pin_idx) {
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).placed_shapes(ap.pos) {
                    ctx.insert(layer, rect, pin_owner(comp, pin_idx));
                }
            }
        }
    }
    ctx.rebuild();
    (ctx, connected)
}

/// Counts Table III's `(total pins, failed pins)`: every component pin
/// with a net attached must end with a DRC-clean access point, checked
/// against the **whole-design** context (all pins, obstructions and every
/// other selected via).
#[must_use]
pub fn count_failed_pins(tech: &Tech, design: &Design, result: &PaoResult) -> (usize, usize) {
    count_failed_pins_threaded(tech, design, result, 1).0
}

/// [`count_failed_pins`] with the per-pin DRC probes fanned out over
/// `threads` workers.
#[must_use]
pub fn count_failed_pins_threaded(
    tech: &Tech,
    design: &Design,
    result: &PaoResult,
    threads: usize,
) -> ((usize, usize), ExecReport) {
    count_failed_pins_with_threaded(
        tech,
        design,
        |comp, pin_idx| result.access_point(design, comp, pin_idx),
        threads,
    )
}

/// Generic form of [`count_failed_pins`]: `accessor` supplies the selected
/// access point per `(component, pin index)` in die coordinates. Used to
/// score both PAAF and baseline pin access with identical rules.
#[must_use]
pub fn count_failed_pins_with(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
) -> (usize, usize) {
    count_failed_pins_with_threaded(tech, design, accessor, 1).0
}

/// [`count_failed_pins_with`] with the per-pin DRC probes fanned out over
/// `threads` workers. The audit context is immutable once built, so every
/// connected pin checks independently.
#[must_use]
pub fn count_failed_pins_with_threaded(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
) -> ((usize, usize), ExecReport) {
    let (counts, exec, _faults) = count_failed_pins_with_faults(tech, design, accessor, threads);
    (counts, exec)
}

/// Fault-isolated form of [`count_failed_pins_with_threaded`]: an audit
/// probe that panics quarantines its pin (counted failed — the audit could
/// not certify it) and the fault is returned instead of aborting.
#[must_use]
pub fn count_failed_pins_with_faults(
    tech: &Tech,
    design: &Design,
    accessor: impl Fn(CompId, usize) -> Option<AccessPoint> + Sync,
    threads: usize,
) -> ((usize, usize), ExecReport, Vec<FaultRecord>) {
    // Global context: all placed pin/obs shapes + all selected vias.
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (ci, c) in design.components().iter().enumerate() {
        let comp = CompId(ci as u32);
        if c.master_in(tech).is_none() || !c.is_placed {
            continue;
        }
        for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
            ctx.insert(layer, rect, pin_owner(comp, pin_idx));
        }
        for (layer, rect) in design.placed_obs_shapes(tech, comp) {
            ctx.insert(layer, rect, Owner::obs(u64::from(comp.0)));
        }
    }
    // Connected pins and their selected access.
    let mut connected: Vec<(CompId, usize)> = Vec::new();
    for net in design.nets() {
        for (comp, pin_name) in net.comp_pins() {
            if !design.component(comp).is_placed {
                continue;
            }
            let Some(master) = design.component(comp).master_in(tech) else {
                continue;
            };
            let Some(pin_idx) = master.pins.iter().position(|p| p.name == pin_name) else {
                continue;
            };
            connected.push((comp, pin_idx));
        }
    }
    for &(comp, pin_idx) in &connected {
        if let Some(ap) = accessor(comp, pin_idx) {
            if let Some(v) = ap.primary_via() {
                for (layer, rect) in tech.via(v).placed_shapes(ap.pos) {
                    ctx.insert(layer, rect, pin_owner(comp, pin_idx));
                }
            }
        }
    }
    ctx.rebuild();
    let engine = DrcEngine::new(tech);
    let (oks, exec) = {
        let (ctx, engine, accessor) = (&ctx, &engine, &accessor);
        parallel_map_quarantine(
            threads,
            "audit.pin",
            connected.clone(),
            DrcScratch::new,
            move |ws, (comp, pin_idx)| {
                let ok = match accessor(comp, pin_idx) {
                    Some(ap) => match ap.primary_via() {
                        Some(v) => engine.via_placement_clean(
                            tech.via(v),
                            ap.pos,
                            pin_owner(comp, pin_idx),
                            ctx,
                            ws,
                        ),
                        // Planar-only access (macro pins): accept.
                        None => !ap.planar.is_empty(),
                    },
                    None => false,
                };
                ws.flush_obs();
                ok
            },
        )
    };
    let mut faults: Vec<FaultRecord> = Vec::new();
    let mut failed = 0usize;
    for (&(comp, pin_idx), ok) in connected.iter().zip(oks) {
        match ok {
            Ok(true) => {}
            Ok(false) => failed += 1,
            // Quarantined probe: the pin could not be certified clean, so
            // it conservatively counts as failed.
            Err(reason) => {
                failed += 1;
                faults.push(FaultRecord {
                    phase: Phase::Audit,
                    item: pin_label(tech, design, comp, pin_idx),
                    reason,
                });
            }
        }
    }
    ((connected.len(), failed), exec, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::{Component, Net, NetPin, TrackPattern};
    use pao_geom::{Dir, Orient, Point};
    use pao_tech::rules::MinStepRule;
    use pao_tech::{Layer, Macro, Pin, PinDir, Port, ViaDef};

    /// A small but complete world: 3-layer tech, one 2-pin cell, a design
    /// with two abutting instances and nets.
    fn world() -> (Tech, Design) {
        let mut t = Tech::new(1000);
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.min_step = Some(MinStepRule::simple(60));
        let m1 = t.add_layer(m1);
        let v1 = t.add_layer(Layer::cut("V1", 70, 80));
        let m2 = t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        let mut via = ViaDef::new(
            "via1_0",
            m1,
            vec![Rect::new(-65, -35, 65, 35)],
            v1,
            vec![Rect::new(-35, -35, 35, 35)],
            m2,
            vec![Rect::new(-35, -65, 35, 65)],
        );
        via.is_default = true;
        t.add_via(via);
        // 1200×1400 cell with pins A (left) and Y (right), both tall bars
        // crossing tracks at y = 100…1300.
        let mut cell = Macro::new("BUFX1", 1200, 1400);
        cell.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(m1, vec![Rect::new(150, 100, 300, 900)])],
        ));
        cell.pins.push(Pin::new(
            "Y",
            PinDir::Output,
            vec![Port::rects(m1, vec![Rect::new(800, 100, 950, 900)])],
        ));
        t.add_macro(cell);

        let mut d = Design::new("mini", Rect::new(0, 0, 20_000, 20_000));
        d.tracks
            .push(TrackPattern::new(Dir::Horizontal, 100, 200, 90, vec![m1]));
        d.tracks
            .push(TrackPattern::new(Dir::Vertical, 100, 200, 90, vec![m2]));
        let u0 = d.add_component(Component::new("u0", "BUFX1", Point::new(200, 0), Orient::N));
        let u1 = d.add_component(Component::new(
            "u1",
            "BUFX1",
            Point::new(1400, 0),
            Orient::N,
        ));
        let mut n0 = Net::new("n0");
        n0.pins.push(NetPin::Comp {
            comp: u0,
            pin: "Y".into(),
        });
        n0.pins.push(NetPin::Comp {
            comp: u1,
            pin: "A".into(),
        });
        d.add_net(n0);
        let mut n1 = Net::new("n1");
        n1.pins.push(NetPin::Comp {
            comp: u0,
            pin: "A".into(),
        });
        d.add_net(n1);
        let mut n2 = Net::new("n2");
        n2.pins.push(NetPin::Comp {
            comp: u1,
            pin: "Y".into(),
        });
        d.add_net(n2);
        (t, d)
    }

    #[test]
    fn full_analysis_is_clean_on_easy_design() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        // Both instances share a signature (x offset = 1200 = 6 pitches).
        assert_eq!(result.stats.unique_instances, 1);
        assert!(result.stats.total_aps >= 6, "{}", result.stats);
        assert_eq!(result.stats.dirty_aps, 0);
        assert_eq!(result.stats.pins_without_aps, 0);
        assert_eq!(result.stats.total_pins, 4);
        assert_eq!(result.stats.failed_pins, 0, "{}", result.stats);
        // Every connected pin resolves to an access point on its pin shape.
        for (ci, comp) in d.components().iter().enumerate() {
            let master = comp.master_in(&t).unwrap();
            for (pi, _) in master.pins.iter().enumerate() {
                let ap = result.access_point(&d, CompId(ci as u32), pi).unwrap();
                let shapes = d.placed_pin_shapes(&t, CompId(ci as u32));
                assert!(
                    shapes
                        .iter()
                        .any(|&(p, _, r)| p == pi && r.contains(ap.pos)),
                    "AP {} not on pin {pi} of {}",
                    ap.pos,
                    comp.name
                );
            }
        }
    }

    #[test]
    fn members_share_unique_analysis() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        let a0 = result.access_point(&d, CompId(0), 0).unwrap();
        let a1 = result.access_point(&d, CompId(1), 0).unwrap();
        // Same relative position, translated by the placement delta…
        assert_eq!(a1.pos - a0.pos, Point::new(1200, 0));
        // …and identical type/via data.
        assert_eq!(a0.pref_type, a1.pref_type);
        assert_eq!(a0.vias, a1.vias);
    }

    #[test]
    fn all_access_points_translated() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        let aps0 = result.all_access_points(&d, CompId(0), 0);
        let aps1 = result.all_access_points(&d, CompId(1), 0);
        assert_eq!(aps0.len(), aps1.len());
        assert!(!aps0.is_empty());
        for (a, b) in aps0.iter().zip(&aps1) {
            assert_eq!(b.pos - a.pos, Point::new(1200, 0));
        }
    }

    #[test]
    fn unknown_pin_returns_none() {
        let (t, d) = world();
        let result = PinAccessOracle::new().analyze(&t, &d);
        assert!(result.access_point(&d, CompId(0), 99).is_none());
    }
}
