//! Incremental re-analysis across placement changes.
//!
//! The paper motivates fast pin access analysis with placement
//! optimization loops (detailed placement, sizing, buffering), where cells
//! move repeatedly and "frequent changes in placement require a tremendous
//! amount of inter-cell pin access analysis" (Section IV-B).
//!
//! Intra-cell analysis (steps 1–2) depends only on the unique-instance
//! *signature* — master, orientation and track phases — so its results are
//! reusable across placements. [`AnalysisCache`] keys the per-signature
//! work; [`PinAccessOracle::analyze_with_cache`] skips steps 1–2 for every
//! signature seen before and re-runs only the placement-dependent cluster
//! selection and validation.

use crate::budget::{BudgetAllocator, CancelReason, DeadlineReport, RunBudget, SkipRecord};
use crate::error::Phase;
use crate::oracle::{PaoResult, PinAccessOracle, UniqueInstanceAccess};
use crate::parallel::PhaseBudget;
use crate::unique::extract_unique_instances;
use pao_design::Design;
use pao_geom::{Dbu, Orient, Point};
use pao_tech::{Symbol, Tech};
use std::collections::HashMap;

/// Signature key for cached intra-cell analysis.
type Signature = (Symbol, Orient, Vec<Dbu>);

/// A cached per-signature analysis entry.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// The representative's placement location when the entry was made
    /// (access point positions are stored in that frame).
    rep_location: Point,
    /// Steps 1–2 output (pin APs, ordering, patterns) in the old frame.
    data: UniqueInstanceAccess,
}

/// A reusable cache of unique-instance analyses, keyed by signature.
///
/// ```no_run
/// # let tech: pao_tech::Tech = unimplemented!();
/// # let mut design: pao_design::Design = unimplemented!();
/// use pao_core::{incremental::AnalysisCache, PinAccessOracle};
///
/// let oracle = PinAccessOracle::new();
/// let mut cache = AnalysisCache::new();
/// let first = oracle.analyze_with_cache(&tech, &design, &mut cache);
/// // … move some cells …
/// let second = oracle.analyze_with_cache(&tech, &design, &mut cache);
/// assert!(cache.len() > 0); // intra-cell work was reused
/// # let _ = (first, second);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    entries: HashMap<Signature, CacheEntry>,
    hits: usize,
    misses: usize,
}

impl AnalysisCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Number of cached signatures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` accumulated over all `analyze_with_cache` calls.
    #[must_use]
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Serializes the cache to the line-oriented `PAO-CACHE v3` format
    /// (version + body checksum header), so short-lived tool invocations
    /// (a placement optimizer's inner loop) can reuse intra-cell analysis
    /// across process boundaries.
    #[must_use]
    pub fn save_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Deterministic order for diff-friendliness.
        let mut sigs: Vec<&Signature> = self.entries.keys().collect();
        // Symbols order by interning history, not text — sort on the name.
        sigs.sort_by(|a, b| (a.0.as_str(), a.1, &a.2).cmp(&(b.0.as_str(), b.1, &b.2)));
        for sig in sigs {
            let e = &self.entries[sig];
            let phases: Vec<String> = sig.2.iter().map(i64::to_string).collect();
            let _ = writeln!(
                out,
                "ENTRY master={} orient={} phases={}",
                sig.0,
                sig.1,
                if phases.is_empty() {
                    "-".to_owned()
                } else {
                    phases.join(",")
                },
            );
            let _ = writeln!(out, "REP {} {}", e.rep_location.x, e.rep_location.y);
            for (pi, aps) in e.data.pin_aps.iter().enumerate() {
                let _ = writeln!(out, "PIN {} {}", pi, aps.len());
                for ap in aps {
                    crate::persist::write_ap(&mut out, ap);
                }
            }
            let order: Vec<String> = e.data.pin_order.iter().map(usize::to_string).collect();
            let _ = writeln!(
                out,
                "ORDER {}",
                if order.is_empty() {
                    "-".to_owned()
                } else {
                    order.join(",")
                },
            );
            for p in &e.data.patterns {
                crate::persist::write_pattern(&mut out, p);
            }
            let _ = writeln!(out, "END");
        }
        crate::persist::seal(&out)
    }

    /// Loads a cache saved by [`save_to_string`](AnalysisCache::save_to_string).
    ///
    /// # Errors
    ///
    /// Returns [`LoadCacheError`](crate::persist::LoadCacheError) on a bad
    /// header (wrong version, missing or mismatching checksum) or a
    /// malformed entry. Line numbers in errors are 1-based whole-file
    /// positions (the body starts on line 2, after the header).
    pub fn load_from_string(text: &str) -> Result<AnalysisCache, crate::persist::LoadCacheError> {
        use crate::persist::{open, parse_ap, parse_pattern, LoadCacheError};
        let body = open(text)?;
        let mut lines = body.lines().enumerate().peekable();
        let err = |m: &str, n: usize| LoadCacheError {
            message: m.to_owned(),
            line: n + 2,
        };
        let mut cache = AnalysisCache::new();
        while let Some((n, line)) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("ENTRY ")
                .ok_or_else(|| err("expected ENTRY", n))?;
            let mut master = None;
            let mut orient = None;
            let mut phases = None;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("master=") {
                    master = Some(Symbol::intern(v));
                } else if let Some(v) = tok.strip_prefix("orient=") {
                    orient = Some(v.parse::<Orient>().map_err(|e| err(&e.to_string(), n))?);
                } else if let Some(v) = tok.strip_prefix("phases=") {
                    phases = Some(if v == "-" {
                        Vec::new()
                    } else {
                        v.split(',')
                            .map(str::parse)
                            .collect::<Result<Vec<i64>, _>>()
                            .map_err(|_| err("bad phase", n))?
                    });
                }
            }
            let master = master.ok_or_else(|| err("ENTRY missing master", n))?;
            let orient = orient.ok_or_else(|| err("ENTRY missing orient", n))?;
            let phases = phases.ok_or_else(|| err("ENTRY missing phases", n))?;
            let (rn, rep_line) = lines.next().ok_or_else(|| err("missing REP", n))?;
            let rep = rep_line
                .trim()
                .strip_prefix("REP ")
                .and_then(|r| {
                    let mut it = r.split_whitespace();
                    Some(Point::new(
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                    ))
                })
                .ok_or_else(|| err("bad REP", rn))?;
            let mut pin_aps: Vec<Vec<crate::apgen::AccessPoint>> = Vec::new();
            let mut pin_order = Vec::new();
            let mut patterns = Vec::new();
            loop {
                let (bn, body) = lines.next().ok_or_else(|| err("unterminated ENTRY", n))?;
                let body = body.trim();
                if body == "END" {
                    break;
                } else if let Some(rest) = body.strip_prefix("PIN ") {
                    let mut it = rest.split_whitespace();
                    let pi: usize = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad PIN index", bn))?;
                    let count: usize = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad PIN count", bn))?;
                    while pin_aps.len() <= pi {
                        pin_aps.push(Vec::new());
                    }
                    for _ in 0..count {
                        let (an, ap_line) =
                            lines.next().ok_or_else(|| err("missing AP line", bn))?;
                        pin_aps[pi].push(parse_ap(ap_line.trim(), an + 2)?);
                    }
                } else if let Some(rest) = body.strip_prefix("ORDER ") {
                    if rest != "-" {
                        pin_order = rest
                            .split(',')
                            .map(str::parse)
                            .collect::<Result<Vec<usize>, _>>()
                            .map_err(|_| err("bad ORDER", bn))?;
                    }
                } else if body.starts_with("PATTERN") {
                    patterns.push(parse_pattern(body, bn + 2)?);
                } else {
                    return Err(err("unexpected line in ENTRY", bn));
                }
            }
            let sig = (master, orient, phases.clone());
            let data = UniqueInstanceAccess {
                info: crate::unique::UniqueInstance {
                    id: crate::unique::UniqueInstanceId(cache.entries.len() as u32),
                    master,
                    orient,
                    phases,
                    rep: pao_design::CompId(0),
                    members: Vec::new(),
                },
                pin_aps,
                pin_order,
                patterns,
            };
            cache.entries.insert(
                sig,
                CacheEntry {
                    rep_location: rep,
                    data,
                },
            );
        }
        Ok(cache)
    }

    /// Loads a persisted cache, degrading on failure instead of erroring:
    /// corrupt, truncated or version-mismatched input yields an **empty**
    /// cache (so the caller transparently rebuilds via the full-analysis
    /// path) plus the rejection reason. Every rejection bumps the
    /// `cache.rejected` counter.
    #[must_use]
    pub fn load_or_rebuild(text: &str) -> (AnalysisCache, Option<crate::error::PaoError>) {
        match AnalysisCache::load_from_string(text) {
            Ok(cache) => (cache, None),
            Err(e) => {
                pao_obs::counter_add("cache.rejected", 1);
                (AnalysisCache::new(), Some(crate::error::PaoError::from(e)))
            }
        }
    }
}

impl PinAccessOracle {
    /// Like [`analyze`](PinAccessOracle::analyze), but reuses (and fills)
    /// `cache` for the placement-independent steps 1–2. On a placement
    /// where every signature was seen before, only cluster selection,
    /// repair and validation run — the workload of a placement-optimization
    /// inner loop.
    #[must_use]
    pub fn analyze_with_cache(
        &self,
        tech: &Tech,
        design: &Design,
        cache: &mut AnalysisCache,
    ) -> PaoResult {
        self.analyze_with_cache_budget(tech, design, cache, RunBudget::unlimited())
    }

    /// [`analyze_with_cache`](PinAccessOracle::analyze_with_cache) under a
    /// [`RunBudget`]. The full-analysis path (new signatures present)
    /// forwards the whole budget — per-phase allocation, watchdog and
    /// checkpointing included. The cache fast path skips steps 1–2, so it
    /// runs its select/repair/audit tail under the *overall* deadline
    /// token instead of per-phase slices (there is no history for the
    /// shrunken pipeline, and the tail is already the cheap part).
    #[must_use]
    pub fn analyze_with_cache_budget(
        &self,
        tech: &Tech,
        design: &Design,
        cache: &mut AnalysisCache,
        budget: RunBudget<'_>,
    ) -> PaoResult {
        // Which signatures exist in this placement, and which are cached?
        // Resolving every entry up front makes the all-cached check and the
        // fast path share one lookup — there is no later re-lookup that
        // could miss.
        let infos = extract_unique_instances(tech, design);
        let entries: Option<Vec<CacheEntry>> = infos
            .iter()
            .map(|info| {
                cache
                    .entries
                    .get(&(info.master, info.orient, info.phases.clone()))
                    .cloned()
            })
            .collect();
        let Some(entries) = entries else {
            // At least one new signature: run the full analysis (simple and
            // correct; a finer-grained variant could analyze only the new
            // signatures) and refresh the cache from it.
            let result = self.analyze_with_budget(tech, design, budget);
            for u in &result.unique {
                let sig = (u.info.master, u.info.orient, u.info.phases.clone());
                cache.misses += 1;
                pao_obs::counter_add("cache.misses", 1);
                cache.entries.insert(
                    sig,
                    CacheEntry {
                        rep_location: design.component(u.info.rep).location,
                        data: u.clone(),
                    },
                );
            }
            return result;
        };
        // Fast path: rebuild per-unique data from the cache, translated
        // into each new representative's frame.
        let RunBudget {
            deadline,
            fractions,
            watchdog,
            checkpoint: _,
        } = budget;
        let alloc = BudgetAllocator::new(deadline, fractions);
        let token = alloc.overall_token();
        let mut skips: Vec<SkipRecord> = Vec::new();
        let run_start = std::time::Instant::now();
        let metrics_before = pao_obs::metrics_enabled().then(pao_obs::snapshot);
        let fast_span = pao_obs::span("phase.cache_fast_path");
        let t2 = std::time::Instant::now();
        let mut comp_uniq = vec![None; design.components().len()];
        let mut unique = Vec::with_capacity(infos.len());
        for (info, entry) in infos.into_iter().zip(entries) {
            for &m in &info.members {
                comp_uniq[m.index()] = Some(info.id);
            }
            cache.hits += 1;
            pao_obs::counter_add("cache.hits", 1);
            let delta = design.component(info.rep).location - entry.rep_location;
            let mut data = entry.data;
            data.info = info;
            for aps in &mut data.pin_aps {
                for ap in aps {
                    ap.pos += delta;
                }
            }
            unique.push(data);
        }
        let engine = pao_drc::DrcEngine::new(tech);
        let threads = self.config().threads;
        let mut faults: Vec<crate::error::FaultRecord> = Vec::new();
        let select_out = crate::cluster::select_patterns_budget(
            tech,
            &engine,
            design,
            &comp_uniq,
            &unique,
            threads,
            &self.config().select,
            PhaseBudget::new(&token, watchdog),
        );
        faults.extend(select_out.faults);
        crate::oracle::push_skip(
            &mut skips,
            Phase::Select,
            select_out.skipped,
            token.reason().unwrap_or(CancelReason::Deadline),
        );
        let mut result = PaoResult {
            stats: crate::stats::PaoStats {
                unique_instances: unique.len(),
                total_aps: unique
                    .iter()
                    .flat_map(|u| u.pin_aps.iter())
                    .map(Vec::len)
                    .sum(),
                cluster_exec: select_out.exec,
                select_telemetry: select_out.telemetry,
                ..Default::default()
            },
            unique,
            comp_uniq,
            selection: select_out.selection,
            overrides: HashMap::new(),
        };
        let gctx = crate::oracle::GlobalContext::build_threaded(tech, design, threads);
        let mut repair_skipped = 0usize;
        let mut scan_ok: Option<Vec<Option<bool>>> = None;
        for round in 0..self.config().repair_rounds {
            if token.is_cancelled() {
                scan_ok = None;
                break;
            }
            let (repaired, exec, repair_faults, round_skipped, ok_flags) =
                crate::oracle::repair_failed_pins_budget(
                    tech,
                    design,
                    &gctx,
                    &mut result,
                    threads,
                    round,
                    PhaseBudget::new(&token, watchdog),
                );
            result.stats.repair_exec.merge(&exec);
            faults.extend(repair_faults);
            repair_skipped += round_skipped;
            scan_ok = (repaired == 0).then_some(ok_flags);
            if repaired == 0 {
                break;
            }
        }
        crate::oracle::push_skip(
            &mut skips,
            Phase::Repair,
            repair_skipped,
            token.reason().unwrap_or(CancelReason::Deadline),
        );
        result.stats.repaired_pins = result.overrides.len();
        let ((total_pins, failed_pins), audit_exec, audit_faults, audit_skipped) =
            crate::oracle::audit_pins_budget(
                tech,
                design,
                &gctx,
                &|comp, pin_idx| result.access_point(design, comp, pin_idx),
                scan_ok.as_deref(),
                threads,
                PhaseBudget::new(&token, watchdog),
            );
        faults.extend(audit_faults);
        crate::oracle::push_skip(
            &mut skips,
            Phase::Audit,
            audit_skipped,
            token.reason().unwrap_or(CancelReason::Deadline),
        );
        result.stats.audit_exec = audit_exec;
        result.stats.total_pins = total_pins;
        result.stats.failed_pins = failed_pins;
        for fault in &faults {
            pao_obs::counter_add(fault.phase.quarantine_counter(), 1);
        }
        result.stats.quarantined = faults;
        result.stats.deadline = DeadlineReport {
            budget: deadline,
            skipped: skips,
            stalls: token.take_stalls(),
        };
        result.stats.cluster_time = t2.elapsed();
        drop(fast_span);
        result.stats.run_time = run_start.elapsed();
        if let Some(before) = metrics_before {
            result.stats.metrics = pao_obs::snapshot().delta_since(&before);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::CompId;
    use pao_testgen::{generate, SuiteCase};

    #[test]
    fn cache_fast_path_matches_full_analysis() {
        let (tech, mut design) = generate(&SuiteCase::small_smoke());
        let oracle = PinAccessOracle::new();
        let mut cache = AnalysisCache::new();
        let first = oracle.analyze_with_cache(&tech, &design, &mut cache);
        assert!(!cache.is_empty());
        let (h0, m0) = cache.stats();
        assert_eq!(h0, 0);
        assert!(m0 > 0);

        // Swap two same-master instances' locations (signatures preserved
        // when they share a signature; shifting by whole pitch periods
        // also preserves them). Here: re-analyze the identical placement —
        // the pure fast path.
        let second = oracle.analyze_with_cache(&tech, &design, &mut cache);
        let (h1, _) = cache.stats();
        assert!(h1 > 0, "fast path must hit the cache");
        assert_eq!(first.stats.total_aps, second.stats.total_aps);
        assert_eq!(first.stats.failed_pins, second.stats.failed_pins);
        for ci in 0..design.components().len() {
            let comp = CompId(ci as u32);
            let a = first.access_point(&design, comp, 0).map(|a| a.pos);
            let b = second.access_point(&design, comp, 0).map(|a| a.pos);
            assert_eq!(a, b, "{comp}");
        }

        // A genuine move: shift one instance by a full signature period in
        // x (site width × pitch lcm keeps phases — use zero shift in y).
        // Moving by the design's full row keeps the same signature set.
        let c0 = design.component(CompId(0)).clone();
        design.component_mut(CompId(0)).location = c0.location;
        let third = oracle.analyze_with_cache(&tech, &design, &mut cache);
        assert_eq!(third.stats.failed_pins, second.stats.failed_pins);
    }

    #[test]
    fn new_signature_falls_back_to_full_analysis() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let oracle = PinAccessOracle::new();
        let mut cache = AnalysisCache::new();
        let _ = oracle.analyze_with_cache(&tech, &design, &mut cache);
        let before = cache.len();

        // A different seed produces placements with (likely) new phases.
        let (_, design2) = generate(&SuiteCase {
            seed: 777,
            ..SuiteCase::small_smoke()
        });
        let r = oracle.analyze_with_cache(&tech, &design2, &mut cache);
        assert_eq!(r.stats.failed_pins, 0);
        assert!(cache.len() >= before);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use pao_testgen::{generate, SuiteCase};

    #[test]
    fn cache_save_load_roundtrip_preserves_analysis() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let oracle = PinAccessOracle::new();
        let mut cache = AnalysisCache::new();
        let first = oracle.analyze_with_cache(&tech, &design, &mut cache);

        let text = cache.save_to_string();
        assert!(text.starts_with("PAO-CACHE v3 fnv1a="));
        let mut loaded = AnalysisCache::load_from_string(&text).expect("loads");
        assert_eq!(loaded.len(), cache.len());

        // A fresh "process" using the loaded cache hits on everything and
        // produces the same result.
        let again = oracle.analyze_with_cache(&tech, &design, &mut loaded);
        let (hits, misses) = loaded.stats();
        assert!(hits > 0);
        assert_eq!(misses, 0, "loaded cache must cover all signatures");
        assert_eq!(first.stats.total_aps, again.stats.total_aps);
        assert_eq!(first.stats.failed_pins, again.stats.failed_pins);
        for ci in 0..design.components().len() {
            let comp = pao_design::CompId(ci as u32);
            assert_eq!(
                first.access_point(&design, comp, 0).map(|a| a.pos),
                again.access_point(&design, comp, 0).map(|a| a.pos),
            );
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(AnalysisCache::load_from_string("").is_err());
        assert!(AnalysisCache::load_from_string("NOT A CACHE").is_err());
        // Legacy (un-checksummed) caches are a version mismatch: rebuilt,
        // not parsed on trust.
        assert!(
            AnalysisCache::load_from_string("PAO-CACHE v1\nENTRY master=X orient=N phases=-\n")
                .is_err(),
            "v1 cache must be rejected"
        );
        let sealed = crate::persist::seal("ENTRY master=X orient=N phases=-\n");
        assert!(
            AnalysisCache::load_from_string(&sealed).is_err(),
            "unterminated entry"
        );
    }

    #[test]
    fn load_or_rebuild_degrades_to_empty_cache() {
        let (cache, err) = AnalysisCache::load_or_rebuild("PAO-CACHE v1\ngarbage\n");
        assert!(cache.is_empty());
        let err = err.expect("rejection reason");
        assert!(matches!(err, crate::error::PaoError::Cache { .. }), "{err}");
    }

    #[test]
    fn byte_mutated_cache_never_panics() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        let oracle = PinAccessOracle::new();
        let mut cache = AnalysisCache::new();
        let _ = oracle.analyze_with_cache(&tech, &design, &mut cache);
        let text = cache.save_to_string();
        assert!(AnalysisCache::load_from_string(&text).is_ok());
        pao_ptest::check("persist.byte_mutation", 200, |rng| {
            let mut bytes = text.clone().into_bytes();
            // 1–4 random byte smashes (overwrites, not just bit flips), or
            // a truncation — the half-written-file case.
            if rng.gen_bool(0.25) {
                bytes.truncate(rng.gen_range(0..bytes.len()));
            } else {
                for _ in 0..rng.gen_range(1..=4usize) {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] = rng.gen_range(0..=255u64) as u8;
                }
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            // Must never panic; any outcome other than a clean parse or a
            // typed rejection is a bug. The checksum makes silent
            // acceptance of a *changed* body effectively impossible.
            let (loaded, err) = AnalysisCache::load_or_rebuild(&mutated);
            if mutated != text {
                assert!(err.is_some(), "mutated cache accepted: {mutated:?}");
                assert!(loaded.is_empty());
            }
        });
    }
}
