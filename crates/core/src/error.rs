//! Typed error taxonomy for the PAAF pipeline.
//!
//! The oracle is consulted by a detailed router millions of times per run,
//! and the library data arriving at a pin-access tool is routinely dirty —
//! malformed masters, truncated caches, pins with degenerate geometry. A
//! production oracle must therefore degrade per item instead of aborting
//! per process: every fault is classified here, carried through
//! [`PaoStats`](crate::stats::PaoStats) as a [`FaultRecord`], and surfaced
//! to callers as a [`PaoError`] when they ask for strict behavior.

use std::fmt;

/// The pipeline phase (or input surface) where a fault was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Step 1 — per-unique-instance access point generation.
    Apgen,
    /// Step 2 — per-unique-instance pattern generation.
    Pattern,
    /// Step 3 — cluster-group pattern selection.
    Select,
    /// Post-selection repair scans and re-placement.
    Repair,
    /// The final whole-design failed-pin audit.
    Audit,
    /// Persisted-cache loading.
    Cache,
    /// Input loading (LEF/DEF/testcase data).
    Input,
}

impl Phase {
    /// Stable lowercase name (used in reports and counter names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Apgen => "apgen",
            Phase::Pattern => "pattern",
            Phase::Select => "select",
            Phase::Repair => "repair",
            Phase::Audit => "audit",
            Phase::Cache => "cache",
            Phase::Input => "input",
        }
    }

    /// The `pao-obs` counter bumped once per quarantined item of this
    /// phase (`fault.quarantined.<phase>`).
    #[must_use]
    pub fn quarantine_counter(self) -> &'static str {
        match self {
            Phase::Apgen => "fault.quarantined.apgen",
            Phase::Pattern => "fault.quarantined.pattern",
            Phase::Select => "fault.quarantined.select",
            Phase::Repair => "fault.quarantined.repair",
            Phase::Audit => "fault.quarantined.audit",
            Phase::Cache => "fault.quarantined.cache",
            Phase::Input => "fault.quarantined.input",
        }
    }

    /// The `pao-obs` counter bumped once per item skipped by the deadline
    /// budget in this phase (`deadline.skipped.<phase>`).
    #[must_use]
    pub fn deadline_counter(self) -> &'static str {
        match self {
            Phase::Apgen => "deadline.skipped.apgen",
            Phase::Pattern => "deadline.skipped.pattern",
            Phase::Select => "deadline.skipped.select",
            Phase::Repair => "deadline.skipped.repair",
            Phase::Audit => "deadline.skipped.audit",
            Phase::Cache => "deadline.skipped.cache",
            Phase::Input => "deadline.skipped.input",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One quarantined work item: the run completed without it and reports it
/// here instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The phase whose work item faulted.
    pub phase: Phase,
    /// Human-readable item identity (instance, pin, or group).
    pub item: String,
    /// What went wrong (panic message or typed error text).
    pub reason: String,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.phase, self.item, self.reason)
    }
}

/// Typed PAAF error.
///
/// The taxonomy mirrors the pipeline's trust boundaries: `Input` and
/// `Cache` cover untrusted bytes (library/design files and the persisted
/// incremental cache), `Quarantined` covers isolated work-item faults,
/// and `Internal` covers violated invariants with their source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaoError {
    /// Malformed input data (LEF/DEF/testcase), with the offending file
    /// and 1-based line when known.
    Input {
        /// What is wrong with the input.
        message: String,
        /// Source file the input came from, when known.
        file: Option<String>,
        /// 1-based line where the problem was detected (0 = unknown).
        line: u32,
    },
    /// A persisted cache was rejected (bad version, checksum, or syntax).
    /// Callers must treat this as cache-miss-and-rebuild, never abort.
    Cache {
        /// Why the cache was rejected.
        message: String,
        /// 1-based line in the cache file.
        line: usize,
    },
    /// A work item was quarantined (panic or per-item error) and the run
    /// completed degraded without it.
    Quarantined(FaultRecord),
    /// An internal invariant failed; `location` is the `file:line` of the
    /// detection site.
    Internal {
        /// The violated invariant.
        message: String,
        /// `file:line` of the detection site.
        location: String,
    },
}

impl PaoError {
    /// An [`PaoError::Input`] without a known file/line.
    #[must_use]
    pub fn input(message: impl Into<String>) -> PaoError {
        PaoError::Input {
            message: message.into(),
            file: None,
            line: 0,
        }
    }

    /// An [`PaoError::Input`] pinned to `file:line`.
    #[must_use]
    pub fn input_at(file: impl Into<String>, line: u32, message: impl Into<String>) -> PaoError {
        PaoError::Input {
            message: message.into(),
            file: Some(file.into()),
            line,
        }
    }

    /// An [`PaoError::Internal`] stamped with the caller's source
    /// location.
    #[track_caller]
    #[must_use]
    pub fn internal(message: impl Into<String>) -> PaoError {
        let loc = std::panic::Location::caller();
        PaoError::Internal {
            message: message.into(),
            location: format!("{}:{}", loc.file(), loc.line()),
        }
    }

    /// The phase this error belongs to in quarantine reports.
    #[must_use]
    pub fn phase(&self) -> Phase {
        match self {
            PaoError::Input { .. } => Phase::Input,
            PaoError::Cache { .. } => Phase::Cache,
            PaoError::Quarantined(r) => r.phase,
            PaoError::Internal { .. } => Phase::Audit,
        }
    }
}

impl fmt::Display for PaoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaoError::Input {
                message,
                file,
                line,
            } => {
                write!(f, "input error")?;
                if let Some(file) = file {
                    write!(f, " in `{file}`")?;
                }
                if *line > 0 {
                    write!(f, " at line {line}")?;
                }
                write!(f, ": {message}")
            }
            PaoError::Cache { message, line } => {
                write!(f, "cache rejected at line {line}: {message}")
            }
            PaoError::Quarantined(r) => write!(f, "quarantined {r}"),
            PaoError::Internal { message, location } => {
                write!(f, "internal error at {location}: {message}")
            }
        }
    }
}

impl std::error::Error for PaoError {}

impl From<crate::persist::LoadCacheError> for PaoError {
    fn from(e: crate::persist::LoadCacheError) -> PaoError {
        PaoError::Cache {
            message: e.message,
            line: e.line,
        }
    }
}

impl From<pao_tech::lef::ParseLefError> for PaoError {
    fn from(e: pao_tech::lef::ParseLefError) -> PaoError {
        PaoError::Input {
            message: e.message,
            file: None,
            line: e.line,
        }
    }
}

impl From<pao_design::def::ParseDefError> for PaoError {
    fn from(e: pao_design::def::ParseDefError) -> PaoError {
        PaoError::Input {
            message: e.message,
            file: None,
            line: e.line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_surfaces() {
        let e = PaoError::input_at("cells.lef", 42, "unknown layer `M9`");
        assert_eq!(
            e.to_string(),
            "input error in `cells.lef` at line 42: unknown layer `M9`"
        );
        assert_eq!(e.phase(), Phase::Input);
        let q = PaoError::Quarantined(FaultRecord {
            phase: Phase::Apgen,
            item: "instance U3 (RAM64)".into(),
            reason: "boom".into(),
        });
        assert!(q.to_string().contains("[apgen] instance U3 (RAM64): boom"));
        assert_eq!(q.phase(), Phase::Apgen);
    }

    #[test]
    fn internal_records_location() {
        let e = PaoError::internal("slot empty");
        let PaoError::Internal { location, .. } = &e else {
            panic!("wrong variant");
        };
        assert!(location.contains("error.rs"), "{location}");
    }

    #[test]
    fn cache_error_converts() {
        let le = crate::persist::LoadCacheError {
            message: "bad via id".into(),
            line: 7,
        };
        let e = PaoError::from(le);
        assert_eq!(e.to_string(), "cache rejected at line 7: bad via id");
        assert_eq!(e.phase(), Phase::Cache);
    }

    #[test]
    fn counter_names_are_per_phase() {
        assert_eq!(
            Phase::Repair.quarantine_counter(),
            "fault.quarantined.repair"
        );
        assert_eq!(Phase::Select.name(), "select");
    }
}
