//! Deterministic fault injection for the fault-isolation harness.
//!
//! The executor calls [`fire`] once per work item with the phase label and
//! the item's input index. When a fault is [`arm`]ed for that `(label,
//! index)` pair, the call panics exactly once — the panic is then caught
//! by the executor's per-item quarantine and must surface as a
//! [`FaultRecord`](crate::error::FaultRecord) in the run's stats instead
//! of aborting the process. Because the trigger is keyed on the *input
//! index* (not the claiming worker), an injected fault hits the same item
//! at every thread count, keeping degraded runs bit-identical between
//! `--threads 1` and `--threads N`.
//!
//! A second hook, [`stall_fire`], injects a *stall* instead of a panic:
//! the armed item sleeps for a configured duration, which is how the
//! executor's watchdog (PR 5) is tested deterministically — the sleep is
//! long enough to cross the heartbeat threshold, the watchdog trips the
//! phase's [`CancelToken`](crate::budget::CancelToken), and the run
//! degrades instead of hanging. Armed via [`arm_stall`] or the `pao
//! analyze --inject-stall PHASE[:INDEX[:MS]]` chaos flag.
//!
//! The hooks are armed explicitly (tests, or the `pao analyze
//! --inject-fault` chaos flag) and cost one relaxed atomic load per item
//! when disarmed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<(String, usize)>> = Mutex::new(None);
static STALL_ARMED: AtomicBool = AtomicBool::new(false);
static STALL_PLAN: Mutex<Option<(String, usize, Duration)>> = Mutex::new(None);

/// Arms one injected panic at item `index` of the executor phase labeled
/// `label` (e.g. `"apgen.instance"`). Replaces any previously armed plan;
/// the fault fires at most once.
pub fn arm(label: &str, index: usize) {
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some((label.to_owned(), index));
    ARMED.store(true, Ordering::SeqCst);
}

/// Arms one injected stall: item `index` of the phase labeled `label`
/// sleeps for `millis` before running. Replaces any previously armed
/// stall plan; the stall fires at most once.
pub fn arm_stall(label: &str, index: usize, millis: u64) {
    *STALL_PLAN.lock().unwrap_or_else(PoisonError::into_inner) =
        Some((label.to_owned(), index, Duration::from_millis(millis)));
    STALL_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms any pending injection (panic and stall plans alike).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = None;
    STALL_ARMED.store(false, Ordering::SeqCst);
    *STALL_PLAN.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// `true` while an injection is armed and has not fired yet.
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::SeqCst)
}

/// Executor hook: panics once when `(label, index)` matches the armed
/// plan. Inert (one relaxed atomic load) when nothing is armed.
#[inline]
pub fn fire(label: &str, index: usize) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let mut plan = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    let hit = matches!(&*plan, Some((l, i)) if l == label && *i == index);
    if hit {
        *plan = None;
        ARMED.store(false, Ordering::SeqCst);
        drop(plan);
        panic!("injected fault at {label}[{index}]");
    }
}

/// `true` while a stall injection is armed and has not fired yet.
#[must_use]
pub fn stall_armed() -> bool {
    STALL_ARMED.load(Ordering::SeqCst)
}

/// Executor hook: sleeps once when `(label, index)` matches the armed
/// stall plan. Inert (one relaxed atomic load) when nothing is armed.
/// The sleep runs *inside* the item's unwind boundary on the claiming
/// worker, so the watchdog observes a genuine missing heartbeat.
#[inline]
pub fn stall_fire(label: &str, index: usize) {
    if !STALL_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let hit = {
        let mut plan = STALL_PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        match &*plan {
            Some((l, i, d)) if l == label && *i == index => {
                let d = *d;
                *plan = None;
                STALL_ARMED.store(false, Ordering::SeqCst);
                Some(d)
            }
            _ => None,
        }
    };
    if let Some(d) = hit {
        std::thread::sleep(d);
    }
}

/// Serializes unit tests that touch the process-global injection plan
/// (cargo runs tests of one binary concurrently).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_on_matching_item_only() {
        let _g = test_lock();
        disarm();
        fire("phase.x", 0); // disarmed: inert
        arm("phase.x", 2);
        assert!(armed());
        fire("phase.x", 1); // wrong index: inert
        fire("phase.y", 2); // wrong label: inert
        let caught = std::panic::catch_unwind(|| fire("phase.x", 2));
        let payload = caught.expect_err("armed fault must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected fault at phase.x[2]"), "{msg}");
        assert!(!armed(), "fault fires at most once");
        fire("phase.x", 2); // already fired: inert
        disarm();
    }

    #[test]
    fn stall_fires_once_on_matching_item_only() {
        let _g = test_lock();
        disarm();
        stall_fire("phase.x", 0); // disarmed: inert
        arm_stall("phase.x", 3, 1);
        assert!(stall_armed());
        stall_fire("phase.x", 1); // wrong index: inert, stays armed
        stall_fire("phase.y", 3); // wrong label: inert, stays armed
        assert!(stall_armed());
        let start = std::time::Instant::now();
        stall_fire("phase.x", 3);
        assert!(start.elapsed() >= Duration::from_millis(1), "must sleep");
        assert!(!stall_armed(), "stall fires at most once");
        stall_fire("phase.x", 3); // already fired: inert
        disarm();
    }
}
