//! Cost constants shared by the pattern-generation and pattern-selection
//! dynamic programs (paper Algorithm 3).

/// Penalty applied to an edge that re-uses a boundary-pin access point
/// already selected in an earlier pattern (the BCA term). Must dominate
/// every achievable quality cost so the DP prefers fresh boundary access
/// points.
pub const PENALTY_COST: i64 = 10_000;

/// Cost applied to an edge whose two access points (or the history pair)
/// are not mutually DRC-clean. Dominates quality costs; patterns with DRC
/// edges are only produced when no clean path exists.
pub const DRC_COST: i64 = 1_000;

/// Weight of one unit of access-point coordinate-type cost in the DP edge
/// cost (`apCost = UNIT_AP_COST × (prefTypeCost + nonPrefTypeCost)`).
pub const UNIT_AP_COST: i64 = 1;

/// Cost added per non-primary via (an access point whose best via is not
/// the technology's default) — mild preference for default vias.
pub const NON_DEFAULT_VIA_COST: i64 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the invariant
    fn cost_hierarchy() {
        // Max quality cost per edge: two APs at cost 3+2 each plus via
        // preference — far below DRC, which is far below penalty.
        let max_quality = UNIT_AP_COST * 2 * (3 + 2) + 2 * NON_DEFAULT_VIA_COST;
        assert!(max_quality < DRC_COST);
        assert!(DRC_COST < PENALTY_COST);
    }
}
