//! Analysis statistics — the raw numbers behind the paper's Tables II
//! and III.

use std::fmt;
use std::time::Duration;

/// Statistics collected by a [`PinAccessOracle`](crate::PinAccessOracle)
/// run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PaoStats {
    /// Number of unique instances analyzed (Table II column 2).
    pub unique_instances: usize,
    /// Total access points generated over all unique-instance pins
    /// (Table II "Total #APs").
    pub total_aps: usize,
    /// Access points whose primary via is not DRC-clean in the
    /// intra-cell context (Table II "#Dirty APs" — zero by construction
    /// for PAAF, nonzero for unvalidated baselines).
    pub dirty_aps: usize,
    /// Unique-instance pins with zero valid access points.
    pub pins_without_aps: usize,
    /// Access points with at least one off-track coordinate (Fig. 9's
    /// "off-track pin access enabled automatically").
    pub off_track_aps: usize,
    /// Pins whose access was changed by the post-selection repair pass.
    pub repaired_pins: usize,
    /// Total connected instance pins (Table III "Total #Pins").
    pub total_pins: usize,
    /// Connected pins without a DRC-clean access after pattern selection
    /// (Table III "#Failed Pins").
    pub failed_pins: usize,
    /// Wall time of step 1 (access point generation).
    pub apgen_time: Duration,
    /// Wall time of step 2 (pattern generation).
    pub pattern_time: Duration,
    /// Wall time of step 3 (cluster-based selection) including the final
    /// validation pass.
    pub cluster_time: Duration,
}

impl PaoStats {
    /// Total wall time of the three analysis steps.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.apgen_time + self.pattern_time + self.cluster_time
    }
}

impl fmt::Display for PaoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unique instances : {}", self.unique_instances)?;
        writeln!(f, "total APs        : {}", self.total_aps)?;
        writeln!(f, "dirty APs        : {}", self.dirty_aps)?;
        writeln!(f, "pins without APs : {}", self.pins_without_aps)?;
        writeln!(f, "off-track APs    : {}", self.off_track_aps)?;
        writeln!(f, "repaired pins    : {}", self.repaired_pins)?;
        writeln!(f, "total pins       : {}", self.total_pins)?;
        writeln!(f, "failed pins      : {}", self.failed_pins)?;
        write!(
            f,
            "time (s)         : apgen {:.3} + pattern {:.3} + cluster {:.3} = {:.3}",
            self.apgen_time.as_secs_f64(),
            self.pattern_time.as_secs_f64(),
            self.cluster_time.as_secs_f64(),
            self.total_time().as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_sums_steps() {
        let s = PaoStats {
            apgen_time: Duration::from_millis(10),
            pattern_time: Duration::from_millis(20),
            cluster_time: Duration::from_millis(30),
            ..PaoStats::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(60));
    }

    #[test]
    fn display_contains_counts() {
        let s = PaoStats {
            unique_instances: 42,
            failed_pins: 7,
            ..PaoStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("failed pins      : 7"));
    }
}
