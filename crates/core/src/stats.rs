//! Analysis statistics — the raw numbers behind the paper's Tables II
//! and III.

use crate::budget::DeadlineReport;
use crate::error::FaultRecord;
use crate::parallel::ExecReport;
use std::fmt;
use std::time::Duration;

/// Statistics collected by a [`PinAccessOracle`](crate::PinAccessOracle)
/// run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PaoStats {
    /// Number of unique instances analyzed (Table II column 2).
    pub unique_instances: usize,
    /// Total access points generated over all unique-instance pins
    /// (Table II "Total #APs").
    pub total_aps: usize,
    /// Access points whose primary via is not DRC-clean in the
    /// intra-cell context (Table II "#Dirty APs" — zero by construction
    /// for PAAF, nonzero for unvalidated baselines).
    pub dirty_aps: usize,
    /// Unique-instance pins with zero valid access points.
    pub pins_without_aps: usize,
    /// Access points with at least one off-track coordinate (Fig. 9's
    /// "off-track pin access enabled automatically").
    pub off_track_aps: usize,
    /// Pins whose access was changed by the post-selection repair pass.
    pub repaired_pins: usize,
    /// Total connected instance pins (Table III "Total #Pins").
    pub total_pins: usize,
    /// Connected pins without a DRC-clean access after pattern selection
    /// (Table III "#Failed Pins").
    pub failed_pins: usize,
    /// Wall time of step 1 (access point generation).
    pub apgen_time: Duration,
    /// Wall time of step 2 (pattern generation).
    pub pattern_time: Duration,
    /// Wall time of step 3 (cluster-based selection) including the final
    /// validation pass.
    pub cluster_time: Duration,
    /// Executor report of step 1 (threads used, per-thread busy time).
    pub apgen_exec: ExecReport,
    /// Executor report of step 2.
    pub pattern_exec: ExecReport,
    /// Executor report of step 3's cluster-group selection.
    pub cluster_exec: ExecReport,
    /// Executor report of the repair rounds' dirty-pin scans (all rounds
    /// merged).
    pub repair_exec: ExecReport,
    /// Executor report of the final failed-pin audit.
    pub audit_exec: ExecReport,
    /// End-to-end wall time of the whole run as measured by the oracle
    /// (covers the three steps *plus* repair, audit and bookkeeping;
    /// zero for stats not produced by a full run).
    pub run_time: Duration,
    /// Metrics recorded during this run (empty unless the caller enabled
    /// [`pao_obs::enable_metrics`] before analyzing).
    pub metrics: pao_obs::MetricsSnapshot,
    /// Work items quarantined by the fault-isolation layer: the run
    /// completed *without* these items instead of aborting. Empty on a
    /// healthy run; deterministic (input order) for a given fault set, so
    /// it participates in the thread-count identity contract.
    pub quarantined: Vec<FaultRecord>,
    /// What the deadline budget did to this run: per-phase skip tallies
    /// and any watchdog stall records. Empty/default for unbudgeted runs.
    /// Deliberately **excluded** from [`Self::counters_eq`] — where the
    /// wall clock cuts a phase is inherently timing-dependent (only
    /// [`CancelToken::cancel_at`](crate::budget::CancelToken::cancel_at)
    /// cuts are deterministic).
    pub deadline: DeadlineReport,
    /// Cluster-selection fast-path instrumentation (probe/edge counts,
    /// memo hit rate, pruning, wavefront sub-ranges). Deterministic per
    /// tuning except `subranges`, which scales with the worker count —
    /// excluded from [`Self::counters_eq`] for that reason.
    pub select_telemetry: crate::cluster::SelectTelemetry,
}

impl PaoStats {
    /// Sum of the three analysis-step wall times (excludes repair/audit
    /// and orchestration overhead).
    #[must_use]
    pub fn steps_time(&self) -> Duration {
        self.apgen_time + self.pattern_time + self.cluster_time
    }

    /// End-to-end wall time: the oracle's measured [`Self::run_time`],
    /// falling back to [`Self::steps_time`] for hand-built stats.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        if self.run_time > Duration::ZERO {
            self.run_time
        } else {
            self.steps_time()
        }
    }

    /// `true` when all phase counters are equal, ignoring the
    /// timing/executor fields (which legitimately differ run to run).
    /// This is the determinism contract checked between thread counts.
    #[must_use]
    pub fn counters_eq(&self, other: &PaoStats) -> bool {
        self.unique_instances == other.unique_instances
            && self.total_aps == other.total_aps
            && self.dirty_aps == other.dirty_aps
            && self.pins_without_aps == other.pins_without_aps
            && self.off_track_aps == other.off_track_aps
            && self.repaired_pins == other.repaired_pins
            && self.total_pins == other.total_pins
            && self.failed_pins == other.failed_pins
            && self.quarantined == other.quarantined
    }
}

/// `"<threads> thr, busy <seconds>s"` for one phase's report.
fn exec_line(r: &ExecReport) -> String {
    format!(
        "{} thr, busy {:.3}s",
        r.threads.max(1),
        r.total_busy_us() as f64 / 1e6
    )
}

impl fmt::Display for PaoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unique instances : {}", self.unique_instances)?;
        writeln!(f, "total APs        : {}", self.total_aps)?;
        writeln!(f, "dirty APs        : {}", self.dirty_aps)?;
        writeln!(f, "pins without APs : {}", self.pins_without_aps)?;
        writeln!(f, "off-track APs    : {}", self.off_track_aps)?;
        writeln!(f, "repaired pins    : {}", self.repaired_pins)?;
        writeln!(f, "total pins       : {}", self.total_pins)?;
        writeln!(f, "failed pins      : {}", self.failed_pins)?;
        writeln!(f, "quarantined      : {}", self.quarantined.len())?;
        for fault in &self.quarantined {
            writeln!(f, "  {fault}")?;
        }
        if self.deadline.budget.is_some() || self.deadline.is_partial() {
            writeln!(f, "deadline         : {}", self.deadline)?;
            for stall in &self.deadline.stalls {
                writeln!(f, "  {stall}")?;
            }
        }
        writeln!(
            f,
            "time (s)         : apgen {:.3} + pattern {:.3} + cluster {:.3} = {:.3} (run {:.3})",
            self.apgen_time.as_secs_f64(),
            self.pattern_time.as_secs_f64(),
            self.cluster_time.as_secs_f64(),
            self.steps_time().as_secs_f64(),
            self.total_time().as_secs_f64()
        )?;
        writeln!(
            f,
            "parallel         : apgen {} | pattern {}",
            exec_line(&self.apgen_exec),
            exec_line(&self.pattern_exec),
        )?;
        write!(
            f,
            "                   select {} | repair {} | audit {}",
            exec_line(&self.cluster_exec),
            exec_line(&self.repair_exec),
            exec_line(&self.audit_exec),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_prefers_measured_run_time() {
        let mut s = PaoStats {
            apgen_time: Duration::from_millis(10),
            pattern_time: Duration::from_millis(20),
            cluster_time: Duration::from_millis(30),
            ..PaoStats::default()
        };
        assert_eq!(s.steps_time(), Duration::from_millis(60));
        // Hand-built stats (no run_time) fall back to the step sum.
        assert_eq!(s.total_time(), Duration::from_millis(60));
        // A measured run covers repair/audit too, so it wins when set.
        s.run_time = Duration::from_millis(75);
        assert_eq!(s.total_time(), Duration::from_millis(75));
        assert_eq!(s.steps_time(), Duration::from_millis(60));
    }

    #[test]
    fn display_contains_counts() {
        let s = PaoStats {
            unique_instances: 42,
            failed_pins: 7,
            ..PaoStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("42"));
        assert!(text.contains("failed pins      : 7"));
    }
}
