//! Pin-based access point generation (paper Section III-A, Algorithm 1).

use crate::coord::CoordType;
use crate::unique::local_pin_owner;
use pao_design::Design;
use pao_drc::{DrcEngine, DrcScratch, Owner, RejectInfo, ShapeSet};
use pao_geom::{max_rects, Dbu, Dir, Point, Rect};
use pao_obs::{ledger, LedgerEvent, LedgerRecord};
use pao_tech::{LayerId, Tech, ViaId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Memo/ledger tag for a clean via placement.
const TAG_CLEAN: u16 = u16::MAX;
/// Tag for "rejected, but no rule attribution exists" — a pin with no
/// up-via at all, or a planar-only failure. Distinct from every packed
/// `(rule << 8) | subcheck` tag (rule codes stop far below `0xFF`).
const TAG_NO_VIA: u16 = 0xFFFE;

/// Packs a DRC reject attribution into a memoizable tag.
fn pack_reject(info: Option<RejectInfo>) -> u16 {
    info.map_or(TAG_NO_VIA, |i| {
        (u16::from(i.rule.code()) << 8) | u16::from(i.subcheck.code())
    })
}

/// A planar (same-layer) escape direction stored on an access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanarDir {
    /// Toward +x.
    East,
    /// Toward −x.
    West,
    /// Toward +y.
    North,
    /// Toward −y.
    South,
}

impl PlanarDir {
    /// All four directions.
    pub const ALL: [PlanarDir; 4] = [
        PlanarDir::East,
        PlanarDir::West,
        PlanarDir::North,
        PlanarDir::South,
    ];
}

impl fmt::Display for PlanarDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlanarDir::East => "E",
            PlanarDir::West => "W",
            PlanarDir::North => "N",
            PlanarDir::South => "S",
        };
        f.write_str(s)
    }
}

/// A validated access point: an x-y coordinate on a metal layer where the
/// detailed router may end routing for a pin (paper Section II-B).
///
/// `vias` lists every up-via that drops DRC-clean at this point; the first
/// entry is the **primary** via. `planar` lists the validated same-layer
/// escape directions. Positions are in the analysis frame of the unique
/// instance's representative; translate by the member-instance offset to
/// obtain die coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPoint {
    /// Position (representative-instance die frame).
    pub pos: Point,
    /// The metal layer accessed.
    pub layer: LayerId,
    /// Coordinate type along the layer's preferred direction.
    pub pref_type: CoordType,
    /// Coordinate type along the non-preferred direction.
    pub nonpref_type: CoordType,
    /// DRC-clean up-vias; `vias[0]` is the primary via.
    pub vias: Vec<ViaId>,
    /// Validated planar escape directions.
    pub planar: Vec<PlanarDir>,
}

impl AccessPoint {
    /// The primary (preferred) up-via, if any via is clean here.
    #[must_use]
    pub fn primary_via(&self) -> Option<ViaId> {
        self.vias.first().copied()
    }

    /// Combined coordinate-type cost (paper: the sum of the two types'
    /// costs; lower is better).
    #[must_use]
    pub fn type_cost(&self) -> u32 {
        self.pref_type.cost() + self.nonpref_type.cost()
    }

    /// `true` when either coordinate is off-track.
    #[must_use]
    pub fn is_off_track(&self) -> bool {
        self.pref_type.is_off_track() || self.nonpref_type.is_off_track()
    }
}

/// Configuration for Algorithm 1.
#[derive(Debug, Clone)]
pub struct ApGenConfig {
    /// Early-termination threshold `k`: stop once at least this many valid
    /// access points exist (paper: 3 for both standard and macro pins).
    pub k: usize,
    /// Coordinate types enumerated along the preferred direction.
    pub pref_types: Vec<CoordType>,
    /// Coordinate types enumerated along the non-preferred direction.
    pub nonpref_types: Vec<CoordType>,
    /// Require a DRC-clean up-via for validity (paper: on for standard
    /// cells, where via access is strongly preferred over planar).
    pub require_via: bool,
    /// Length of the probe wire used to validate planar escapes, in units
    /// of the layer pitch.
    pub planar_pitches: Dbu,
}

impl Default for ApGenConfig {
    fn default() -> ApGenConfig {
        ApGenConfig {
            k: 3,
            pref_types: CoordType::PREFERRED.to_vec(),
            nonpref_types: CoordType::NON_PREFERRED.to_vec(),
            require_via: true,
            planar_pitches: 2,
        }
    }
}

/// The span of a rectangle along the coordinate axis governed by tracks of
/// wire direction `track_dir`: horizontal tracks hold *y* coordinates,
/// vertical tracks hold *x* coordinates.
fn coord_span(rect: Rect, track_dir: Dir) -> (Dbu, Dbu) {
    match track_dir {
        Dir::Horizontal => (rect.ylo(), rect.yhi()),
        Dir::Vertical => (rect.xlo(), rect.xhi()),
    }
}

/// Track coordinates governing one coordinate of a pin on `layer`, for
/// governing tracks of wire direction `track_dir`.
///
/// Per the paper, the non-preferred-direction coordinates of a layer use
/// the **upper layer's preferred-direction tracks**, so on-track up-vias
/// align with both layers. Falls back to same-layer patterns when the
/// upper layer has none.
#[allow(clippy::too_many_arguments)]
fn governing_coords_into(
    tech: &Tech,
    design: &Design,
    layer: LayerId,
    track_dir: Dir,
    half: bool,
    lo: Dbu,
    hi: Dbu,
    out: &mut Vec<Dbu>,
) {
    let mut pats: Vec<&pao_design::TrackPattern> = design.track_patterns_for(layer, track_dir);
    if tech.layer(layer).dir != track_dir {
        // Non-preferred coordinate: prefer the upper routing layer's
        // tracks.
        if let Some(up) = tech.routing_layer_above(layer) {
            let up_pats = design.track_patterns_for(up, track_dir);
            if !up_pats.is_empty() {
                pats = up_pats;
            }
        }
    }
    for p in pats {
        out.extend(if half {
            p.half_track_coords_in(lo, hi)
        } else {
            p.coords_in(lo, hi)
        });
    }
    out.sort_unstable();
    out.dedup();
}

/// Candidate coordinates of one type within a pin rectangle's span, for
/// governing tracks of wire direction `track_dir`, written into the
/// reused buffer `out` (cleared first).
#[allow(clippy::too_many_arguments)]
fn candidate_coords_into(
    tech: &Tech,
    design: &Design,
    layer: LayerId,
    track_dir: Dir,
    ty: CoordType,
    rect: Rect,
    up_vias: &[ViaId],
    out: &mut Vec<Dbu>,
) {
    out.clear();
    let (lo, hi) = coord_span(rect, track_dir);
    match ty {
        CoordType::OnTrack => {
            governing_coords_into(tech, design, layer, track_dir, false, lo, hi, out);
        }
        CoordType::HalfTrack => {
            governing_coords_into(tech, design, layer, track_dir, true, lo, hi, out);
        }
        CoordType::ShapeCenter => {
            // Paper: skip shape-center when the span touches at least two
            // tracks, to reduce unique off-track coordinates.
            governing_coords_into(tech, design, layer, track_dir, false, lo, hi, out);
            let on_track = out.len();
            out.clear();
            if on_track < 2 {
                out.push(lo + (hi - lo) / 2);
            }
        }
        CoordType::EnclosureBoundary => {
            // Align the via's bottom enclosure with the shape boundary.
            for &vid in up_vias {
                let bb = tech.via(vid).bottom_bbox();
                let (blo, bhi) = coord_span(bb, track_dir);
                for c in [lo - blo, hi - bhi] {
                    if c >= lo && c <= hi {
                        out.push(c);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
        }
    }
}

/// Reusable scratch state for Algorithm 1, shared across the pins of one
/// instance context.
///
/// The hot loop of access point generation probes the same
/// `(via, position, owner)` placements repeatedly — once per candidate in
/// [`generate_pin_access_points_scratch`] and again in the oracle's
/// dirty-AP audit — and allocates coordinate/via/direction buffers per
/// candidate. `ApScratch` memoizes the via probes and recycles the
/// buffers, cutting per-candidate allocation to (amortized) zero.
///
/// Memoized results are only valid against one DRC context: call
/// [`reset`](ApScratch::reset) before switching to a different instance.
#[derive(Debug, Default)]
pub struct ApScratch {
    /// Positions already enumerated for the current pin (cleared per pin).
    seen: HashSet<(LayerId, Point)>,
    /// Memoized via-placement verdict per placement, packed as a reject
    /// tag ([`TAG_CLEAN`] for clean) so repeat probes keep attribution
    /// (persists across the pins of one instance context).
    via_memo: HashMap<(ViaId, Point, Owner), u16>,
    /// Tag answered by the most recent [`via_clean`](ApScratch::via_clean).
    last_tag: u16,
    /// Tag describing why the last validated candidate was rejected (the
    /// first dirty via's tag, or [`TAG_NO_VIA`]).
    reject_tag: u16,
    /// Ledger entity base (`unique_instance << 16`) OR-ed with the pin
    /// index on emitted records; set by the oracle per instance.
    entity_base: u64,
    /// Workspace of the early-exit DRC kernel (translated via shapes,
    /// merge fixpoint, grid buffers) plus its probe tallies.
    pub(crate) drc: DrcScratch,
    vias_buf: Vec<ViaId>,
    planar_buf: Vec<PlanarDir>,
    pref_coords: Vec<Dbu>,
    nonpref_coords: Vec<Dbu>,
    /// Observability tallies (plain integer adds in the hot loop; the
    /// oracle publishes them via [`flush_obs`](ApScratch::flush_obs)
    /// once per instance).
    memo_hits: u64,
    memo_misses: u64,
    planar_probes: u64,
    /// Candidates tried/accepted per coordinate-type pair, indexed by
    /// `pref.cost() * 4 + nonpref.cost()`.
    tried: [u64; 16],
    accepted: [u64; 16],
}

/// Counter names per coordinate-type pair (`<pref>_<nonpref>` with the
/// paper's cost order track < half < center < encl), indexed like
/// [`ApScratch::tried`].
static TRIED_NAMES: [&str; 16] = [
    "apgen.tried.track_track",
    "apgen.tried.track_half",
    "apgen.tried.track_center",
    "apgen.tried.track_encl",
    "apgen.tried.half_track",
    "apgen.tried.half_half",
    "apgen.tried.half_center",
    "apgen.tried.half_encl",
    "apgen.tried.center_track",
    "apgen.tried.center_half",
    "apgen.tried.center_center",
    "apgen.tried.center_encl",
    "apgen.tried.encl_track",
    "apgen.tried.encl_half",
    "apgen.tried.encl_center",
    "apgen.tried.encl_encl",
];

/// Counter names for accepted candidates, indexed like [`TRIED_NAMES`].
static ACCEPTED_NAMES: [&str; 16] = [
    "apgen.accepted.track_track",
    "apgen.accepted.track_half",
    "apgen.accepted.track_center",
    "apgen.accepted.track_encl",
    "apgen.accepted.half_track",
    "apgen.accepted.half_half",
    "apgen.accepted.half_center",
    "apgen.accepted.half_encl",
    "apgen.accepted.center_track",
    "apgen.accepted.center_half",
    "apgen.accepted.center_center",
    "apgen.accepted.center_encl",
    "apgen.accepted.encl_track",
    "apgen.accepted.encl_half",
    "apgen.accepted.encl_center",
    "apgen.accepted.encl_encl",
];

impl ApScratch {
    /// Creates empty scratch state.
    #[must_use]
    pub fn new() -> ApScratch {
        ApScratch::default()
    }

    /// Memoized via-placement probe: `true` when `via` drops DRC-clean at
    /// `pos` for `owner` in `ctx`. The first probe per placement runs the
    /// engine; repeats are table lookups. The memo stores the packed
    /// reject tag, so even a memo hit leaves the rule + sub-check that
    /// killed a dirty placement in [`last_tag`](ApScratch::last_tag).
    pub fn via_clean(
        &mut self,
        tech: &Tech,
        engine: &DrcEngine<'_>,
        ctx: &ShapeSet,
        via: ViaId,
        pos: Point,
        owner: Owner,
    ) -> bool {
        let key = (via, pos, owner);
        if let Some(&tag) = self.via_memo.get(&key) {
            self.memo_hits += 1;
            self.last_tag = tag;
            return tag == TAG_CLEAN;
        }
        self.memo_misses += 1;
        let clean = engine.via_placement_clean(tech.via(via), pos, owner, ctx, &mut self.drc);
        let tag = if clean {
            TAG_CLEAN
        } else {
            pack_reject(self.drc.last_reject())
        };
        self.via_memo.insert(key, tag);
        self.last_tag = tag;
        clean
    }

    /// Sets the unique-instance id stamped on ledger records emitted by
    /// this scratch (entity = `instance << 16 | pin_idx`).
    pub fn set_ledger_instance(&mut self, instance: u64) {
        self.entity_base = instance << 16;
    }

    /// Publishes the accumulated tallies as `apgen.*` counters and zeroes
    /// them. The oracle calls this once per analyzed instance; between
    /// calls the hot loop pays only plain integer adds.
    pub fn flush_obs(&mut self) {
        if pao_obs::metrics_enabled() {
            pao_obs::counter_add("apgen.via_memo.hits", self.memo_hits);
            pao_obs::counter_add("apgen.via_memo.misses", self.memo_misses);
            pao_obs::counter_add("apgen.planar_probes", self.planar_probes);
            for i in 0..16 {
                pao_obs::counter_add(TRIED_NAMES[i], self.tried[i]);
                pao_obs::counter_add(ACCEPTED_NAMES[i], self.accepted[i]);
            }
        }
        self.memo_hits = 0;
        self.memo_misses = 0;
        self.planar_probes = 0;
        self.tried = [0; 16];
        self.accepted = [0; 16];
        self.drc.flush_obs();
    }

    /// Forgets memoized results. Required whenever the DRC context the
    /// probes ran against changes (a different instance, edited shapes).
    pub fn reset(&mut self) {
        self.seen.clear();
        self.via_memo.clear();
    }
}

/// The probe wire used to validate a planar escape from `pos` toward
/// `dir`.
fn planar_probe(pos: Point, dir: PlanarDir, width: Dbu, len: Dbu) -> Rect {
    let h = width / 2;
    match dir {
        PlanarDir::East => Rect::new(pos.x, pos.y - h, pos.x + len, pos.y + h),
        PlanarDir::West => Rect::new(pos.x - len, pos.y - h, pos.x, pos.y + h),
        PlanarDir::North => Rect::new(pos.x - h, pos.y, pos.x + h, pos.y + len),
        PlanarDir::South => Rect::new(pos.x - h, pos.y - len, pos.x + h, pos.y),
    }
}

/// Validates one candidate position: collects the DRC-clean up-vias and
/// planar escapes. Returns `None` when the point fails the config's
/// validity requirement (paper `isValid`).
#[allow(clippy::too_many_arguments)]
fn validate_point(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    ctx: &ShapeSet,
    pin_idx: usize,
    layer: LayerId,
    pos: Point,
    pref_type: CoordType,
    nonpref_type: CoordType,
    cfg: &ApGenConfig,
    up_vias: &[ViaId],
    scratch: &mut ApScratch,
) -> Option<AccessPoint> {
    let owner = local_pin_owner(pin_idx);
    scratch.vias_buf.clear();
    scratch.reject_tag = TAG_NO_VIA;
    for &vid in up_vias {
        if scratch.via_clean(tech, engine, ctx, vid, pos, owner) {
            scratch.vias_buf.push(vid);
        } else if scratch.reject_tag == TAG_NO_VIA {
            // First dirty via attributes the candidate's rejection
            // (up-via order is fixed, so this is deterministic).
            scratch.reject_tag = scratch.last_tag;
        }
    }
    let l = tech.layer(layer);
    let len = l.pitch.max(l.width) * cfg.planar_pitches;
    scratch.planar_buf.clear();
    for dir in PlanarDir::ALL {
        let probe = planar_probe(pos, dir, l.width, len);
        scratch.planar_probes += 1;
        if engine.shape_clean(layer, probe, owner, ctx) {
            scratch.planar_buf.push(dir);
        }
    }
    let valid = if cfg.require_via {
        !scratch.vias_buf.is_empty()
    } else {
        !scratch.vias_buf.is_empty() || !scratch.planar_buf.is_empty()
    };
    // Owned vectors materialize only for valid points; rejected
    // candidates (the vast majority) allocate nothing.
    valid.then(|| AccessPoint {
        pos,
        layer,
        pref_type,
        nonpref_type,
        vias: scratch.vias_buf.clone(),
        planar: scratch.planar_buf.clone(),
    })
}

/// **Algorithm 1** — generates the valid access points for one pin.
///
/// `pin_rects` is the pin's flattened geometry in the analysis frame
/// (rects per routing layer); `ctx` is the intra-cell DRC context built by
/// [`build_instance_context`](crate::unique::build_instance_context).
///
/// Coordinate-type combinations are enumerated in cost order (outer loop:
/// non-preferred types; inner: preferred types); all candidates of a
/// combination are generated, validated and added before the `k` early-exit
/// check, so slightly more than `k` points may be returned — exactly the
/// paper's behaviour for large pins.
#[must_use]
pub fn generate_pin_access_points(
    tech: &Tech,
    design: &Design,
    engine: &DrcEngine<'_>,
    ctx: &ShapeSet,
    pin_idx: usize,
    pin_rects: &[(LayerId, Rect)],
    cfg: &ApGenConfig,
) -> Vec<AccessPoint> {
    let mut scratch = ApScratch::new();
    generate_pin_access_points_scratch(
        tech,
        design,
        engine,
        ctx,
        pin_idx,
        pin_rects,
        cfg,
        &mut scratch,
    )
}

/// [`generate_pin_access_points`] with caller-owned [`ApScratch`],
/// letting one instance context's pins share buffers and memoized via
/// probes. The caller must [`reset`](ApScratch::reset) the scratch when
/// switching contexts.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn generate_pin_access_points_scratch(
    tech: &Tech,
    design: &Design,
    engine: &DrcEngine<'_>,
    ctx: &ShapeSet,
    pin_idx: usize,
    pin_rects: &[(LayerId, Rect)],
    cfg: &ApGenConfig,
    scratch: &mut ApScratch,
) -> Vec<AccessPoint> {
    let mut aps: Vec<AccessPoint> = Vec::new();
    scratch.seen.clear();
    // Trial index stamped on this pin's ledger records, counting unique
    // candidate positions in enumeration (= cost) order.
    let mut candidate: u32 = 0;

    // Group rects per routing layer and take maximal rectangles (the
    // paper's treatment of polygonal pins).
    let mut layers: Vec<LayerId> = pin_rects.iter().map(|&(l, _)| l).collect();
    layers.sort_unstable();
    layers.dedup();

    // Coordinate buffers are threaded through the candidate loops by
    // value so `scratch` stays borrowable for the via memo.
    let mut pref_coords = std::mem::take(&mut scratch.pref_coords);
    let mut nonpref_coords = std::mem::take(&mut scratch.nonpref_coords);

    'layers: for layer in layers {
        if !tech.layer(layer).is_routing() {
            continue;
        }
        let rects: Vec<Rect> = pin_rects
            .iter()
            .filter(|&&(l, _)| l == layer)
            .map(|&(_, r)| r)
            .collect();
        let maxes = max_rects(&rects);
        let up_vias = tech.up_vias_from(layer);
        let pref = tech.layer(layer).dir; // wires run this way
                                          // The preferred-direction coordinate is governed by this layer's
                                          // own tracks (a horizontal layer's track coordinate is y); the
                                          // non-preferred coordinate by the perpendicular (upper-layer)
                                          // tracks.
        let pref_track_dir = pref;
        let nonpref_track_dir = pref.perp();

        for &t_nonpref in &cfg.nonpref_types {
            for &t_pref in &cfg.pref_types {
                for &rect in &maxes {
                    candidate_coords_into(
                        tech,
                        design,
                        layer,
                        pref_track_dir,
                        t_pref,
                        rect,
                        &up_vias,
                        &mut pref_coords,
                    );
                    candidate_coords_into(
                        tech,
                        design,
                        layer,
                        nonpref_track_dir,
                        t_nonpref,
                        rect,
                        &up_vias,
                        &mut nonpref_coords,
                    );
                    for &pc in &pref_coords {
                        for &nc in &nonpref_coords {
                            let pos = match pref {
                                // Horizontal layer: pref coordinate is y.
                                Dir::Horizontal => Point::new(nc, pc),
                                Dir::Vertical => Point::new(pc, nc),
                            };
                            if !scratch.seen.insert((layer, pos)) {
                                continue;
                            }
                            let pair = (t_pref.cost() * 4 + t_nonpref.cost()) as usize;
                            scratch.tried[pair] += 1;
                            if let Some(ap) = validate_point(
                                tech, engine, ctx, pin_idx, layer, pos, t_pref, t_nonpref, cfg,
                                &up_vias, scratch,
                            ) {
                                scratch.accepted[pair] += 1;
                                if pao_obs::ledger_enabled() {
                                    ledger::record(
                                        LedgerRecord::new(
                                            LedgerEvent::ApAccept,
                                            scratch.entity_base | pin_idx as u64,
                                            candidate,
                                        )
                                        .with_aux(layer.0)
                                        .with_pos(pos.x, pos.y),
                                    );
                                }
                                aps.push(ap);
                            } else if pao_obs::ledger_enabled() {
                                let tag = scratch.reject_tag;
                                let mut rec = LedgerRecord::new(
                                    LedgerEvent::ApReject,
                                    scratch.entity_base | pin_idx as u64,
                                    candidate,
                                )
                                .with_aux(layer.0)
                                .with_pos(pos.x, pos.y);
                                if tag != TAG_NO_VIA {
                                    rec = rec.with_reject((tag >> 8) as u8, (tag & 0xFF) as u8);
                                }
                                ledger::record(rec);
                            }
                            candidate += 1;
                        }
                    }
                }
                if aps.len() >= cfg.k {
                    break 'layers;
                }
            }
        }
    }
    scratch.pref_coords = pref_coords;
    scratch.nonpref_coords = nonpref_coords;
    aps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::TrackPattern;
    use pao_drc::Owner;
    use pao_tech::rules::MinStepRule;
    use pao_tech::{Layer, ViaDef};

    /// Two-layer tech with an M1→M2 via whose bottom enclosure is 130×60
    /// — the enclosure height equals the M1 wire width, so DRC-clean
    /// placement requires the enclosure to nest inside (or align with) the
    /// pin in y, exactly the paper's Fig. 3 setup.
    fn tech() -> Tech {
        let mut t = Tech::new(1000);
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.min_step = Some(MinStepRule::simple(60));
        t.add_layer(m1);
        t.add_layer(Layer::cut("V1", 70, 80));
        t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
        let via = ViaDef::new(
            "via1_0",
            LayerId(0),
            vec![Rect::new(-65, -30, 65, 30)],
            LayerId(1),
            vec![Rect::new(-30, -30, 30, 30)],
            LayerId(2),
            vec![Rect::new(-30, -65, 30, 65)],
        );
        t.add_via(via);
        t
    }

    fn design() -> Design {
        let mut d = Design::new("t", Rect::new(0, 0, 10_000, 10_000));
        // Horizontal M1 tracks at y = 100, 300, 500, …
        d.tracks.push(TrackPattern::new(
            Dir::Horizontal,
            100,
            200,
            40,
            vec![LayerId(0)],
        ));
        // Vertical M2 tracks at x = 100, 300, …
        d.tracks.push(TrackPattern::new(
            Dir::Vertical,
            100,
            200,
            40,
            vec![LayerId(2)],
        ));
        d
    }

    fn gen(pin: Rect, cfg: &ApGenConfig) -> Vec<AccessPoint> {
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], cfg)
    }

    #[test]
    fn tall_pin_gets_on_track_points() {
        // Pin tall enough (y 60..540, crosses tracks at 100, 300, 500) and
        // wide enough for the enclosure.
        let pin = Rect::new(100, 60, 700, 540);
        let aps = gen(pin, &ApGenConfig::default());
        assert!(aps.len() >= 3, "{aps:?}");
        assert!(aps.iter().all(|ap| !ap.vias.is_empty()));
        // First combination is (on-track, on-track); k is reached there.
        assert!(aps
            .iter()
            .all(|ap| ap.pref_type == CoordType::OnTrack && ap.nonpref_type == CoordType::OnTrack));
        // All points lie on the pin.
        assert!(aps.iter().all(|ap| pin.contains(ap.pos)));
    }

    #[test]
    fn narrow_pin_forces_off_track_access() {
        // A 60-tall pin centered between tracks: on-track y (none inside)
        // and the via needs shape-center / enclosure-boundary to avoid
        // min-step from the 70-tall enclosure on 60-tall metal…
        // y span 210..270 contains no track (tracks at 100, 300).
        let pin = Rect::new(100, 205, 700, 265);
        let aps = gen(pin, &ApGenConfig::default());
        assert!(!aps.is_empty(), "expected off-track APs");
        assert!(aps.iter().all(|ap| ap.pref_type.is_off_track()), "{aps:?}");
    }

    #[test]
    fn enclosure_boundary_rescues_thin_pin() {
        // Pin slightly taller than the 60-tall enclosure: the two
        // enclosure-boundary alignments put the via center at
        // pin.ylo + 30 = 230 or pin.yhi − 30 = 240.
        let pin = Rect::new(100, 200, 700, 270);
        let cfg = ApGenConfig {
            pref_types: vec![CoordType::EnclosureBoundary],
            nonpref_types: vec![CoordType::OnTrack],
            ..ApGenConfig::default()
        };
        let aps = gen(pin, &cfg);
        assert!(!aps.is_empty());
        assert!(aps
            .iter()
            .all(|ap| ap.pref_type == CoordType::EnclosureBoundary));
        assert!(
            aps.iter().all(|ap| ap.pos.y == 230 || ap.pos.y == 240),
            "{aps:?}"
        );
    }

    #[test]
    fn early_termination_bounds_count() {
        let pin = Rect::new(100, 60, 1500, 540); // huge pin, many tracks
        let cfg = ApGenConfig {
            k: 3,
            ..ApGenConfig::default()
        };
        let aps = gen(pin, &cfg);
        // All (on-track, on-track) candidates of the first combo are
        // generated (7 x-tracks × 3 y-tracks = 21) before the early exit.
        assert!(aps.len() >= 3);
        assert!(aps
            .iter()
            .all(|ap| ap.pref_type == CoordType::OnTrack && ap.nonpref_type == CoordType::OnTrack));
    }

    #[test]
    fn obstruction_blocks_vias() {
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(100, 60, 700, 540);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        // A same-layer obstruction blanket right above the pin kills all
        // via enclosures extending past the pin… cover everything nearby.
        ctx.insert(LayerId(0), Rect::new(0, 550, 800, 700), Owner::obs(0));
        ctx.insert(LayerId(2), Rect::new(0, 0, 800, 700), Owner::obs(0));
        ctx.rebuild();
        let aps = generate_pin_access_points(
            &t,
            &d,
            &engine,
            &ctx,
            0,
            &[(LayerId(0), pin)],
            &ApGenConfig::default(),
        );
        // M2 blanket obstruction conflicts with every top enclosure.
        assert!(aps.is_empty(), "{aps:?}");
    }

    #[test]
    fn planar_only_validity_for_macros() {
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(100, 60, 700, 540);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        // Blanket M2 obstruction kills vias but planar escapes remain.
        ctx.insert(LayerId(2), Rect::new(0, 0, 800, 700), Owner::obs(0));
        ctx.rebuild();
        let cfg = ApGenConfig {
            require_via: false,
            ..ApGenConfig::default()
        };
        let aps = generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &cfg);
        assert!(!aps.is_empty());
        assert!(aps
            .iter()
            .all(|ap| ap.vias.is_empty() && !ap.planar.is_empty()));
    }

    #[test]
    fn type_cost_and_flags() {
        let ap = AccessPoint {
            pos: Point::new(0, 0),
            layer: LayerId(0),
            pref_type: CoordType::ShapeCenter,
            nonpref_type: CoordType::OnTrack,
            vias: vec![ViaId(0)],
            planar: vec![],
        };
        assert_eq!(ap.type_cost(), 2);
        assert!(ap.is_off_track());
        assert_eq!(ap.primary_via(), Some(ViaId(0)));
    }
}

#[cfg(test)]
mod vertical_layer_tests {
    use super::*;
    use crate::unique::local_pin_owner;
    use pao_design::TrackPattern;
    use pao_tech::rules::MinStepRule;
    use pao_tech::{Layer, ViaDef};

    /// A pin on a VERTICAL preferred-direction layer (M2-style): the
    /// preferred coordinate is x, the non-preferred is y, and the
    /// position assembly must not swap them.
    #[test]
    fn vertical_layer_pins_get_access() {
        let mut t = Tech::new(1000);
        t.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 70));
        t.add_layer(Layer::cut("V1", 50, 120));
        let mut m2 = Layer::routing("M2", Dir::Vertical, 200, 60, 70);
        m2.min_step = Some(MinStepRule::simple(60));
        let m2 = t.add_layer(m2);
        t.add_layer(Layer::cut("V2", 50, 120));
        let m3 = t.add_layer(Layer::routing("M3", Dir::Horizontal, 200, 60, 70));
        // M2→M3 via: bottom enclosure elongated along M2 (vertical).
        let via = ViaDef::new(
            "via2_0",
            m2,
            vec![Rect::new(-30, -65, 30, 65)],
            LayerId(3),
            vec![Rect::new(-25, -25, 25, 25)],
            m3,
            vec![Rect::new(-65, -30, 65, 30)],
        );
        t.add_via(via);

        let mut d = pao_design::Design::new("v", Rect::new(0, 0, 10_000, 10_000));
        // Vertical M2 tracks at x = 100, 300, … and horizontal M3 tracks
        // (governing the non-preferred y coordinate) at y = 100, 300, …
        d.tracks
            .push(TrackPattern::new(Dir::Vertical, 100, 200, 40, vec![m2]));
        d.tracks
            .push(TrackPattern::new(Dir::Horizontal, 100, 200, 40, vec![m3]));

        // A horizontal pin bar on M2 crossing several vertical tracks.
        let pin = Rect::new(60, 100, 540, 700);
        let engine = DrcEngine::new(&t);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(m2, pin, local_pin_owner(0));
        ctx.rebuild();
        let aps = generate_pin_access_points(
            &t,
            &d,
            &engine,
            &ctx,
            0,
            &[(m2, pin)],
            &ApGenConfig::default(),
        );
        assert!(aps.len() >= 3, "{aps:?}");
        for ap in &aps {
            assert!(pin.contains(ap.pos), "AP {} off pin", ap.pos);
            assert!(!ap.vias.is_empty());
            // Preferred coordinate (x on a vertical layer) is on-track.
            assert_eq!(ap.pref_type, CoordType::OnTrack);
            assert_eq!((ap.pos.x - 100) % 200, 0, "x must sit on an M2 track");
        }
    }
}
