//! The four access-coordinate types (paper Section II-C).

use std::fmt;

/// The type — and cost — of one coordinate of an access point.
///
/// The paper defines four types with costs in parentheses; lower cost is
/// preferred and drives both the enumeration order in Algorithm 1 and the
/// access-point quality term of the pattern DP edge cost:
///
/// * **on-track (0)** — on a preferred or non-preferred routing track,
/// * **half-track (1)** — midway between two neighboring tracks,
/// * **shape-center (2)** — the midpoint of a maximal rectangle of the pin,
/// * **enclosure-boundary (3)** — aligning the up-via enclosure with the
///   pin shape boundary.
///
/// ```
/// use pao_core::CoordType;
/// assert!(CoordType::OnTrack.cost() < CoordType::EnclosureBoundary.cost());
/// assert!(!CoordType::OnTrack.is_off_track());
/// assert!(CoordType::ShapeCenter.is_off_track());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoordType {
    /// On a routing track (cost 0).
    OnTrack,
    /// At the midpoint between two neighboring tracks (cost 1).
    HalfTrack,
    /// At the center of a maximal pin rectangle (cost 2).
    ShapeCenter,
    /// Aligning the via enclosure with the pin boundary (cost 3).
    EnclosureBoundary,
}

impl CoordType {
    /// All four types in cost order — the preferred-direction enumeration
    /// set of Algorithm 1.
    pub const PREFERRED: [CoordType; 4] = [
        CoordType::OnTrack,
        CoordType::HalfTrack,
        CoordType::ShapeCenter,
        CoordType::EnclosureBoundary,
    ];

    /// The first three types — the non-preferred-direction enumeration set
    /// (enclosure-boundary is excluded to limit unique off-track
    /// coordinates).
    pub const NON_PREFERRED: [CoordType; 3] = [
        CoordType::OnTrack,
        CoordType::HalfTrack,
        CoordType::ShapeCenter,
    ];

    /// The priority cost of this type (0 = best).
    #[must_use]
    pub fn cost(self) -> u32 {
        match self {
            CoordType::OnTrack => 0,
            CoordType::HalfTrack => 1,
            CoordType::ShapeCenter => 2,
            CoordType::EnclosureBoundary => 3,
        }
    }

    /// `true` for every type except [`CoordType::OnTrack`].
    #[must_use]
    pub fn is_off_track(self) -> bool {
        self != CoordType::OnTrack
    }
}

impl fmt::Display for CoordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoordType::OnTrack => "on-track",
            CoordType::HalfTrack => "half-track",
            CoordType::ShapeCenter => "shape-center",
            CoordType::EnclosureBoundary => "enclosure-boundary",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_match_paper() {
        assert_eq!(CoordType::OnTrack.cost(), 0);
        assert_eq!(CoordType::HalfTrack.cost(), 1);
        assert_eq!(CoordType::ShapeCenter.cost(), 2);
        assert_eq!(CoordType::EnclosureBoundary.cost(), 3);
    }

    #[test]
    fn enumeration_sets() {
        assert_eq!(CoordType::PREFERRED.len(), 4);
        assert_eq!(CoordType::NON_PREFERRED.len(), 3);
        assert!(!CoordType::NON_PREFERRED.contains(&CoordType::EnclosureBoundary));
        // Both sets are sorted by cost.
        assert!(CoordType::PREFERRED
            .windows(2)
            .all(|w| w[0].cost() < w[1].cost()));
    }

    #[test]
    fn display() {
        assert_eq!(
            CoordType::EnclosureBoundary.to_string(),
            "enclosure-boundary"
        );
    }
}
