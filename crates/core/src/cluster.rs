//! Cluster-based access pattern selection (paper Section III-C), extended
//! with multi-height cell support (the paper's future-work item (i)).

use crate::budget::CancelToken;
use crate::cost::DRC_COST;
use crate::error::{FaultRecord, Phase};
use crate::oracle::UniqueInstanceAccess;
use crate::parallel::{
    parallel_map_budget, parallel_map_scratch, ExecReport, ItemFault, PhaseBudget,
};
use crate::pattern::vias_compatible;
use crate::unique::UniqueInstanceId;
use pao_design::{CompId, Design};
use pao_drc::{DrcEngine, ShapeSet};
use pao_geom::{Dbu, Point, Rect};
use pao_obs::{ledger, LedgerEvent, LedgerRecord};
use pao_tech::{Tech, ViaId};
use std::collections::HashMap;

/// A maximal gap-free run of placed instances in one row, ordered left to
/// right. Pattern compatibility is only enforced *within* a cluster; the
/// paper assumes neighboring clusters and rows always allow compatible
/// patterns.
///
/// A multi-height cell spans several rows and therefore belongs to one
/// cluster **per row** it covers; the selection pass fixes its pattern in
/// the first cluster and constrains later clusters to that choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Member components, ordered by x.
    pub comps: Vec<CompId>,
}

/// Groups the design's placed components into per-row clusters.
///
/// Rows are taken from the design's `ROW` statements (falling back to
/// distinct placement `y`s); a component joins the cluster of every row
/// its bounding box covers. Within a row, instances form one cluster as
/// long as each abuts the next (no empty site between).
#[must_use]
pub fn build_clusters(tech: &Tech, design: &Design) -> Vec<Cluster> {
    // Row stripes: (y, height) from ROW statements, else from bboxes.
    let mut stripes: Vec<(Dbu, Dbu)> = design.rows.iter().map(|r| (r.origin.y, r.height)).collect();
    if stripes.is_empty() {
        let mut ys: Vec<(Dbu, Dbu)> = design
            .components()
            .iter()
            .filter(|c| c.master_in(tech).is_some())
            .map(|c| {
                let h = c.master_in(tech).map_or(0, |m| m.height);
                (c.location.y, h)
            })
            .collect();
        ys.sort_unstable();
        ys.dedup();
        stripes = ys;
    }
    stripes.sort_unstable();
    stripes.dedup();

    let boxes: Vec<Option<Rect>> = design
        .components()
        .iter()
        .map(|c| {
            if !c.is_placed {
                return None;
            }
            c.master_in(tech).map(|m| {
                pao_geom::Transform::new(c.location, c.orient, m.width, m.height).placed_bbox()
            })
        })
        .collect();

    let mut out = Vec::new();
    for &(y, h) in &stripes {
        let h = h.max(1);
        // Members whose bbox covers this stripe.
        let mut insts: Vec<(Dbu, Dbu, CompId)> = boxes
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let b = (*b)?;
                (b.ylo() <= y && b.yhi() >= y + h).then_some((b.xlo(), b.xhi(), CompId(i as u32)))
            })
            .collect();
        insts.sort_unstable();
        let mut current: Vec<CompId> = Vec::new();
        let mut last_xhi: Option<Dbu> = None;
        for (xlo, xhi, id) in insts {
            match last_xhi {
                Some(prev) if xlo <= prev => current.push(id),
                Some(_) => {
                    out.push(Cluster {
                        comps: std::mem::take(&mut current),
                    });
                    current.push(id);
                }
                None => current.push(id),
            }
            last_xhi = Some(xhi.max(last_xhi.unwrap_or(xhi)));
        }
        if !current.is_empty() {
            out.push(Cluster { comps: current });
        }
    }
    out
}

/// How far (in x) a via at one instance's access point can conflict with a
/// neighbor's: the widest via extent plus the largest spacing requirement.
/// Exposed (hidden) for the allocation regression test.
#[doc(hidden)]
#[must_use]
pub fn conflict_reach(tech: &Tech) -> Dbu {
    let via_reach = tech
        .vias()
        .iter()
        .map(|v| v.bottom_bbox().max_side().max(v.top_bbox().max_side()))
        .max()
        .unwrap_or(0);
    let spacing = tech
        .layers()
        .iter()
        .map(|l| {
            l.spacing
                .max(l.spacing_table.as_ref().map_or(0, |t| t.max_spacing()))
        })
        .max()
        .unwrap_or(0);
    via_reach + spacing
}

/// The widest extent of any via's shape from its drop point — how far a
/// placed via's geometry can stick out from its origin on either axis.
pub(crate) fn max_via_extent(tech: &Tech) -> Dbu {
    tech.vias()
        .iter()
        .flat_map(|v| v.each_placed_shape(Point::new(0, 0)))
        .map(|(_, r)| {
            r.xlo()
                .abs()
                .max(r.xhi().abs())
                .max(r.ylo().abs())
                .max(r.yhi().abs())
        })
        .max()
        .unwrap_or(0)
}

/// Upper bound on the per-axis origin distance at which two placed vias
/// can still interact under any pairwise rule: both extents plus the
/// engine's widest search halo. Pairs farther apart are clean without a
/// probe. Exposed (hidden) for the allocation regression test.
#[doc(hidden)]
#[must_use]
pub fn pair_reach(tech: &Tech, engine: &DrcEngine<'_>) -> Dbu {
    2 * max_via_extent(tech) + engine.interaction_range()
}

/// The primary-via placements of pattern `p` of `u` (translated by
/// `off`) lying within `reach` of the vertical line `x = boundary`,
/// written into the reused buffer `out` (cleared first). Planar-only
/// access points cannot via-conflict and are dropped here instead of
/// being carried into the probe loop.
fn near_boundary_vias_into(
    u: &UniqueInstanceAccess,
    p: usize,
    off: Point,
    boundary: Dbu,
    reach: Dbu,
    out: &mut Vec<(ViaId, Point)>,
) {
    out.clear();
    let Some(pat) = u.patterns.get(p) else {
        return;
    };
    out.extend(
        u.pin_order
            .iter()
            .zip(&pat.choice)
            .filter_map(|(&pin, &api)| {
                let ap = u.pin_aps[pin].get(api)?;
                let via = ap.primary_via()?;
                ((ap.pos.x + off.x - boundary).abs() <= reach).then_some((via, ap.pos + off))
            }),
    );
}

/// Tuning knobs for the cluster-selection fast path. Every combination
/// produces bit-identical selections; the knobs only trade DRC probes
/// for cache lookups and wall-clock for parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectTuning {
    /// Memoize boundary-edge verdicts (cache keyed on the pair of unique
    /// instances, their patterns and the boundary-relative offset delta;
    /// cleared per cluster so hit/miss counts are deterministic at every
    /// thread count and split mode).
    ///
    /// **Off by default**: benchmarking on ispd18s_test2 measured a 0.42%
    /// hit rate (19 hits / 4467 misses) — the cost-bound prune and the
    /// near-boundary filters already deduplicate almost every repeat edge,
    /// so the per-edge hash of the six-field key is pure overhead. Opt
    /// back in with `--select-memo` on designs with heavy cell repetition
    /// inside single clusters.
    pub memo: bool,
    /// Minimum clusters in a selection group before its DP fans out over
    /// comp-disjoint wavefront levels (`0` disables the split).
    pub split_min_clusters: usize,
}

impl Default for SelectTuning {
    fn default() -> SelectTuning {
        SelectTuning {
            memo: false,
            split_min_clusters: 16,
        }
    }
}

/// Deterministic instrumentation of one selection pass, aggregated from
/// the per-group solves in group order (also published as `select.*`
/// counters when metrics are on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectTelemetry {
    /// Non-trivial DP edges whose verdict was requested (memo hits and
    /// misses alike; identical with memoization on or off).
    pub edges: u64,
    /// Pairwise via DRC probes actually executed.
    pub probes: u64,
    /// Edge verdicts answered from the memo.
    pub cache_hits: u64,
    /// Edge verdicts computed and inserted into the memo.
    pub cache_misses: u64,
    /// DP transitions skipped by the running-best bound (`pcost + qcost
    /// >= best` with edge cost >= 0 means no later candidate can win).
    pub edges_pruned: u64,
    /// Via pairs skipped by the `pair_reach` distance bound.
    pub pairs_far: u64,
    /// Clusters solved by the intra-group wavefront fan-out (0 when the
    /// split never engaged; varies with thread count by design).
    pub subranges: u64,
}

impl SelectTelemetry {
    /// Accumulates another solve's counts into `self`.
    pub fn absorb(&mut self, o: &SelectTelemetry) {
        self.edges += o.edges;
        self.probes += o.probes;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.edges_pruned += o.edges_pruned;
        self.pairs_far += o.pairs_far;
        self.subranges += o.subranges;
    }
}

/// The result of one threaded/budgeted cluster-selection pass.
#[derive(Debug)]
pub struct SelectOutput {
    /// Selected pattern per component (`None` when no pattern exists).
    pub selection: Vec<Option<usize>>,
    /// Executor report of the group fan-out.
    pub exec: ExecReport,
    /// Quarantined selection groups (members kept their defaults).
    pub faults: Vec<FaultRecord>,
    /// Groups skipped by an expired budget.
    pub skipped: usize,
    /// Aggregated fast-path instrumentation.
    pub telemetry: SelectTelemetry,
}

/// Memo key of one boundary edge: both unique instances, both patterns,
/// and the boundary-relative placement delta `roff - loff`. The left
/// boundary filter bound (`boundary - loff.x`) equals `rep.x + width`
/// (a constant per left instance) and the right bound equals that minus
/// `delta.x`, so every geometric input of the edge verdict is a function
/// of exactly this tuple — see DESIGN.md §14.
type EdgeKey = (u32, u32, u32, u32, Dbu, Dbu);

/// Per-worker reusable state for the selection DP. Every buffer is
/// grow-only and cleared (capacity-retaining) per cluster or group, so
/// steady-state selection performs no allocations.
#[doc(hidden)]
pub struct SelectScratch {
    ctx: ShapeSet,
    memo: HashMap<EdgeKey, bool>,
    members: Vec<(CompId, u32)>,
    laps_by_p: Vec<Vec<(ViaId, Point)>>,
    raps: Vec<(ViaId, Point)>,
    order: Vec<(i64, usize)>,
    dp: Vec<Vec<(i64, usize)>>,
    emit: Vec<(usize, Option<usize>)>,
}

impl SelectScratch {
    /// Creates an empty scratch for a `num_layers`-layer technology.
    #[must_use]
    pub fn new(num_layers: usize) -> SelectScratch {
        SelectScratch {
            ctx: ShapeSet::new(num_layers),
            memo: HashMap::new(),
            members: Vec::new(),
            laps_by_p: Vec::new(),
            raps: Vec::new(),
            order: Vec::new(),
            dp: Vec::new(),
            emit: Vec::new(),
        }
    }
}

/// **Cluster-based pattern selection** — the Algorithm 2 DP re-used with
/// instances as layers and access patterns as vertices.
///
/// For each cluster, selects one pattern per member so that the access
/// points near each shared cell boundary are mutually DRC-clean. Members
/// already assigned by an earlier cluster (multi-height cells seen in a
/// lower row) are constrained to their assigned pattern. Returns, per
/// component, the chosen pattern index (`None` for components without
/// patterns).
#[must_use]
pub fn select_patterns(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
) -> Vec<Option<usize>> {
    select_patterns_threaded(tech, engine, design, comp_uniq, uniq, 1).selection
}

/// [`select_patterns`] with a self-scheduling worker pool.
///
/// Clusters only interact through shared components (a multi-height cell
/// appears in one cluster per covered row, and the later cluster must
/// honor the earlier cluster's assignment). Clusters are therefore grouped
/// into connected components over shared members; groups are mutually
/// independent and solved in parallel, while the clusters *within* a group
/// run in wavefront order (see [`solve_group`]). Each group records its
/// assignments in a local overlay merged afterwards, so the output is
/// bit-identical to the sequential pass for every thread count.
///
/// Groups run fault-isolated: a panic inside one group's DP quarantines
/// that group (its members keep their default pattern) and is reported in
/// the returned [`FaultRecord`]s; every other group selects normally.
#[must_use]
pub fn select_patterns_threaded(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    threads: usize,
) -> SelectOutput {
    let token = CancelToken::never();
    select_patterns_budget(
        tech,
        engine,
        design,
        comp_uniq,
        uniq,
        threads,
        &SelectTuning::default(),
        PhaseBudget::new(&token, None),
    )
}

/// Deadline-aware [`select_patterns_threaded`]: `budget` is polled between
/// groups, and a group skipped by an expired budget simply keeps its
/// members' default (best intra-cell) pattern — the same degraded-but-
/// routable semantics as a quarantined group, minus the fault record.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn select_patterns_budget(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    threads: usize,
    tuning: &SelectTuning,
    budget: PhaseBudget<'_>,
) -> SelectOutput {
    // Default: best (first) pattern everywhere; the cluster DP refines.
    let defaults: Vec<Option<usize>> = comp_uniq
        .iter()
        .map(|cu| {
            cu.filter(|ui| !uniq[ui.index()].patterns.is_empty())
                .map(|_| 0)
        })
        .collect();
    let reach = conflict_reach(tech);
    let far = pair_reach(tech, engine);
    let clusters = build_clusters(tech, design);
    let groups = group_clusters(&clusters, design.components().len());
    if pao_obs::metrics_enabled() {
        pao_obs::counter_add("select.clusters", clusters.len() as u64);
        pao_obs::counter_add("select.groups", groups.len() as u64);
        for cluster in &clusters {
            pao_obs::hist_record("select.cluster_size", cluster.comps.len() as u64);
        }
    }

    let group_sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
    let (clusters, defaults) = (&clusters, &defaults);
    let (locals, report) = parallel_map_budget(
        threads,
        "select.group",
        groups,
        || SelectScratch::new(tech.layers().len()),
        |scratch, group| {
            // Overlay: component index -> final assignment; presence = pinned.
            let mut local: HashMap<usize, Option<usize>> = HashMap::new();
            let tel = solve_group(
                tech, engine, design, comp_uniq, uniq, reach, far, clusters, &group, defaults,
                tuning, threads, &mut local, scratch,
            );
            (local, tel)
        },
        budget,
    );

    let mut selection = defaults.clone();
    let mut faults = Vec::new();
    let mut skipped = 0usize;
    let mut telemetry = SelectTelemetry::default();
    for (gi, local) in locals.into_iter().enumerate() {
        match local {
            Ok((local, tel)) => {
                telemetry.absorb(&tel);
                for (ci, sel) in local {
                    selection[ci] = sel;
                }
            }
            // Budget ran out before the group was claimed: its members
            // keep their defaults, and on a checkpoint resume the group
            // selects normally.
            Err(ItemFault::Skipped(_)) => skipped += 1,
            // Quarantined group: its members keep the default (best
            // intra-cell) pattern — degraded but routable.
            Err(ItemFault::Panic(reason)) => faults.push(FaultRecord {
                phase: Phase::Select,
                item: format!("selection group {gi} ({} clusters)", group_sizes[gi]),
                reason,
            }),
        }
    }
    if pao_obs::metrics_enabled() {
        pao_obs::counter_add("select.compat_probes", telemetry.probes);
        pao_obs::counter_add("select.compat_edges", telemetry.edges);
        pao_obs::counter_add("select.compat_cache.hits", telemetry.cache_hits);
        pao_obs::counter_add("select.compat_cache.misses", telemetry.cache_misses);
        pao_obs::counter_add("select.edges_pruned", telemetry.edges_pruned);
        pao_obs::counter_add("select.pairs_far", telemetry.pairs_far);
        pao_obs::counter_add("select.subranges", telemetry.subranges);
    }
    SelectOutput {
        selection,
        exec: report,
        faults,
        skipped,
        telemetry,
    }
}

/// Partitions cluster indices into connected components over shared
/// members (multi-height cells), preserving the original cluster order
/// within every group. Exposed (hidden) for the allocation regression
/// test and the criterion bench.
#[doc(hidden)]
pub fn group_clusters(clusters: &[Cluster], n_comps: usize) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..clusters.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // path halving
            i = parent[i];
        }
        i
    }
    let mut first_cluster: Vec<Option<usize>> = vec![None; n_comps];
    for (cl, cluster) in clusters.iter().enumerate() {
        for c in &cluster.comps {
            match first_cluster[c.index()] {
                Some(other) => {
                    let (a, b) = (find(&mut parent, cl), find(&mut parent, other));
                    // Root at the smaller index so group order is stable.
                    parent[a.max(b)] = a.min(b);
                }
                None => first_cluster[c.index()] = Some(cl),
            }
        }
    }
    let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
    for cl in 0..clusters.len() {
        let root = find(&mut parent, cl);
        by_root.entry(root).or_default().push(cl);
    }
    let mut groups: Vec<(usize, Vec<usize>)> = by_root.into_iter().collect();
    groups.sort_unstable_by_key(|&(root, _)| root);
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Solves one selection group: clusters in their original order, each
/// DP reading earlier assignments from `local` and merging its results
/// back. Large groups fan out over comp-disjoint wavefront levels (see
/// [`solve_group_wavefront`]); the fan-out changes wall-clock only, never
/// the assignments. Exposed (hidden) for the allocation regression test
/// and the criterion bench: with a warm `local` and `scratch`, the
/// sequential path performs zero allocations.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn solve_group(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    reach: Dbu,
    far: Dbu,
    clusters: &[Cluster],
    group: &[usize],
    defaults: &[Option<usize>],
    tuning: &SelectTuning,
    threads: usize,
    local: &mut HashMap<usize, Option<usize>>,
    scratch: &mut SelectScratch,
) -> SelectTelemetry {
    let mut tel = SelectTelemetry::default();
    if threads > 1 && tuning.split_min_clusters > 0 && group.len() >= tuning.split_min_clusters {
        solve_group_wavefront(
            tech, engine, design, comp_uniq, uniq, reach, far, clusters, group, defaults, tuning,
            threads, local, scratch, &mut tel,
        );
    } else {
        for &cl in group {
            solve_cluster(
                tech,
                engine,
                design,
                comp_uniq,
                uniq,
                reach,
                far,
                &clusters[cl],
                defaults,
                tuning.memo,
                local,
                scratch,
                &mut tel,
            );
            for &(ci, sel) in &scratch.emit {
                local.entry(ci).or_insert(sel);
            }
        }
    }
    tel
}

/// Intra-group parallelism for big groups: assigns every cluster to the
/// earliest wavefront level after all earlier clusters it shares a
/// component with. Clusters on one level are pairwise comp-disjoint, so
/// they read an identical pinned overlay and write disjoint components —
/// solving a level in parallel and merging the emitted assignments in
/// cluster order is bit-identical to the sequential left-to-right pass.
/// In row-based placements multi-height cells chain only locally, so the
/// bulk of a group lands on level 0 and the critical path collapses.
#[allow(clippy::too_many_arguments)]
fn solve_group_wavefront(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    reach: Dbu,
    far: Dbu,
    clusters: &[Cluster],
    group: &[usize],
    defaults: &[Option<usize>],
    tuning: &SelectTuning,
    threads: usize,
    local: &mut HashMap<usize, Option<usize>>,
    scratch: &mut SelectScratch,
    tel: &mut SelectTelemetry,
) {
    let mut comp_level: HashMap<usize, usize> = HashMap::new();
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for &cl in group {
        let lvl = clusters[cl]
            .comps
            .iter()
            .filter_map(|c| comp_level.get(&c.index()).copied())
            .max()
            .unwrap_or(0);
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].push(cl);
        for c in &clusters[cl].comps {
            comp_level.insert(c.index(), lvl + 1);
        }
    }
    for level in levels {
        if level.len() == 1 {
            solve_cluster(
                tech,
                engine,
                design,
                comp_uniq,
                uniq,
                reach,
                far,
                &clusters[level[0]],
                defaults,
                tuning.memo,
                local,
                scratch,
                tel,
            );
            for &(ci, sel) in &scratch.emit {
                local.entry(ci).or_insert(sel);
            }
            continue;
        }
        tel.subranges += level.len() as u64;
        let memo_on = tuning.memo;
        let pinned: &HashMap<usize, Option<usize>> = local;
        let (results, _nested) = parallel_map_scratch(
            threads.min(level.len()),
            "select.subrange",
            level,
            || SelectScratch::new(tech.layers().len()),
            |s, cl| {
                let mut t = SelectTelemetry::default();
                solve_cluster(
                    tech,
                    engine,
                    design,
                    comp_uniq,
                    uniq,
                    reach,
                    far,
                    &clusters[cl],
                    defaults,
                    memo_on,
                    pinned,
                    s,
                    &mut t,
                );
                (s.emit.clone(), t)
            },
        );
        for (emit, t) in results {
            tel.absorb(&t);
            for (ci, sel) in emit {
                local.entry(ci).or_insert(sel);
            }
        }
    }
}

/// Runs the Algorithm 2 DP on one cluster against the pinned overlay:
/// components present in `pinned` are constrained to that value,
/// everything else defaults to `defaults`. Results are emitted into
/// `s.emit` as `(component index, assignment)` pairs; the caller merges
/// them with `or_insert` (equivalent to overwriting: an already-present
/// component is pinned, so the DP can only re-emit its existing value).
#[allow(clippy::too_many_arguments)]
fn solve_cluster(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    reach: Dbu,
    far: Dbu,
    cluster: &Cluster,
    defaults: &[Option<usize>],
    memo_on: bool,
    pinned: &HashMap<usize, Option<usize>>,
    s: &mut SelectScratch,
    tel: &mut SelectTelemetry,
) {
    let SelectScratch {
        ctx,
        memo,
        members,
        laps_by_p,
        raps,
        order,
        dp,
        emit,
    } = s;
    emit.clear();
    // The memo is scoped to one cluster: hit/miss/probe counts then
    // depend only on the cluster's own edge sequence, making them
    // identical at every thread count and split mode (a group-lifetime
    // cache would hit more often in sequential mode than in the split's
    // short-lived workers).
    memo.clear();
    let offset_of = |comp: CompId, u: &UniqueInstanceAccess| -> Point {
        design.component(comp).location - design.component(u.info.rep).location
    };
    // Members paired with their unique-instance index; the filter
    // guarantees every retained member resolves, so no lookup below can
    // fail.
    members.clear();
    members.extend(cluster.comps.iter().filter_map(|&c| {
        let ui = comp_uniq[c.index()]?;
        (!uniq[ui.index()].patterns.is_empty()).then_some((c, ui.index() as u32))
    }));
    if members.len() < 2 {
        for &(m, _) in members.iter() {
            // Keep the current assignment (earlier cluster's choice if
            // any — `or_insert` at the merge — else the default).
            emit.push((m.index(), defaults[m.index()]));
        }
        return;
    }
    let n = members.len();
    // Snapshots for the per-cluster pruning aggregate emitted below.
    let (pruned_before, far_before) = (tel.edges_pruned, tel.pairs_far);
    // dp[i][p]: min cost selecting pattern p for member i (grow-only;
    // stale rows beyond `n` are never read).
    while dp.len() < n {
        dp.push(Vec::new());
    }
    for (i, &(_, ui)) in members.iter().enumerate() {
        dp[i].clear();
        dp[i].resize(uniq[ui as usize].patterns.len(), (i64::MAX, usize::MAX));
    }
    let allowed = |ci: CompId, p: usize| -> bool {
        match pinned.get(&ci.index()) {
            Some(&sel) => sel == Some(p),
            None => true,
        }
    };
    {
        let (c0, ui) = members[0];
        let u = &uniq[ui as usize];
        for (p, cell) in dp[0].iter_mut().enumerate() {
            if allowed(c0, p) {
                cell.0 = u.patterns[p].cost;
            }
        }
    }
    for i in 1..n {
        let ((lcomp, lui), (rcomp, rui)) = (members[i - 1], members[i]);
        let (lu, ru) = (&uniq[lui as usize], &uniq[rui as usize]);
        let loff = offset_of(lcomp, lu);
        let roff = offset_of(rcomp, ru);
        // The boundary-relative placement delta: together with the two
        // unique instances and patterns it determines the entire edge
        // geometry, so it completes the memo key (DESIGN.md §14).
        let (dx, dy) = (roff.x - loff.x, roff.y - loff.y);
        // The shared boundary: left instance's right edge (members carry
        // analyzed data, so their master is known; 0-width fallback keeps
        // this panic-free regardless).
        let lwidth = design
            .component(lcomp)
            .master_in(tech)
            .map_or(0, |m| m.width);
        let boundary = design.component(lcomp).location.x + lwidth;
        let (head, tail) = dp.split_at_mut(i);
        let prev = &head[i - 1];
        while laps_by_p.len() < prev.len() {
            laps_by_p.push(Vec::new());
        }
        // Reachable predecessors sorted by (cost, pattern): the left-side
        // near-boundary vias depend only on `p`, so they are collected
        // once per pair, and the ascending cost order lets the inner loop
        // stop at the running best (edge cost is never negative).
        order.clear();
        for (p, &(pcost, _)) in prev.iter().enumerate() {
            if pcost != i64::MAX {
                order.push((pcost, p));
                near_boundary_vias_into(lu, p, loff, boundary, reach, &mut laps_by_p[p]);
            }
        }
        order.sort_unstable();
        if order.is_empty() {
            continue; // over-constrained: dp[i] stays unreachable
        }
        for (q, cell) in tail[0].iter_mut().enumerate() {
            if !allowed(rcomp, q) {
                continue;
            }
            let qcost = ru.patterns[q].cost;
            near_boundary_vias_into(ru, q, roff, boundary, reach, raps);
            if raps.is_empty() {
                // No right-side via near the boundary: every edge into q
                // is trivially clean and the cheapest predecessor wins.
                let (pcost, p) = order[0];
                tel.edges_pruned += order.len() as u64 - 1;
                *cell = (pcost.saturating_add(qcost), p);
                continue;
            }
            for (k, &(pcost, p)) in order.iter().enumerate() {
                let base = pcost.saturating_add(qcost);
                if base >= cell.0 {
                    // Later candidates cost at least this much before the
                    // (non-negative) edge term: provably dominated.
                    tel.edges_pruned += (order.len() - k) as u64;
                    break;
                }
                if laps_by_p[p].is_empty() {
                    // No left-side via near the boundary: clean edge.
                    *cell = (base, p);
                    continue;
                }
                tel.edges += 1;
                let clean = if memo_on {
                    let key = (lui, p as u32, rui, q as u32, dx, dy);
                    match memo.get(&key).copied() {
                        Some(v) => {
                            tel.cache_hits += 1;
                            v
                        }
                        None => {
                            tel.cache_misses += 1;
                            let v = edge_clean(tech, engine, &laps_by_p[p], raps, far, ctx, tel);
                            memo.insert(key, v);
                            v
                        }
                    }
                } else {
                    edge_clean(tech, engine, &laps_by_p[p], raps, far, ctx, tel)
                };
                // Attribute the dirty verdict where it is *used*, so the
                // record stream is identical with the memo on or off.
                if !clean && pao_obs::ledger_enabled() {
                    ledger::record(
                        LedgerRecord::new(
                            LedgerEvent::SelectEdgeDirty,
                            (u64::from(lcomp.0) << 32) | u64::from(rcomp.0),
                            p as u32,
                        )
                        .with_aux(q as u32),
                    );
                }
                let cost = if clean {
                    base
                } else {
                    base.saturating_add(DRC_COST)
                };
                if cost < cell.0 {
                    *cell = (cost, p);
                }
            }
        }
    }
    // One aggregate record per cluster: how much of this DP the distance
    // and cost bounds skipped. Per-cluster counts depend only on the
    // cluster's own edge sequence, so the record is thread-invariant.
    if pao_obs::ledger_enabled() {
        let (pruned_d, far_d) = (tel.edges_pruned - pruned_before, tel.pairs_far - far_before);
        if pruned_d > 0 || far_d > 0 {
            ledger::record(
                LedgerRecord::new(
                    LedgerEvent::SelectPruned,
                    u64::from(members[0].0 .0),
                    far_d as u32,
                )
                .with_aux(pruned_d as u32),
            );
        }
    }
    // Traceback (dp is grow-only, so index by member count, not len()).
    let Some((mut best_p, _)) = dp[n - 1]
        .iter()
        .enumerate()
        .filter(|(_, c)| c.0 < i64::MAX)
        .min_by_key(|&(_, c)| c.0)
    else {
        // Over-constrained (pinned members conflict): keep assignments.
        for &(m, _) in members.iter() {
            emit.push((m.index(), defaults[m.index()]));
        }
        return;
    };
    for i in (0..n).rev() {
        emit.push((members[i].0.index(), Some(best_p)));
        if i > 0 {
            best_p = dp[i][best_p].1;
        }
    }
}

/// Probes one DP edge: every near-boundary via pair across the boundary
/// must be mutually DRC-clean. Pairs farther apart than `far` on either
/// axis cannot interact and are skipped; the first dirty pair settles the
/// verdict (the underlying audit already short-circuits per pair via the
/// `FirstOnly` sink).
fn edge_clean(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    laps: &[(ViaId, Point)],
    raps: &[(ViaId, Point)],
    far: Dbu,
    ctx: &mut ShapeSet,
    tel: &mut SelectTelemetry,
) -> bool {
    for &(lv, lp) in laps {
        for &(rv, rp) in raps {
            if (lp.x - rp.x).abs() > far || (lp.y - rp.y).abs() > far {
                tel.pairs_far += 1;
                continue;
            }
            tel.probes += 1;
            if !vias_compatible(tech, engine, lv, lp, rv, rp, ctx) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::Component;
    use pao_geom::Orient;
    use pao_tech::{Layer, Macro};

    fn tech() -> Tech {
        let mut t = Tech::new(1000);
        t.add_layer(Layer::routing("M1", pao_geom::Dir::Horizontal, 200, 60, 70));
        t.add_macro(Macro::new("INVX1", 400, 1400));
        t.add_macro(Macro::new("NAND2X1", 600, 1400));
        let mut mh = Macro::new("DFF2MH", 800, 2800);
        mh.class = pao_tech::MacroClass::Core;
        t.add_macro(mh);
        t
    }

    #[test]
    fn clusters_split_on_gaps_and_rows() {
        let t = tech();
        let mut d = Design::new("x", Rect::new(0, 0, 100_000, 10_000));
        d.add_component(Component::new("u0", "INVX1", Point::new(0, 0), Orient::N));
        d.add_component(Component::new(
            "u1",
            "NAND2X1",
            Point::new(400, 0),
            Orient::N,
        ));
        d.add_component(Component::new(
            "u2",
            "INVX1",
            Point::new(1400, 0),
            Orient::N,
        ));
        d.add_component(Component::new(
            "u3",
            "INVX1",
            Point::new(0, 1400),
            Orient::N,
        ));
        let clusters = build_clusters(&t, &d);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].comps, vec![CompId(0), CompId(1)]);
        assert_eq!(clusters[1].comps, vec![CompId(2)]);
        assert_eq!(clusters[2].comps, vec![CompId(3)]);
    }

    #[test]
    fn multi_height_cells_join_every_covered_row() {
        let t = tech();
        let mut d = Design::new("x", Rect::new(0, 0, 100_000, 10_000));
        // Rows at 0 and 1400; the MH cell covers both.
        d.rows.push(pao_design::Row::new(
            "r0",
            "core",
            Point::new(0, 0),
            Orient::N,
            100,
            400,
            1400,
        ));
        d.rows.push(pao_design::Row::new(
            "r1",
            "core",
            Point::new(0, 1400),
            Orient::FS,
            100,
            400,
            1400,
        ));
        let mh = d.add_component(Component::new("mh", "DFF2MH", Point::new(0, 0), Orient::N));
        let lo = d.add_component(Component::new("lo", "INVX1", Point::new(800, 0), Orient::N));
        let hi = d.add_component(Component::new(
            "hi",
            "INVX1",
            Point::new(800, 1400),
            Orient::FS,
        ));
        let clusters = build_clusters(&t, &d);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].comps, vec![mh, lo]);
        assert_eq!(clusters[1].comps, vec![mh, hi]);
    }

    #[test]
    fn unknown_masters_ignored() {
        let t = tech();
        let mut d = Design::new("x", Rect::new(0, 0, 100_000, 10_000));
        d.add_component(Component::new("g", "GHOST", Point::new(0, 0), Orient::N));
        assert!(build_clusters(&t, &d).is_empty());
    }

    #[test]
    fn conflict_reach_covers_vias_and_spacing() {
        let mut t = tech();
        assert_eq!(conflict_reach(&t), 70); // no vias: just spacing
        t.add_via(pao_tech::ViaDef::new(
            "v",
            pao_tech::LayerId(0),
            vec![Rect::new(-65, -30, 65, 30)],
            pao_tech::LayerId(0),
            vec![Rect::new(-25, -25, 25, 25)],
            pao_tech::LayerId(0),
            vec![Rect::new(-30, -65, 30, 65)],
        ));
        assert_eq!(conflict_reach(&t), 130 + 70);
    }
}
