//! Cluster-based access pattern selection (paper Section III-C), extended
//! with multi-height cell support (the paper's future-work item (i)).

use crate::budget::CancelToken;
use crate::cost::DRC_COST;
use crate::error::{FaultRecord, Phase};
use crate::oracle::UniqueInstanceAccess;
use crate::parallel::{parallel_map_budget, ExecReport, ItemFault, PhaseBudget};
use crate::pattern::aps_compatible_scratch;
use crate::unique::UniqueInstanceId;
use pao_design::{CompId, Design};
use pao_drc::{DrcEngine, ShapeSet};
use pao_geom::{Dbu, Point, Rect};
use pao_tech::Tech;
use std::collections::HashMap;

/// A maximal gap-free run of placed instances in one row, ordered left to
/// right. Pattern compatibility is only enforced *within* a cluster; the
/// paper assumes neighboring clusters and rows always allow compatible
/// patterns.
///
/// A multi-height cell spans several rows and therefore belongs to one
/// cluster **per row** it covers; the selection pass fixes its pattern in
/// the first cluster and constrains later clusters to that choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Member components, ordered by x.
    pub comps: Vec<CompId>,
}

/// Groups the design's placed components into per-row clusters.
///
/// Rows are taken from the design's `ROW` statements (falling back to
/// distinct placement `y`s); a component joins the cluster of every row
/// its bounding box covers. Within a row, instances form one cluster as
/// long as each abuts the next (no empty site between).
#[must_use]
pub fn build_clusters(tech: &Tech, design: &Design) -> Vec<Cluster> {
    // Row stripes: (y, height) from ROW statements, else from bboxes.
    let mut stripes: Vec<(Dbu, Dbu)> = design.rows.iter().map(|r| (r.origin.y, r.height)).collect();
    if stripes.is_empty() {
        let mut ys: Vec<(Dbu, Dbu)> = design
            .components()
            .iter()
            .filter(|c| c.master_in(tech).is_some())
            .map(|c| {
                let h = c.master_in(tech).map_or(0, |m| m.height);
                (c.location.y, h)
            })
            .collect();
        ys.sort_unstable();
        ys.dedup();
        stripes = ys;
    }
    stripes.sort_unstable();
    stripes.dedup();

    let boxes: Vec<Option<Rect>> = design
        .components()
        .iter()
        .map(|c| {
            if !c.is_placed {
                return None;
            }
            c.master_in(tech).map(|m| {
                pao_geom::Transform::new(c.location, c.orient, m.width, m.height).placed_bbox()
            })
        })
        .collect();

    let mut out = Vec::new();
    for &(y, h) in &stripes {
        let h = h.max(1);
        // Members whose bbox covers this stripe.
        let mut insts: Vec<(Dbu, Dbu, CompId)> = boxes
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let b = (*b)?;
                (b.ylo() <= y && b.yhi() >= y + h).then_some((b.xlo(), b.xhi(), CompId(i as u32)))
            })
            .collect();
        insts.sort_unstable();
        let mut current: Vec<CompId> = Vec::new();
        let mut last_xhi: Option<Dbu> = None;
        for (xlo, xhi, id) in insts {
            match last_xhi {
                Some(prev) if xlo <= prev => current.push(id),
                Some(_) => {
                    out.push(Cluster {
                        comps: std::mem::take(&mut current),
                    });
                    current.push(id);
                }
                None => current.push(id),
            }
            last_xhi = Some(xhi.max(last_xhi.unwrap_or(xhi)));
        }
        if !current.is_empty() {
            out.push(Cluster { comps: current });
        }
    }
    out
}

/// How far (in x) a via at one instance's access point can conflict with a
/// neighbor's: the widest via extent plus the largest spacing requirement.
fn conflict_reach(tech: &Tech) -> Dbu {
    let via_reach = tech
        .vias()
        .iter()
        .map(|v| v.bottom_bbox().max_side().max(v.top_bbox().max_side()))
        .max()
        .unwrap_or(0);
    let spacing = tech
        .layers()
        .iter()
        .map(|l| {
            l.spacing
                .max(l.spacing_table.as_ref().map_or(0, |t| t.max_spacing()))
        })
        .max()
        .unwrap_or(0);
    via_reach + spacing
}

/// The access points of pattern `p` of `u` (translated by `off`) lying
/// within `reach` of the vertical line `x = boundary`, written into the
/// reused buffer `out` (cleared first).
fn near_boundary_aps_into<'u>(
    u: &'u UniqueInstanceAccess,
    p: usize,
    off: Point,
    boundary: Dbu,
    reach: Dbu,
    out: &mut Vec<(&'u crate::apgen::AccessPoint, Point)>,
) {
    out.clear();
    let Some(pat) = u.patterns.get(p) else {
        return;
    };
    out.extend(
        u.pin_order
            .iter()
            .zip(&pat.choice)
            .filter_map(|(&pin, &api)| {
                let ap = u.pin_aps[pin].get(api)?;
                ((ap.pos.x + off.x - boundary).abs() <= reach).then_some((ap, off))
            }),
    );
}

/// **Cluster-based pattern selection** — the Algorithm 2 DP re-used with
/// instances as layers and access patterns as vertices.
///
/// For each cluster, selects one pattern per member so that the access
/// points near each shared cell boundary are mutually DRC-clean. Members
/// already assigned by an earlier cluster (multi-height cells seen in a
/// lower row) are constrained to their assigned pattern. Returns, per
/// component, the chosen pattern index (`None` for components without
/// patterns).
#[must_use]
pub fn select_patterns(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
) -> Vec<Option<usize>> {
    select_patterns_threaded(tech, engine, design, comp_uniq, uniq, 1).0
}

/// The result of the threaded cluster-selection phase.
pub type SelectOutcome = (Vec<Option<usize>>, ExecReport, Vec<FaultRecord>);

/// [`select_patterns`] with a self-scheduling worker pool.
///
/// Clusters only interact through shared components (a multi-height cell
/// appears in one cluster per covered row, and the later cluster must
/// honor the earlier cluster's assignment). Clusters are therefore grouped
/// into connected components over shared members; groups are mutually
/// independent and solved in parallel, while the clusters *within* a group
/// run sequentially in their original order. Each group records its
/// assignments in a local overlay merged afterwards, so the output is
/// bit-identical to the sequential pass for every thread count.
///
/// Groups run fault-isolated: a panic inside one group's DP quarantines
/// that group (its members keep their default pattern) and is reported in
/// the returned [`FaultRecord`]s; every other group selects normally.
#[must_use]
pub fn select_patterns_threaded(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    threads: usize,
) -> SelectOutcome {
    let token = CancelToken::never();
    let (selection, report, faults, _skipped) = select_patterns_budget(
        tech,
        engine,
        design,
        comp_uniq,
        uniq,
        threads,
        PhaseBudget::new(&token, None),
    );
    (selection, report, faults)
}

/// Deadline-aware [`select_patterns_threaded`]: `budget` is polled between
/// groups, and a group skipped by an expired budget simply keeps its
/// members' default (best intra-cell) pattern — the same degraded-but-
/// routable semantics as a quarantined group, minus the fault record. The
/// fourth element of the return is the number of skipped groups.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn select_patterns_budget(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    threads: usize,
    budget: PhaseBudget<'_>,
) -> (Vec<Option<usize>>, ExecReport, Vec<FaultRecord>, usize) {
    // Default: best (first) pattern everywhere; the cluster DP refines.
    let defaults: Vec<Option<usize>> = comp_uniq
        .iter()
        .map(|cu| {
            cu.filter(|ui| !uniq[ui.index()].patterns.is_empty())
                .map(|_| 0)
        })
        .collect();
    let reach = conflict_reach(tech);
    let clusters = build_clusters(tech, design);
    let groups = group_clusters(&clusters, design.components().len());
    if pao_obs::metrics_enabled() {
        pao_obs::counter_add("select.clusters", clusters.len() as u64);
        pao_obs::counter_add("select.groups", groups.len() as u64);
        for cluster in &clusters {
            pao_obs::hist_record("select.cluster_size", cluster.comps.len() as u64);
        }
    }

    let group_sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
    let (clusters, defaults) = (&clusters, &defaults);
    let (locals, report) = parallel_map_budget(
        threads,
        "select.group",
        groups,
        || (),
        |(), group| {
            // Overlay: component index -> final assignment; presence = pinned.
            let mut local: HashMap<usize, Option<usize>> = HashMap::new();
            // Per-worker compat-probe context, reused across the group's
            // clusters so the boundary probes stop allocating trees.
            let mut compat_ctx = ShapeSet::new(tech.layers().len());
            for &cl in &group {
                solve_cluster(
                    tech,
                    engine,
                    design,
                    comp_uniq,
                    uniq,
                    reach,
                    &clusters[cl],
                    defaults,
                    &mut compat_ctx,
                    &mut local,
                );
            }
            local
        },
        budget,
    );

    let mut selection = defaults.clone();
    let mut faults = Vec::new();
    let mut skipped = 0usize;
    for (gi, local) in locals.into_iter().enumerate() {
        match local {
            Ok(local) => {
                for (ci, sel) in local {
                    selection[ci] = sel;
                }
            }
            // Budget ran out before the group was claimed: its members
            // keep their defaults, and on a checkpoint resume the group
            // selects normally.
            Err(ItemFault::Skipped(_)) => skipped += 1,
            // Quarantined group: its members keep the default (best
            // intra-cell) pattern — degraded but routable.
            Err(ItemFault::Panic(reason)) => faults.push(FaultRecord {
                phase: Phase::Select,
                item: format!("selection group {gi} ({} clusters)", group_sizes[gi]),
                reason,
            }),
        }
    }
    (selection, report, faults, skipped)
}

/// Partitions cluster indices into connected components over shared
/// members (multi-height cells), preserving the original cluster order
/// within every group.
fn group_clusters(clusters: &[Cluster], n_comps: usize) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..clusters.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // path halving
            i = parent[i];
        }
        i
    }
    let mut first_cluster: Vec<Option<usize>> = vec![None; n_comps];
    for (cl, cluster) in clusters.iter().enumerate() {
        for c in &cluster.comps {
            match first_cluster[c.index()] {
                Some(other) => {
                    let (a, b) = (find(&mut parent, cl), find(&mut parent, other));
                    // Root at the smaller index so group order is stable.
                    parent[a.max(b)] = a.min(b);
                }
                None => first_cluster[c.index()] = Some(cl),
            }
        }
    }
    let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
    for cl in 0..clusters.len() {
        let root = find(&mut parent, cl);
        by_root.entry(root).or_default().push(cl);
    }
    let mut groups: Vec<(usize, Vec<usize>)> = by_root.into_iter().collect();
    groups.sort_unstable_by_key(|&(root, _)| root);
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Runs the Algorithm 2 DP on one cluster against the group-local overlay
/// (`local`): components present in `local` are pinned to that value,
/// everything else defaults to `defaults`.
#[allow(clippy::too_many_arguments)]
fn solve_cluster(
    tech: &Tech,
    engine: &DrcEngine<'_>,
    design: &Design,
    comp_uniq: &[Option<UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    reach: Dbu,
    cluster: &Cluster,
    defaults: &[Option<usize>],
    compat_ctx: &mut ShapeSet,
    local: &mut HashMap<usize, Option<usize>>,
) {
    let offset_of = |comp: CompId, u: &UniqueInstanceAccess| -> Point {
        design.component(comp).location - design.component(u.info.rep).location
    };
    // Boundary compatibility probes, published on every exit path below.
    let probes = std::cell::Cell::new(0u64);
    // Members paired with their analyzed unique-instance data; the filter
    // guarantees every retained member resolves, so no lookup below can
    // fail.
    let members: Vec<(CompId, &UniqueInstanceAccess)> = cluster
        .comps
        .iter()
        .filter_map(|&c| {
            let u = &uniq[comp_uniq[c.index()]?.index()];
            (!u.patterns.is_empty()).then_some((c, u))
        })
        .collect();
    if members.len() < 2 {
        for &(m, _) in &members {
            // Pin to the current assignment (earlier cluster's choice if
            // any, else the default).
            local.entry(m.index()).or_insert(defaults[m.index()]);
        }
        return;
    }
    // dp[i][p]: min cost selecting pattern p for member i.
    let mut dp: Vec<Vec<(i64, usize)>> = members
        .iter()
        .map(|&(_, u)| vec![(i64::MAX, usize::MAX); u.patterns.len()])
        .collect();
    let allowed = |ci: CompId, p: usize| -> bool {
        match local.get(&ci.index()) {
            Some(&sel) => sel == Some(p),
            None => true,
        }
    };
    {
        let (c0, u) = members[0];
        for (p, cell) in dp[0].iter_mut().enumerate() {
            if allowed(c0, p) {
                cell.0 = u.patterns[p].cost;
            }
        }
    }
    // Near-boundary AP buffers, reused across all DP edges. The left
    // side is precomputed per neighbor pair: it depends only on `p`, so
    // collecting it inside the `q` loop would redo the same walk O(P·Q)
    // times instead of O(P).
    let mut laps_by_p: Vec<Vec<(&crate::apgen::AccessPoint, Point)>> = Vec::new();
    let mut raps: Vec<(&crate::apgen::AccessPoint, Point)> = Vec::new();
    for i in 1..members.len() {
        let ((lcomp, lu), (rcomp, ru)) = (members[i - 1], members[i]);
        let loff = offset_of(lcomp, lu);
        let roff = offset_of(rcomp, ru);
        // The shared boundary: left instance's right edge (members carry
        // analyzed data, so their master is known; 0-width fallback keeps
        // this panic-free regardless).
        let lwidth = design
            .component(lcomp)
            .master_in(tech)
            .map_or(0, |m| m.width);
        let boundary = design.component(lcomp).location.x + lwidth;
        let (head, tail) = dp.split_at_mut(i);
        let prev = &head[i - 1];
        while laps_by_p.len() < prev.len() {
            laps_by_p.push(Vec::new());
        }
        for (p, &(pcost, _)) in prev.iter().enumerate() {
            if pcost != i64::MAX {
                near_boundary_aps_into(lu, p, loff, boundary, reach, &mut laps_by_p[p]);
            }
        }
        for (q, cell) in tail[0].iter_mut().enumerate() {
            if !allowed(rcomp, q) {
                continue;
            }
            near_boundary_aps_into(ru, q, roff, boundary, reach, &mut raps);
            for (p, &(pcost, _)) in prev.iter().enumerate() {
                if pcost == i64::MAX {
                    continue;
                }
                let clean = laps_by_p[p].iter().all(|(la, lo)| {
                    raps.iter().all(|(ra, ro)| {
                        probes.set(probes.get() + 1);
                        aps_compatible_scratch(tech, engine, la, *lo, ra, *ro, compat_ctx)
                    })
                });
                let edge = if clean { 0 } else { DRC_COST };
                let cost = pcost
                    .saturating_add(edge)
                    .saturating_add(ru.patterns[q].cost);
                if cost < cell.0 {
                    *cell = (cost, p);
                }
            }
        }
    }
    // Traceback.
    let Some((mut best_p, _)) = dp
        .last()
        .into_iter()
        .flatten()
        .enumerate()
        .filter(|(_, c)| c.0 < i64::MAX)
        .min_by_key(|(_, c)| c.0)
    else {
        // Over-constrained (pinned members conflict): keep assignments.
        for &(m, _) in &members {
            local.entry(m.index()).or_insert(defaults[m.index()]);
        }
        pao_obs::counter_add("select.compat_probes", probes.get());
        return;
    };
    for i in (0..members.len()).rev() {
        local.insert(members[i].0.index(), Some(best_p));
        if i > 0 {
            best_p = dp[i][best_p].1;
        }
    }
    pao_obs::counter_add("select.compat_probes", probes.get());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::Component;
    use pao_geom::Orient;
    use pao_tech::{Layer, Macro};

    fn tech() -> Tech {
        let mut t = Tech::new(1000);
        t.add_layer(Layer::routing("M1", pao_geom::Dir::Horizontal, 200, 60, 70));
        t.add_macro(Macro::new("INVX1", 400, 1400));
        t.add_macro(Macro::new("NAND2X1", 600, 1400));
        let mut mh = Macro::new("DFF2MH", 800, 2800);
        mh.class = pao_tech::MacroClass::Core;
        t.add_macro(mh);
        t
    }

    #[test]
    fn clusters_split_on_gaps_and_rows() {
        let t = tech();
        let mut d = Design::new("x", Rect::new(0, 0, 100_000, 10_000));
        d.add_component(Component::new("u0", "INVX1", Point::new(0, 0), Orient::N));
        d.add_component(Component::new(
            "u1",
            "NAND2X1",
            Point::new(400, 0),
            Orient::N,
        ));
        d.add_component(Component::new(
            "u2",
            "INVX1",
            Point::new(1400, 0),
            Orient::N,
        ));
        d.add_component(Component::new(
            "u3",
            "INVX1",
            Point::new(0, 1400),
            Orient::N,
        ));
        let clusters = build_clusters(&t, &d);
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0].comps, vec![CompId(0), CompId(1)]);
        assert_eq!(clusters[1].comps, vec![CompId(2)]);
        assert_eq!(clusters[2].comps, vec![CompId(3)]);
    }

    #[test]
    fn multi_height_cells_join_every_covered_row() {
        let t = tech();
        let mut d = Design::new("x", Rect::new(0, 0, 100_000, 10_000));
        // Rows at 0 and 1400; the MH cell covers both.
        d.rows.push(pao_design::Row::new(
            "r0",
            "core",
            Point::new(0, 0),
            Orient::N,
            100,
            400,
            1400,
        ));
        d.rows.push(pao_design::Row::new(
            "r1",
            "core",
            Point::new(0, 1400),
            Orient::FS,
            100,
            400,
            1400,
        ));
        let mh = d.add_component(Component::new("mh", "DFF2MH", Point::new(0, 0), Orient::N));
        let lo = d.add_component(Component::new("lo", "INVX1", Point::new(800, 0), Orient::N));
        let hi = d.add_component(Component::new(
            "hi",
            "INVX1",
            Point::new(800, 1400),
            Orient::FS,
        ));
        let clusters = build_clusters(&t, &d);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].comps, vec![mh, lo]);
        assert_eq!(clusters[1].comps, vec![mh, hi]);
    }

    #[test]
    fn unknown_masters_ignored() {
        let t = tech();
        let mut d = Design::new("x", Rect::new(0, 0, 100_000, 10_000));
        d.add_component(Component::new("g", "GHOST", Point::new(0, 0), Orient::N));
        assert!(build_clusters(&t, &d).is_empty());
    }

    #[test]
    fn conflict_reach_covers_vias_and_spacing() {
        let mut t = tech();
        assert_eq!(conflict_reach(&t), 70); // no vias: just spacing
        t.add_via(pao_tech::ViaDef::new(
            "v",
            pao_tech::LayerId(0),
            vec![Rect::new(-65, -30, 65, 30)],
            pao_tech::LayerId(0),
            vec![Rect::new(-25, -25, 25, 25)],
            pao_tech::LayerId(0),
            vec![Rect::new(-30, -65, 30, 65)],
        ));
        assert_eq!(conflict_reach(&t), 130 + 70);
    }
}
