//! Unique-instance extraction (paper Section II-A).

use pao_design::{CompId, Design};
use pao_drc::{Owner, ShapeSet};
use pao_geom::{Dbu, Orient};
use pao_tech::{Symbol, Tech};
use std::collections::HashMap;
use std::fmt;

/// Index of a unique instance in the analysis result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UniqueInstanceId(pub u32);

impl UniqueInstanceId {
    /// The index as a `usize` for direct slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UniqueInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// An equivalence class of placed instances sharing a *signature*: cell
/// master, orientation, and the offsets (phases) of the placement origin
/// to every track pattern in the design.
///
/// Instances with the same signature see identical on-/off-track
/// conditions at every pin location, so intra-cell pin access analysis is
/// performed **once per unique instance** on the representative `rep` and
/// the resulting access points are translated to every member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueInstance {
    /// This class's id.
    pub id: UniqueInstanceId,
    /// Cell master name (interned).
    pub master: Symbol,
    /// Placement orientation.
    pub orient: Orient,
    /// Origin phases against every track pattern, in declaration order.
    pub phases: Vec<Dbu>,
    /// The representative member (analysis frame).
    pub rep: CompId,
    /// All members, including `rep`.
    pub members: Vec<CompId>,
}

/// Groups the design's components into unique instances.
///
/// Components whose master is unknown to `tech` are skipped. The returned
/// vector is ordered by first appearance; `members` preserve design order.
///
/// ```no_run
/// # let tech: pao_tech::Tech = unimplemented!();
/// # let design: pao_design::Design = unimplemented!();
/// let unique = pao_core::unique::extract_unique_instances(&tech, &design);
/// let total: usize = unique.iter().map(|u| u.members.len()).sum();
/// assert!(total <= design.components().len());
/// ```
#[must_use]
pub fn extract_unique_instances(tech: &Tech, design: &Design) -> Vec<UniqueInstance> {
    let mut by_sig: HashMap<(Symbol, Orient, Vec<Dbu>), usize> = HashMap::new();
    let mut out: Vec<UniqueInstance> = Vec::new();
    for (i, comp) in design.components().iter().enumerate() {
        if comp.master_in(tech).is_none() || !comp.is_placed {
            continue;
        }
        let id = CompId(i as u32);
        let sig = (comp.master, comp.orient, design.track_phases(comp));
        match by_sig.get(&sig) {
            Some(&ui) => out[ui].members.push(id),
            None => {
                let ui = out.len();
                by_sig.insert(sig.clone(), ui);
                out.push(UniqueInstance {
                    id: UniqueInstanceId(ui as u32),
                    master: sig.0,
                    orient: sig.1,
                    phases: sig.2,
                    rep: id,
                    members: vec![id],
                });
            }
        }
    }
    out
}

/// Owner id for pin `pin_idx` of component `comp` in DRC shape sets —
/// the scheme used throughout the framework.
#[must_use]
pub fn pin_owner(comp: CompId, pin_idx: usize) -> Owner {
    Owner::pin((u64::from(comp.0) << 16) | pin_idx as u64)
}

/// Owner id for pin `pin_idx` analysed in the *unique-instance frame*
/// (no component identity — intra-cell analysis only).
#[must_use]
pub fn local_pin_owner(pin_idx: usize) -> Owner {
    Owner::pin(pin_idx as u64)
}

/// Builds the intra-cell DRC context for one placed component: its own pin
/// shapes (owners [`local_pin_owner`]) and obstructions, in die
/// coordinates.
///
/// Step 1 of the framework validates access points against exactly this
/// context — inter-cell effects are handled by steps 2 and 3.
///
/// # Panics
///
/// Panics when the component's master is unknown to `tech`.
#[must_use]
pub fn build_instance_context(tech: &Tech, design: &Design, comp: CompId) -> ShapeSet {
    let mut ctx = ShapeSet::new(tech.layers().len());
    for (pin_idx, layer, rect) in design.placed_pin_shapes(tech, comp) {
        ctx.insert(layer, rect, local_pin_owner(pin_idx));
    }
    for (layer, rect) in design.placed_obs_shapes(tech, comp) {
        ctx.insert(layer, rect, Owner::obs(0));
    }
    ctx.rebuild();
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::{Component, TrackPattern};
    use pao_geom::{Dir, Point, Rect};
    use pao_tech::{Layer, LayerId, Macro, Pin, PinDir, Port};

    fn tech() -> Tech {
        let mut t = Tech::new(2000);
        let m1 = t.add_layer(Layer::routing("M1", Dir::Horizontal, 280, 120, 120));
        let mut inv = Macro::new("INVX1", 760, 2800);
        inv.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(m1, vec![Rect::new(100, 400, 220, 1000)])],
        ));
        inv.obs.push((m1, Rect::new(600, 0, 700, 2800)));
        t.add_macro(inv);
        t.add_macro(Macro::new("NAND2X1", 1140, 2800));
        t
    }

    fn design_with_tracks() -> Design {
        let mut d = Design::new("top", Rect::new(0, 0, 100_000, 100_000));
        d.tracks.push(TrackPattern::new(
            Dir::Horizontal,
            140,
            280,
            300,
            vec![LayerId(0)],
        ));
        d.tracks.push(TrackPattern::new(
            Dir::Vertical,
            190,
            380,
            250,
            vec![LayerId(0)],
        ));
        d
    }

    #[test]
    fn same_signature_groups() {
        let t = tech();
        let mut d = design_with_tracks();
        // a, b: same master/orient, x offset = one vertical pitch → same class.
        d.add_component(Component::new("a", "INVX1", Point::new(380, 0), Orient::N));
        d.add_component(Component::new("b", "INVX1", Point::new(760, 0), Orient::N));
        // c: shifted half a pitch → different class (paper Fig. 1).
        d.add_component(Component::new("c", "INVX1", Point::new(570, 0), Orient::N));
        // e: same offsets but different orientation → different class.
        d.add_component(Component::new(
            "e",
            "INVX1",
            Point::new(1140, 0),
            Orient::FS,
        ));
        // f: different master → different class.
        d.add_component(Component::new(
            "f",
            "NAND2X1",
            Point::new(1520, 0),
            Orient::N,
        ));
        let unique = extract_unique_instances(&t, &d);
        assert_eq!(unique.len(), 4);
        assert_eq!(unique[0].members.len(), 2);
        assert_eq!(unique[0].rep, CompId(0));
        assert_eq!(unique[0].id, UniqueInstanceId(0));
        let total: usize = unique.iter().map(|u| u.members.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn unknown_masters_skipped() {
        let t = tech();
        let mut d = design_with_tracks();
        d.add_component(Component::new("ghost", "BOGUS", Point::ORIGIN, Orient::N));
        assert!(extract_unique_instances(&t, &d).is_empty());
    }

    #[test]
    fn context_contains_pins_and_obs() {
        let t = tech();
        let mut d = design_with_tracks();
        let id = d.add_component(Component::new("a", "INVX1", Point::new(1000, 0), Orient::N));
        let ctx = build_instance_context(&t, &d, id);
        assert_eq!(ctx.len(), 2);
        // Pin shape translated by the placement.
        let hits: Vec<(Rect, Owner)> = ctx
            .query(LayerId(0), Rect::new(1100, 400, 1220, 1000))
            .collect();
        assert!(hits
            .iter()
            .any(|&(r, o)| r == Rect::new(1100, 400, 1220, 1000) && o == local_pin_owner(0)));
    }

    #[test]
    fn owner_schemes_distinct() {
        assert_ne!(pin_owner(CompId(1), 0), pin_owner(CompId(0), 1));
        assert_ne!(pin_owner(CompId(0), 1), pin_owner(CompId(0), 2));
        assert_eq!(local_pin_owner(3), Owner::pin(3));
    }
}
