//! Resident oracle service: the query surface behind `pao serve`.
//!
//! The paper's oracle exists to be *queried* — the detailed router asks
//! for pin access on demand — so a production deployment keeps one warm
//! [`OracleService`] resident instead of re-running the pipeline per
//! invocation. The service owns immutable shared state (`Arc<Tech>`,
//! `Arc<Design>`, `Arc<PaoResult>`): queries are pure reads over those
//! snapshots and therefore safe to fan out across any number of threads
//! with byte-identical answers, while [`eco_update`](OracleService::eco_update)
//! replaces the design/result snapshots copy-on-write — in-flight readers
//! keep the `Arc` they already cloned, new queries see the new placement.
//!
//! Re-analysis after a move goes through the [`incremental`](crate::incremental)
//! dirty-cluster path: intra-cell work (steps 1–2) is keyed by signature
//! in the service's [`AnalysisCache`], so a move that preserves signatures
//! re-runs only cluster selection, repair and audit. Per-request deadlines
//! reuse [`RunBudget`]/[`BudgetAllocator`](crate::budget::BudgetAllocator),
//! with phase fractions drawn from an immutable [`SharedFractions`]
//! snapshot (one request's history roll-forward never mutates a
//! concurrent request's split).

use crate::budget::{PhaseFractions, RunBudget, SharedFractions, Watchdog};
use crate::incremental::AnalysisCache;
use crate::oracle::{PaoConfig, PaoResult, PinAccessOracle};
use crate::persist::{EcoJournal, JournalEntry};
use pao_design::{CompId, Design};
use pao_geom::Point;
use pao_tech::Tech;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A typed failure answering one query. These are *request* errors — the
/// service itself stays healthy and keeps serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No component with this instance name exists in the design.
    UnknownInstance(String),
    /// The instance exists but its master is not in the LEF.
    UnknownMaster(String),
    /// The master has no pin with this name.
    UnknownPin {
        /// The master searched.
        master: String,
        /// The pin name that failed to resolve.
        pin: String,
    },
    /// The instance was not analyzed (unplaced or unknown master).
    NotAnalyzed(String),
    /// An `eco_update` re-analysis degraded — it blew its deadline,
    /// tripped the watchdog, or quarantined faulted work — so the update
    /// was **not** applied: the previous snapshot keeps serving and the
    /// signature cache was restored. The journaled entry is revoked.
    EcoDegraded {
        /// Work items quarantined by faults during the re-analysis.
        quarantined: usize,
        /// Work items skipped by the expired deadline budget.
        skipped: usize,
        /// Watchdog stalls that fired.
        stalls: usize,
    },
    /// The ECO journal could not durably record the update, so the
    /// update was rejected before any analysis ran (no durability, no
    /// apply).
    Journal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownInstance(inst) => write!(f, "unknown instance `{inst}`"),
            ServiceError::UnknownMaster(inst) => {
                write!(f, "instance `{inst}` has an unknown master")
            }
            ServiceError::UnknownPin { master, pin } => {
                write!(f, "master `{master}` has no pin `{pin}`")
            }
            ServiceError::NotAnalyzed(inst) => {
                write!(f, "instance `{inst}` was not analyzed")
            }
            ServiceError::EcoDegraded {
                quarantined,
                skipped,
                stalls,
            } => {
                write!(
                    f,
                    "eco re-analysis degraded (quarantined {quarantined}, skipped {skipped}, \
                     stalls {stalls}); previous snapshot kept"
                )
            }
            ServiceError::Journal(msg) => write!(f, "eco journal: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One reject-rule tally for a pin: how many AP candidates a DRC rule
/// (with sub-check) eliminated during generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectCount {
    /// Presentation label, e.g. `Spacing (prl)` or `no via candidate`.
    pub rule: String,
    /// Candidates rejected with this attribution.
    pub count: u64,
}

/// Answer to `get_pin_access`: the selected AP, every surviving
/// candidate, and (when the service collected the decision ledger at
/// load) the reject-rule histogram from candidate generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinAccessReply {
    /// Instance name as queried.
    pub inst: String,
    /// Pin name as queried.
    pub pin: String,
    /// The selected access point in the instance's die frame (`None`
    /// when the pin failed analysis).
    pub selected: Option<crate::apgen::AccessPoint>,
    /// `true` when `selected` comes from a post-selection repair
    /// override rather than the chosen pattern.
    pub from_override: bool,
    /// All surviving access points (die frame), selected one included.
    pub candidates: Vec<crate::apgen::AccessPoint>,
    /// Reject-rule tallies from apgen (empty without ledger collection,
    /// and for checkpoint-restored instances whose apgen was skipped).
    pub rejects: Vec<RejectCount>,
}

/// Answer to `get_instance_patterns`: the unique instance's generated
/// access patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstancePatternsReply {
    /// Instance name as queried.
    pub inst: String,
    /// The instance's cell master.
    pub master: String,
    /// Index of the unique instance answering for this component.
    pub unique_index: usize,
    /// How many placed components share this unique instance.
    pub members: usize,
    /// The analyzed pin ordering (indices into the master pin list).
    pub pin_order: Vec<usize>,
    /// Generated patterns over `pin_order` (cost-ascending, as analyzed).
    pub patterns: Vec<crate::pattern::AccessPattern>,
}

/// Answer to `get_cluster_selection`: which pattern cluster selection
/// chose for this component, plus any per-pin repair overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSelectionReply {
    /// Instance name as queried.
    pub inst: String,
    /// Selected pattern index (`None` when no pattern exists).
    pub pattern: Option<usize>,
    /// Post-selection repair overrides for this component's pins, in pin
    /// order: `(pin index, die-frame access point)`.
    pub overrides: Vec<(usize, crate::apgen::AccessPoint)>,
}

/// One component move in an [`eco_update`](OracleService::eco_update).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcoMove {
    /// Instance to move.
    pub inst: String,
    /// Where it goes.
    pub target: EcoTarget,
}

/// Where an [`EcoMove`] places its instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoTarget {
    /// Absolute die-frame location.
    Abs(Point),
    /// Offset from the current location.
    Delta(Point),
}

/// What an [`eco_update`](OracleService::eco_update) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcoReply {
    /// Components moved.
    pub moved: usize,
    /// Signature cache hits during the re-analysis (fast-path reuse).
    pub cache_hits: usize,
    /// Signature cache misses (each one forced intra-cell re-analysis).
    pub cache_misses: usize,
    /// `true` when a new signature forced the full five-phase pipeline;
    /// `false` means only select/repair/audit re-ran (the dirty-cluster
    /// incremental path).
    pub full_reanalysis: bool,
    /// Failed pins after the update.
    pub failed_pins: usize,
    /// Monotone update sequence number (1 for the first ECO).
    pub eco_seq: u64,
}

/// Reject histogram keyed by `(unique instance, pin)`, built from one
/// ledger-enabled analysis at service start.
type RejectMap = HashMap<(u32, usize), Vec<RejectCount>>;

/// A resident, query-answering pin access oracle (see the module docs).
#[derive(Debug)]
pub struct OracleService {
    tech: Arc<Tech>,
    design: Arc<Design>,
    result: Arc<PaoResult>,
    cache: AnalysisCache,
    config: PaoConfig,
    fractions: SharedFractions,
    collect_rejects: bool,
    rejects: RejectMap,
    eco_updates: u64,
    journal: Option<EcoJournal>,
    degraded_ecos: u64,
}

/// Presentation label for a ledger reject attribution (mirrors
/// `pao explain`): rule + sub-check, or the no-candidate sentinel.
fn reject_label(rule: u8, subcheck: u8) -> String {
    use pao_drc::{RuleKind, SubCheck};
    match (RuleKind::from_code(rule), SubCheck::from_code(subcheck)) {
        (Some(r), Some(s)) => format!("{r} ({s})"),
        (Some(r), None) => r.to_string(),
        _ => "no via candidate".to_owned(),
    }
}

/// Folds a drained ledger dump into the per-pin reject histogram, in
/// stable `(rule, subcheck)` code order.
fn build_rejects(dump: &pao_obs::LedgerDump) -> RejectMap {
    let mut tallies: HashMap<(u32, usize), BTreeMap<(u8, u8), u64>> = HashMap::new();
    for r in &dump.records {
        if r.decode_event() == Some(pao_obs::LedgerEvent::ApReject) {
            let key = ((r.entity >> 16) as u32, (r.entity & 0xFFFF) as usize);
            *tallies
                .entry(key)
                .or_default()
                .entry((r.rule, r.subcheck))
                .or_default() += 1;
        }
    }
    tallies
        .into_iter()
        .map(|(key, by_rule)| {
            let counts = by_rule
                .into_iter()
                .map(|((rule, sub), count)| RejectCount {
                    rule: reject_label(rule, sub),
                    count,
                })
                .collect();
            (key, counts)
        })
        .collect()
}

/// Deterministic text dump of a result's cluster-selection outcome: one
/// line per component (selected pattern index), repair overrides in
/// component order, and the failed-pin count. Byte-identical across
/// thread counts by the selection identity contract — `pao analyze
/// --dump-selection` writes this same text, and the `scripts/verify.sh`
/// serve gate diffs a daemon's copy against it.
#[must_use]
pub fn selection_dump(design: &Design, result: &PaoResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (ci, comp) in design.components().iter().enumerate() {
        match result.selection.get(ci).copied().flatten() {
            Some(p) => {
                let _ = writeln!(out, "comp {ci} {} pattern {p}", comp.name);
            }
            None => {
                let _ = writeln!(out, "comp {ci} {} pattern -", comp.name);
            }
        }
    }
    let mut overrides: Vec<_> = result.overrides.iter().collect();
    overrides.sort_by_key(|(k, _)| (k.0.index(), k.1));
    for (k, ap) in overrides {
        let _ = writeln!(
            out,
            "override {} {} layer {} at {},{}",
            k.0.index(),
            k.1,
            ap.layer.index(),
            ap.pos.x,
            ap.pos.y
        );
    }
    let _ = writeln!(out, "failed {}", result.stats.failed_pins);
    out
}

impl OracleService {
    /// Loads the service: analyzes `design` once under `budget` (pass a
    /// checkpoint store inside the budget for the warm-start path) and
    /// keeps the result resident for queries. With `collect_rejects` the
    /// load runs with the decision ledger enabled so `get_pin_access`
    /// can report per-pin reject reasons; the ledger switch is
    /// process-global, so leave it off when other analyses share the
    /// process.
    #[must_use]
    pub fn start(
        tech: Tech,
        design: Design,
        config: PaoConfig,
        budget: RunBudget<'_>,
        collect_rejects: bool,
    ) -> OracleService {
        let mut cache = AnalysisCache::new();
        if collect_rejects {
            pao_obs::enable_ledger();
        }
        let oracle = PinAccessOracle::with_config(config.clone());
        let result = oracle.analyze_with_cache_budget(&tech, &design, &mut cache, budget);
        let rejects = if collect_rejects {
            pao_obs::disable_ledger();
            build_rejects(&pao_obs::take_ledger())
        } else {
            RejectMap::new()
        };
        let fractions = SharedFractions::new(PhaseFractions::from_stats(&result.stats));
        OracleService {
            tech: Arc::new(tech),
            design: Arc::new(design),
            result: Arc::new(result),
            cache,
            config,
            fractions,
            collect_rejects,
            rejects,
            eco_updates: 0,
            journal: None,
            degraded_ecos: 0,
        }
    }

    /// Attaches a write-ahead [`EcoJournal`]: every subsequently accepted
    /// `eco_update` batch is durably recorded *before* its re-analysis
    /// runs, so a killed process can [`replay`](OracleService::replay)
    /// on restart and land bit-identical to a never-killed twin.
    pub fn attach_journal(&mut self, journal: EcoJournal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&EcoJournal> {
        self.journal.as_ref()
    }

    /// Re-applies recovered journal entries in order through the normal
    /// ECO path — without deadline, watchdog or re-journaling, because
    /// every entry was already accepted and durably recorded by a prior
    /// incarnation. Deterministic analysis makes the resulting snapshot
    /// bit-identical to one that applied the same batches live. Returns
    /// the number of entries replayed.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when an entry no longer validates (e.g. the
    /// journal belongs to a different design); replay stops there.
    pub fn replay(&mut self, entries: &[JournalEntry]) -> Result<u64, ServiceError> {
        let journal = self.journal.take();
        let mut applied = 0;
        let mut first_err = None;
        for e in entries {
            match self.eco_update(&e.moves, None, None) {
                Ok(_) => applied += 1,
                Err(err) => {
                    first_err = Some(err);
                    break;
                }
            }
        }
        self.journal = journal;
        match first_err {
            Some(err) => Err(err),
            None => Ok(applied),
        }
    }

    /// ECO updates that degraded (rejected, snapshot kept) since load.
    #[must_use]
    pub fn degraded_ecos(&self) -> u64 {
        self.degraded_ecos
    }

    /// The loaded technology.
    #[must_use]
    pub fn tech(&self) -> &Arc<Tech> {
        &self.tech
    }

    /// The current design snapshot (replaced copy-on-write by ECOs).
    #[must_use]
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    /// The current analysis snapshot.
    #[must_use]
    pub fn result(&self) -> &Arc<PaoResult> {
        &self.result
    }

    /// The shared phase-fraction history feeding per-request budgets.
    #[must_use]
    pub fn fractions(&self) -> &SharedFractions {
        &self.fractions
    }

    /// ECO updates applied since load.
    #[must_use]
    pub fn eco_updates(&self) -> u64 {
        self.eco_updates
    }

    /// `(hits, misses)` of the resident signature cache.
    #[must_use]
    pub fn cache_stats(&self) -> (usize, usize) {
        self.cache.stats()
    }

    /// Resolves an instance name to its component id.
    fn resolve(&self, inst: &str) -> Result<CompId, ServiceError> {
        self.design
            .component_by_name(inst)
            .ok_or_else(|| ServiceError::UnknownInstance(inst.to_owned()))
    }

    /// The unique-instance index answering for `comp`.
    fn unique_index(&self, comp: CompId, inst: &str) -> Result<usize, ServiceError> {
        self.result
            .comp_uniq
            .get(comp.index())
            .copied()
            .flatten()
            .map(|ui| ui.index())
            .ok_or_else(|| ServiceError::NotAnalyzed(inst.to_owned()))
    }

    /// Answers `get_pin_access` for `inst`/`pin`.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the instance, master or pin cannot be
    /// resolved, or the instance was not analyzed.
    pub fn pin_access(&self, inst: &str, pin: &str) -> Result<PinAccessReply, ServiceError> {
        let comp = self.resolve(inst)?;
        let master = self
            .design
            .component(comp)
            .master_in(&self.tech)
            .ok_or_else(|| ServiceError::UnknownMaster(inst.to_owned()))?;
        let pin_idx = master
            .pins
            .iter()
            .position(|p| p.name == pin)
            .ok_or_else(|| ServiceError::UnknownPin {
                master: master.name.to_string(),
                pin: pin.to_owned(),
            })?;
        let ui = self.unique_index(comp, inst)?;
        let selected = self.result.access_point(&self.design, comp, pin_idx);
        let from_override = self.result.overrides.contains_key(&(comp, pin_idx));
        let candidates = self.result.all_access_points(&self.design, comp, pin_idx);
        let rejects = self
            .rejects
            .get(&(ui as u32, pin_idx))
            .cloned()
            .unwrap_or_default();
        Ok(PinAccessReply {
            inst: inst.to_owned(),
            pin: pin.to_owned(),
            selected,
            from_override,
            candidates,
            rejects,
        })
    }

    /// Answers `get_instance_patterns` for `inst`.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the instance cannot be resolved or was not
    /// analyzed.
    pub fn instance_patterns(&self, inst: &str) -> Result<InstancePatternsReply, ServiceError> {
        let comp = self.resolve(inst)?;
        let ui = self.unique_index(comp, inst)?;
        let u = &self.result.unique[ui];
        Ok(InstancePatternsReply {
            inst: inst.to_owned(),
            master: u.info.master.to_string(),
            unique_index: ui,
            members: u.info.members.len(),
            pin_order: u.pin_order.clone(),
            patterns: u.patterns.clone(),
        })
    }

    /// Answers `get_cluster_selection` for `inst`.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the instance cannot be resolved.
    pub fn cluster_selection(&self, inst: &str) -> Result<ClusterSelectionReply, ServiceError> {
        let comp = self.resolve(inst)?;
        let pattern = self.result.selection.get(comp.index()).copied().flatten();
        let mut overrides: Vec<(usize, crate::apgen::AccessPoint)> = self
            .result
            .overrides
            .iter()
            .filter(|((c, _), _)| *c == comp)
            .map(|((_, pin), ap)| (*pin, ap.clone()))
            .collect();
        overrides.sort_by_key(|(pin, _)| *pin);
        Ok(ClusterSelectionReply {
            inst: inst.to_owned(),
            pattern,
            overrides,
        })
    }

    /// The deterministic selection dump of the current snapshot (same
    /// bytes as `pao analyze --dump-selection` on the same placement).
    #[must_use]
    pub fn selection_dump(&self) -> String {
        selection_dump(&self.design, &self.result)
    }

    /// Applies component moves copy-on-write and re-analyzes through the
    /// incremental dirty-cluster path: the design is cloned, moved, and
    /// re-analyzed with the resident signature cache — signature-
    /// preserving moves skip steps 1–2 entirely — then both snapshots are
    /// swapped atomically. Queries running concurrently on the old
    /// `Arc`s finish against the placement they started with.
    ///
    /// The re-analysis runs under `deadline` (if any) with a
    /// [`PhaseFractions`] snapshot taken from the shared history at call
    /// time; a full re-analysis publishes its measured fractions back.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownInstance`] when any move names a missing
    /// instance — the update is rejected whole, nothing moves.
    /// [`ServiceError::Journal`] when the attached journal cannot
    /// durably record the batch (again rejected whole, before analysis).
    /// [`ServiceError::EcoDegraded`] when the re-analysis blows its
    /// deadline, trips the watchdog, or quarantines faulted work — the
    /// previous snapshot keeps serving, the signature cache is restored
    /// (a degraded full run would otherwise pollute it with partial
    /// entries), and the journaled record is revoked.
    pub fn eco_update(
        &mut self,
        moves: &[EcoMove],
        deadline: Option<Duration>,
        watchdog: Option<Watchdog>,
    ) -> Result<EcoReply, ServiceError> {
        // Validate every move before touching anything.
        let mut resolved = Vec::with_capacity(moves.len());
        for m in moves {
            resolved.push(self.resolve(&m.inst)?);
        }
        // Durably record the accepted batch before analysis: a kill at
        // any later instant leaves it replayable on restart.
        let journal_seq = match self.journal.as_mut() {
            Some(j) => Some(
                j.append(moves)
                    .map_err(|e| ServiceError::Journal(e.to_string()))?,
            ),
            None => None,
        };
        let mut design = (*self.design).clone();
        for (m, comp) in moves.iter().zip(&resolved) {
            let loc = &mut design.component_mut(*comp).location;
            match m.target {
                EcoTarget::Abs(p) => *loc = p,
                EcoTarget::Delta(d) => *loc += d,
            }
        }
        let (h0, m0) = self.cache.stats();
        // A degraded full re-analysis would insert partial entries into
        // the resident cache; keep a pre-analysis copy to restore.
        let cache_before = self.cache.clone();
        let budget = RunBudget {
            deadline,
            fractions: self.fractions.snapshot(),
            watchdog,
            checkpoint: None,
        };
        if self.collect_rejects {
            pao_obs::enable_ledger();
        }
        let result = PinAccessOracle::with_config(self.config.clone()).analyze_with_cache_budget(
            &self.tech,
            &design,
            &mut self.cache,
            budget,
        );
        let (h1, m1) = self.cache.stats();
        let full_reanalysis = m1 > m0;
        let dump = if self.collect_rejects {
            pao_obs::disable_ledger();
            Some(pao_obs::take_ledger())
        } else {
            None
        };
        let degraded = result.stats.deadline.is_partial() || !result.stats.quarantined.is_empty();
        if degraded {
            // Graceful degradation: the old snapshot keeps serving.
            self.cache = cache_before;
            self.degraded_ecos += 1;
            if let (Some(j), Some(seq)) = (self.journal.as_mut(), journal_seq) {
                j.revoke(seq)
                    .map_err(|e| ServiceError::Journal(e.to_string()))?;
            }
            return Err(ServiceError::EcoDegraded {
                quarantined: result.stats.quarantined.len(),
                skipped: result.stats.deadline.skipped_items(),
                stalls: result.stats.deadline.stalls.len(),
            });
        }
        if let Some(dump) = dump {
            if full_reanalysis {
                // Apgen re-ran: the drained records re-attribute every pin.
                self.rejects = build_rejects(&dump);
            }
            // Fast path: apgen was skipped, so the drain is empty — the
            // existing map stays valid (signatures, hence unique indices,
            // are unchanged).
        }
        if full_reanalysis {
            self.fractions
                .publish(PhaseFractions::from_stats(&result.stats));
        }
        self.eco_updates += 1;
        let reply = EcoReply {
            moved: moves.len(),
            cache_hits: h1 - h0,
            cache_misses: m1 - m0,
            full_reanalysis,
            failed_pins: result.stats.failed_pins,
            eco_seq: self.eco_updates,
        };
        self.design = Arc::new(design);
        self.result = Arc::new(result);
        Ok(reply)
    }
}
