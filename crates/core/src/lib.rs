#![warn(missing_docs)]

//! PAAF — the pin access analysis framework of *The Tao of PAO: Anatomy of
//! a Pin Access Oracle for Detailed Routing* (Kahng, Wang, Xu; DAC 2020).
//!
//! The framework analyzes pin accessibility ahead of detailed routing in
//! three multi-level steps:
//!
//! 1. **Pin-based access point generation** ([`apgen`], Algorithm 1):
//!    typed candidate coordinates ([`CoordType`]) are enumerated per pin of
//!    each [unique instance](unique) and validated with a full design-rule
//!    check of the landing via; generation early-terminates at `k` valid
//!    [`AccessPoint`]s.
//! 2. **Unique-instance access pattern generation** ([`pattern`],
//!    Algorithms 2–3): a dynamic program over ordered pins picks one access
//!    point per pin so that neighboring choices are mutually DRC-clean,
//!    with *boundary-conflict-aware* (BCA) penalties producing diverse
//!    [`AccessPattern`]s.
//! 3. **Cluster-based access pattern selection** ([`cluster`]): the same DP
//!    shape runs over gap-free rows of placed instances and picks one
//!    pattern per instance minimizing inter-cell conflicts.
//!
//! [`PinAccessOracle`] ties the steps together and is the crate's main
//! entry point:
//!
//! ```no_run
//! use pao_core::PinAccessOracle;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let lef = ""; let def = "";
//! let tech = pao_tech::lef::parse_lef(lef)?;
//! let design = pao_design::def::parse_def(def, &tech)?;
//!
//! let oracle = PinAccessOracle::new();
//! let result = oracle.analyze(&tech, &design);
//! println!("{} unique instances, {} failed pins",
//!          result.unique.len(), result.stats.failed_pins);
//! # Ok(())
//! # }
//! ```

pub mod apgen;
pub mod budget;
pub mod cluster;
pub mod coord;
pub mod cost;
pub mod error;
pub mod fault;
pub mod incremental;
pub mod oracle;
pub mod parallel;
pub mod pattern;
pub mod persist;
pub mod service;
pub mod stats;
pub mod unique;

pub use apgen::{AccessPoint, ApGenConfig, ApScratch, PlanarDir};
pub use budget::{
    BudgetAllocator, CancelReason, CancelToken, DeadlineReport, PhaseFractions, RunBudget,
    SharedFractions, SkipRecord, StallRecord, Watchdog,
};
pub use cluster::{Cluster, SelectTelemetry, SelectTuning};
pub use coord::CoordType;
pub use error::{FaultRecord, PaoError, Phase};
pub use oracle::{default_threads, PaoConfig, PaoResult, PinAccessOracle, UniqueInstanceAccess};
pub use parallel::{ExecReport, ItemFault, PhaseBudget};
pub use pattern::{AccessPattern, PatternConfig};
pub use persist::{CheckpointStore, EcoJournal, JournalEntry};
pub use service::{
    ClusterSelectionReply, EcoMove, EcoReply, EcoTarget, InstancePatternsReply, OracleService,
    PinAccessReply, RejectCount, ServiceError,
};
pub use stats::PaoStats;
pub use unique::{UniqueInstance, UniqueInstanceId};
