//! Persistence for the incremental-analysis cache.
//!
//! Placement optimization runs in many short tool invocations; persisting
//! the per-signature intra-cell analysis lets every invocation after the
//! first skip steps 1–2 entirely. The format is a plain line-oriented
//! text format (like LEF/DEF, greppable and diff-friendly), versioned by
//! a header.

use crate::apgen::{AccessPoint, PlanarDir};
use crate::coord::CoordType;
use crate::pattern::AccessPattern;
use std::fmt;
use std::fmt::Write as _;

/// Error produced while loading a persisted cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCacheError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for LoadCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache load error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for LoadCacheError {}

const MAGIC: &str = "PAO-CACHE v2";

fn coord_code(t: CoordType) -> u8 {
    t.cost() as u8
}

fn coord_from(c: u8) -> Option<CoordType> {
    Some(match c {
        0 => CoordType::OnTrack,
        1 => CoordType::HalfTrack,
        2 => CoordType::ShapeCenter,
        3 => CoordType::EnclosureBoundary,
        _ => return None,
    })
}

fn planar_code(d: PlanarDir) -> char {
    match d {
        PlanarDir::East => 'E',
        PlanarDir::West => 'W',
        PlanarDir::North => 'N',
        PlanarDir::South => 'S',
    }
}

fn planar_from(c: char) -> Option<PlanarDir> {
    Some(match c {
        'E' => PlanarDir::East,
        'W' => PlanarDir::West,
        'N' => PlanarDir::North,
        'S' => PlanarDir::South,
        _ => return None,
    })
}

/// Serializes one access point as a single line.
pub fn write_ap(out: &mut String, ap: &AccessPoint) {
    let vias: Vec<String> = ap.vias.iter().map(|v| v.0.to_string()).collect();
    let planar: String = ap.planar.iter().map(|&d| planar_code(d)).collect();
    let _ = writeln!(
        out,
        "AP {} {} {} {} {} vias={} planar={}",
        ap.pos.x,
        ap.pos.y,
        ap.layer.0,
        coord_code(ap.pref_type),
        coord_code(ap.nonpref_type),
        if vias.is_empty() {
            "-".to_owned()
        } else {
            vias.join(",")
        },
        if planar.is_empty() {
            "-".to_owned()
        } else {
            planar
        },
    );
}

/// Parses a line produced by [`write_ap`].
///
/// # Errors
///
/// Returns [`LoadCacheError`] with the offending line on malformed input.
pub fn parse_ap(line: &str, lineno: usize) -> Result<AccessPoint, LoadCacheError> {
    let err = |m: &str| LoadCacheError {
        message: m.to_owned(),
        line: lineno,
    };
    let mut it = line.split_whitespace();
    if it.next() != Some("AP") {
        return Err(err("expected AP line"));
    }
    let mut num = |name: &str| -> Result<i64, LoadCacheError> {
        it.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(&format!("bad {name}")))
    };
    let x = num("x")?;
    let y = num("y")?;
    let layer = num("layer")? as u32;
    let pref = coord_from(num("pref")? as u8).ok_or_else(|| err("bad pref type"))?;
    let nonpref = coord_from(num("nonpref")? as u8).ok_or_else(|| err("bad nonpref type"))?;
    let vias_tok = it.next().ok_or_else(|| err("missing vias"))?;
    let vias_str = vias_tok
        .strip_prefix("vias=")
        .ok_or_else(|| err("missing vias="))?;
    let vias = if vias_str == "-" {
        Vec::new()
    } else {
        vias_str
            .split(',')
            .map(|v| v.parse().map(pao_tech::ViaId))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| err("bad via id"))?
    };
    let planar_tok = it.next().ok_or_else(|| err("missing planar"))?;
    let planar_str = planar_tok
        .strip_prefix("planar=")
        .ok_or_else(|| err("missing planar="))?;
    let planar = if planar_str == "-" {
        Vec::new()
    } else {
        planar_str
            .chars()
            .map(planar_from)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| err("bad planar code"))?
    };
    Ok(AccessPoint {
        pos: pao_geom::Point::new(x, y),
        layer: pao_tech::LayerId(layer),
        pref_type: pref,
        nonpref_type: nonpref,
        vias,
        planar,
    })
}

/// Serializes one access pattern as a single line.
pub fn write_pattern(out: &mut String, p: &AccessPattern) {
    let choice: Vec<String> = p.choice.iter().map(usize::to_string).collect();
    let _ = writeln!(
        out,
        "PATTERN cost={} validated={} choice={}",
        p.cost,
        p.validated,
        if choice.is_empty() {
            "-".to_owned()
        } else {
            choice.join(",")
        },
    );
}

/// Parses a line produced by [`write_pattern`].
///
/// # Errors
///
/// Returns [`LoadCacheError`] with the offending line on malformed input.
pub fn parse_pattern(line: &str, lineno: usize) -> Result<AccessPattern, LoadCacheError> {
    let err = |m: &str| LoadCacheError {
        message: m.to_owned(),
        line: lineno,
    };
    let mut it = line.split_whitespace();
    if it.next() != Some("PATTERN") {
        return Err(err("expected PATTERN line"));
    }
    let cost = it
        .next()
        .and_then(|t| t.strip_prefix("cost="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("bad cost"))?;
    let validated = it
        .next()
        .and_then(|t| t.strip_prefix("validated="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("bad validated"))?;
    let choice_str = it
        .next()
        .and_then(|t| t.strip_prefix("choice="))
        .ok_or_else(|| err("missing choice"))?;
    let choice = if choice_str == "-" {
        Vec::new()
    } else {
        choice_str
            .split(',')
            .map(str::parse)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| err("bad choice index"))?
    };
    Ok(AccessPattern {
        choice,
        cost,
        validated,
    })
}

/// FNV-1a (64-bit) over the serialized cache body. Not cryptographic —
/// it guards against truncation and accidental corruption, exactly the
/// failure modes of half-written files in an interrupted optimizer loop.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Prepends the versioned, checksummed header (`PAO-CACHE v2
/// fnv1a=<16 hex>`) to a serialized cache body.
pub(crate) fn seal(body: &str) -> String {
    format!("{MAGIC} fnv1a={:016x}\n{body}", fnv1a(body.as_bytes()))
}

/// Validates the header line (version and body checksum) of a persisted
/// cache and returns the body that follows it. Any mismatch — wrong
/// magic, old version, bad or missing checksum — is a [`LoadCacheError`];
/// callers treat that as cache-miss-and-rebuild, never a crash.
pub(crate) fn open(text: &str) -> Result<&str, LoadCacheError> {
    let (header, body) = text.split_once('\n').unwrap_or((text, ""));
    let err = |message: String| LoadCacheError { message, line: 1 };
    let rest = header.trim_end().strip_prefix(MAGIC).ok_or_else(|| {
        let shown: String = header.chars().take(40).collect();
        err(format!("expected `{MAGIC}` header, found `{shown}`"))
    })?;
    let sum = rest
        .trim()
        .strip_prefix("fnv1a=")
        .ok_or_else(|| err("header missing fnv1a= checksum".to_owned()))?;
    let expected =
        u64::from_str_radix(sum, 16).map_err(|_| err(format!("bad checksum `{sum}`")))?;
    let got = fnv1a(body.as_bytes());
    if got != expected {
        return Err(err(format!(
            "checksum mismatch: header fnv1a={expected:016x}, body fnv1a={got:016x} (truncated or corrupt cache)"
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::Point;
    use pao_tech::{LayerId, ViaId};

    fn sample_ap() -> AccessPoint {
        AccessPoint {
            pos: Point::new(-120, 4500),
            layer: LayerId(0),
            pref_type: CoordType::ShapeCenter,
            nonpref_type: CoordType::OnTrack,
            vias: vec![ViaId(3), ViaId(1)],
            planar: vec![PlanarDir::East, PlanarDir::South],
        }
    }

    #[test]
    fn ap_roundtrip() {
        let ap = sample_ap();
        let mut s = String::new();
        write_ap(&mut s, &ap);
        let back = parse_ap(s.trim_end(), 1).unwrap();
        assert_eq!(ap, back);
    }

    #[test]
    fn ap_roundtrip_empty_lists() {
        let mut ap = sample_ap();
        ap.vias.clear();
        ap.planar.clear();
        let mut s = String::new();
        write_ap(&mut s, &ap);
        assert_eq!(parse_ap(s.trim_end(), 1).unwrap(), ap);
    }

    #[test]
    fn pattern_roundtrip() {
        let p = AccessPattern {
            choice: vec![0, 2, 1],
            cost: -42,
            validated: true,
        };
        let mut s = String::new();
        write_pattern(&mut s, &p);
        assert_eq!(parse_pattern(s.trim_end(), 1).unwrap(), p);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        assert!(parse_ap("AP 1 2", 7).unwrap_err().line == 7);
        assert!(parse_ap("NOPE", 3).is_err());
        assert!(parse_pattern("PATTERN cost=x validated=true choice=-", 2).is_err());
    }

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal("BODY line 1\nBODY line 2\n");
        assert!(sealed.starts_with("PAO-CACHE v2 fnv1a="));
        assert_eq!(open(&sealed).unwrap(), "BODY line 1\nBODY line 2\n");
    }

    #[test]
    fn open_rejects_corruption_and_old_versions() {
        // Wrong magic / legacy version: version mismatch, not a panic.
        assert!(open("garbage").is_err());
        assert!(open("PAO-CACHE v1\nENTRY ...\n").is_err());
        assert!(open("").is_err());
        // Missing or malformed checksum.
        assert!(open("PAO-CACHE v2\nbody\n").is_err());
        assert!(open("PAO-CACHE v2 fnv1a=xyz\nbody\n").is_err());
        // Truncated body no longer matches the recorded checksum.
        let sealed = seal("line 1\nline 2\n");
        let truncated = &sealed[..sealed.len() - 3];
        let e = open(truncated).unwrap_err();
        assert!(e.message.contains("checksum mismatch"), "{e}");
        // A flipped body byte is caught too.
        let flipped = sealed.replace("line 2", "line 3");
        assert!(open(&flipped).is_err());
    }
}
