//! Persistence for the incremental-analysis cache and the phase-granular
//! checkpoint store.
//!
//! Placement optimization runs in many short tool invocations; persisting
//! the per-signature intra-cell analysis lets every invocation after the
//! first skip steps 1–2 entirely. The format is a plain line-oriented
//! text format (like LEF/DEF, greppable and diff-friendly), versioned by
//! a header.
//!
//! [`CheckpointStore`] (format v3) extends the same machinery to
//! *within-run* durability: completed apgen and pattern items are written
//! after each phase (atomic tmp+rename, see [`write_atomic`]), so a
//! deadline-cut, killed, or crashed run resumes via `--checkpoint DIR
//! --resume` without redoing finished work.

use crate::apgen::{AccessPoint, PlanarDir};
use crate::budget::PhaseFractions;
use crate::coord::CoordType;
use crate::pattern::AccessPattern;
use pao_geom::{Dbu, Orient, Point};
use pao_tech::Symbol;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Error produced while loading a persisted cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCacheError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for LoadCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache load error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for LoadCacheError {}

const MAGIC: &str = "PAO-CACHE v3";

fn coord_code(t: CoordType) -> u8 {
    t.cost() as u8
}

fn coord_from(c: u8) -> Option<CoordType> {
    Some(match c {
        0 => CoordType::OnTrack,
        1 => CoordType::HalfTrack,
        2 => CoordType::ShapeCenter,
        3 => CoordType::EnclosureBoundary,
        _ => return None,
    })
}

fn planar_code(d: PlanarDir) -> char {
    match d {
        PlanarDir::East => 'E',
        PlanarDir::West => 'W',
        PlanarDir::North => 'N',
        PlanarDir::South => 'S',
    }
}

fn planar_from(c: char) -> Option<PlanarDir> {
    Some(match c {
        'E' => PlanarDir::East,
        'W' => PlanarDir::West,
        'N' => PlanarDir::North,
        'S' => PlanarDir::South,
        _ => return None,
    })
}

/// Serializes one access point as a single line.
pub fn write_ap(out: &mut String, ap: &AccessPoint) {
    let vias: Vec<String> = ap.vias.iter().map(|v| v.0.to_string()).collect();
    let planar: String = ap.planar.iter().map(|&d| planar_code(d)).collect();
    let _ = writeln!(
        out,
        "AP {} {} {} {} {} vias={} planar={}",
        ap.pos.x,
        ap.pos.y,
        ap.layer.0,
        coord_code(ap.pref_type),
        coord_code(ap.nonpref_type),
        if vias.is_empty() {
            "-".to_owned()
        } else {
            vias.join(",")
        },
        if planar.is_empty() {
            "-".to_owned()
        } else {
            planar
        },
    );
}

/// Parses a line produced by [`write_ap`].
///
/// # Errors
///
/// Returns [`LoadCacheError`] with the offending line on malformed input.
pub fn parse_ap(line: &str, lineno: usize) -> Result<AccessPoint, LoadCacheError> {
    let err = |m: &str| LoadCacheError {
        message: m.to_owned(),
        line: lineno,
    };
    let mut it = line.split_whitespace();
    if it.next() != Some("AP") {
        return Err(err("expected AP line"));
    }
    let mut num = |name: &str| -> Result<i64, LoadCacheError> {
        it.next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(&format!("bad {name}")))
    };
    let x = num("x")?;
    let y = num("y")?;
    let layer = num("layer")? as u32;
    let pref = coord_from(num("pref")? as u8).ok_or_else(|| err("bad pref type"))?;
    let nonpref = coord_from(num("nonpref")? as u8).ok_or_else(|| err("bad nonpref type"))?;
    let vias_tok = it.next().ok_or_else(|| err("missing vias"))?;
    let vias_str = vias_tok
        .strip_prefix("vias=")
        .ok_or_else(|| err("missing vias="))?;
    let vias = if vias_str == "-" {
        Vec::new()
    } else {
        vias_str
            .split(',')
            .map(|v| v.parse().map(pao_tech::ViaId))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| err("bad via id"))?
    };
    let planar_tok = it.next().ok_or_else(|| err("missing planar"))?;
    let planar_str = planar_tok
        .strip_prefix("planar=")
        .ok_or_else(|| err("missing planar="))?;
    let planar = if planar_str == "-" {
        Vec::new()
    } else {
        planar_str
            .chars()
            .map(planar_from)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| err("bad planar code"))?
    };
    Ok(AccessPoint {
        pos: pao_geom::Point::new(x, y),
        layer: pao_tech::LayerId(layer),
        pref_type: pref,
        nonpref_type: nonpref,
        vias,
        planar,
    })
}

/// Serializes one access pattern as a single line.
pub fn write_pattern(out: &mut String, p: &AccessPattern) {
    let choice: Vec<String> = p.choice.iter().map(usize::to_string).collect();
    let _ = writeln!(
        out,
        "PATTERN cost={} validated={} choice={}",
        p.cost,
        p.validated,
        if choice.is_empty() {
            "-".to_owned()
        } else {
            choice.join(",")
        },
    );
}

/// Parses a line produced by [`write_pattern`].
///
/// # Errors
///
/// Returns [`LoadCacheError`] with the offending line on malformed input.
pub fn parse_pattern(line: &str, lineno: usize) -> Result<AccessPattern, LoadCacheError> {
    let err = |m: &str| LoadCacheError {
        message: m.to_owned(),
        line: lineno,
    };
    let mut it = line.split_whitespace();
    if it.next() != Some("PATTERN") {
        return Err(err("expected PATTERN line"));
    }
    let cost = it
        .next()
        .and_then(|t| t.strip_prefix("cost="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("bad cost"))?;
    let validated = it
        .next()
        .and_then(|t| t.strip_prefix("validated="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("bad validated"))?;
    let choice_str = it
        .next()
        .and_then(|t| t.strip_prefix("choice="))
        .ok_or_else(|| err("missing choice"))?;
    let choice = if choice_str == "-" {
        Vec::new()
    } else {
        choice_str
            .split(',')
            .map(str::parse)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| err("bad choice index"))?
    };
    Ok(AccessPattern {
        choice,
        cost,
        validated,
    })
}

/// FNV-1a (64-bit) over the serialized cache body. Not cryptographic —
/// it guards against truncation and accidental corruption, exactly the
/// failure modes of half-written files in an interrupted optimizer loop.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Prepends the versioned, checksummed header (`PAO-CACHE v3
/// fnv1a=<16 hex>`) to a serialized cache body.
pub(crate) fn seal(body: &str) -> String {
    format!("{MAGIC} fnv1a={:016x}\n{body}", fnv1a(body.as_bytes()))
}

/// Validates the header line (version and body checksum) of a persisted
/// cache and returns the body that follows it. Any mismatch — wrong
/// magic, old version, bad or missing checksum — is a [`LoadCacheError`];
/// callers treat that as cache-miss-and-rebuild, never a crash.
pub(crate) fn open(text: &str) -> Result<&str, LoadCacheError> {
    let (header, body) = text.split_once('\n').unwrap_or((text, ""));
    let err = |message: String| LoadCacheError { message, line: 1 };
    let rest = header.trim_end().strip_prefix(MAGIC).ok_or_else(|| {
        let shown: String = header.chars().take(40).collect();
        err(format!("expected `{MAGIC}` header, found `{shown}`"))
    })?;
    let sum = rest
        .trim()
        .strip_prefix("fnv1a=")
        .ok_or_else(|| err("header missing fnv1a= checksum".to_owned()))?;
    let expected =
        u64::from_str_radix(sum, 16).map_err(|_| err(format!("bad checksum `{sum}`")))?;
    let got = fnv1a(body.as_bytes());
    if got != expected {
        return Err(err(format!(
            "checksum mismatch: header fnv1a={expected:016x}, body fnv1a={got:016x} (truncated or corrupt cache)"
        )));
    }
    Ok(body)
}

/// Writes `text` to `path` atomically: the bytes go to a sibling `.tmp`
/// file which is then renamed over the target, so a reader (or a crash
/// mid-write) never observes a half-written file — the checkpoint either
/// has the previous complete state or the new one.
///
/// # Errors
///
/// Any underlying filesystem error.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Removes stale `*.tmp` orphans left in `dir` by a crash between
/// [`write_atomic`]'s write and rename. Run on every store open: the tmp
/// file is by definition incomplete (the rename never happened), so it is
/// garbage — but without this sweep it survives forever, and a daemon
/// cycling checkpoints accumulates one orphan per crash. Each removal
/// bumps the `checkpoint.tmp_reclaimed` counter; removal errors are
/// ignored (the next open retries).
fn sweep_stale_tmp(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reclaimed = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path.extension().is_some_and(|ext| ext == "tmp");
        if is_tmp && path.is_file() && std::fs::remove_file(&path).is_ok() {
            reclaimed += 1;
        }
    }
    if reclaimed > 0 {
        pao_obs::counter_add("checkpoint.tmp_reclaimed", reclaimed as u64);
    }
    reclaimed
}

/// FNV-1a fingerprint of a per-pin access point table, via its canonical
/// serialization. The pattern checkpoint stores this for each instance so
/// a resumed run only reuses pattern results whose *inputs* (the apgen
/// output) are byte-identical to what produced them.
#[must_use]
pub fn aps_fingerprint(pin_aps: &[Vec<AccessPoint>]) -> u64 {
    let mut s = String::new();
    for (pi, aps) in pin_aps.iter().enumerate() {
        let _ = writeln!(s, "PIN {} {}", pi, aps.len());
        for ap in aps {
            write_ap(&mut s, ap);
        }
    }
    fnv1a(s.as_bytes())
}

fn phases_str(phases: &[Dbu]) -> String {
    if phases.is_empty() {
        "-".to_owned()
    } else {
        phases
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_phases(s: &str) -> Option<Vec<Dbu>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(|t| t.parse().ok()).collect()
}

/// Checkpointed step-1 output for one unique instance: its signature
/// (master/orient/phases + representative location, which anchors the AP
/// frame) plus the per-pin access points and the instance's contribution
/// to the run counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApgenSnapshot {
    /// Cell master name (interned).
    pub master: Symbol,
    /// Placement orientation.
    pub orient: Orient,
    /// Track-phase signature.
    pub phases: Vec<Dbu>,
    /// The representative's placement when the snapshot was made (AP
    /// positions are in that die frame).
    pub rep_location: Point,
    /// Access points per master pin.
    pub pin_aps: Vec<Vec<AccessPoint>>,
    /// This instance's `total_aps` contribution.
    pub total: usize,
    /// This instance's `dirty_aps` contribution.
    pub dirty: usize,
    /// This instance's `pins_without_aps` contribution.
    pub without: usize,
    /// This instance's `off_track_aps` contribution.
    pub off_track: usize,
}

/// Checkpointed step-2 output for one unique instance. `aps_fnv` pins the
/// snapshot to the exact apgen output it was computed from (see
/// [`aps_fingerprint`]); a mismatch on resume — different design, config,
/// or a partially redone apgen — makes the snapshot a miss, never a wrong
/// answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSnapshot {
    /// Cell master name (interned).
    pub master: Symbol,
    /// Placement orientation.
    pub orient: Orient,
    /// Track-phase signature.
    pub phases: Vec<Dbu>,
    /// Fingerprint of the `pin_aps` the patterns were derived from.
    pub aps_fnv: u64,
    /// The analyzed pin ordering.
    pub pin_order: Vec<usize>,
    /// Generated access patterns over `pin_order`.
    pub patterns: Vec<AccessPattern>,
}

/// Phase-granular checkpoint store backing `--checkpoint DIR --resume`:
/// completed apgen/pattern items are persisted (atomically) after each
/// phase, keyed by unique-instance index, and restored on the next run
/// when their signatures still match. The directory also carries the
/// measured phase fractions of the last finished run (`history.ckpt`),
/// which seed the next run's [`BudgetAllocator`](crate::budget::BudgetAllocator).
///
/// All files use the sealed v3 format; a corrupt or legacy file on resume
/// degrades to an empty section (reported, never fatal).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    apgen: HashMap<usize, ApgenSnapshot>,
    pattern: HashMap<usize, PatternSnapshot>,
    fractions: Option<PhaseFractions>,
}

impl CheckpointStore {
    /// Starts a fresh checkpoint in `dir` (created if missing). Stale
    /// apgen/pattern checkpoints from earlier runs are removed — a
    /// non-resume run must never silently reuse them — but the fraction
    /// history survives (it seeds the budget allocator).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        sweep_stale_tmp(&dir);
        for name in ["apgen.ckpt", "pattern.ckpt"] {
            let p = dir.join(name);
            if p.exists() {
                std::fs::remove_file(&p)?;
            }
        }
        let fractions = load_history(&dir.join("history.ckpt"));
        Ok(CheckpointStore {
            dir,
            apgen: HashMap::new(),
            pattern: HashMap::new(),
            fractions,
        })
    }

    /// Resumes from the checkpoints in `dir`. Missing files are empty
    /// sections; corrupt or legacy-version files are *rejected* sections
    /// — their parse errors come back alongside the (empty-there) store
    /// so the caller can report them, and the run proceeds as if that
    /// phase had no checkpoint.
    ///
    /// # Errors
    ///
    /// Only on filesystem errors creating the directory; data problems
    /// are returned as [`LoadCacheError`]s, not failures.
    pub fn resume(
        dir: impl Into<PathBuf>,
    ) -> std::io::Result<(CheckpointStore, Vec<LoadCacheError>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        sweep_stale_tmp(&dir);
        let mut rejected = Vec::new();
        let mut apgen = HashMap::new();
        let mut pattern = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(dir.join("apgen.ckpt")) {
            match parse_apgen_checkpoint(&text) {
                Ok(map) => apgen = map,
                Err(e) => rejected.push(e),
            }
        }
        if let Ok(text) = std::fs::read_to_string(dir.join("pattern.ckpt")) {
            match parse_pattern_checkpoint(&text) {
                Ok(map) => pattern = map,
                Err(e) => rejected.push(e),
            }
        }
        let fractions = load_history(&dir.join("history.ckpt"));
        Ok((
            CheckpointStore {
                dir,
                apgen,
                pattern,
                fractions,
            },
            rejected,
        ))
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Restorable apgen snapshot for unique-instance index `idx`.
    #[must_use]
    pub fn apgen(&self, idx: usize) -> Option<&ApgenSnapshot> {
        self.apgen.get(&idx)
    }

    /// Restorable pattern snapshot for unique-instance index `idx`.
    #[must_use]
    pub fn pattern(&self, idx: usize) -> Option<&PatternSnapshot> {
        self.pattern.get(&idx)
    }

    /// Number of apgen snapshots currently held.
    #[must_use]
    pub fn apgen_len(&self) -> usize {
        self.apgen.len()
    }

    /// Number of pattern snapshots currently held.
    #[must_use]
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }

    /// Records (or replaces) the apgen snapshot for instance `idx`.
    pub fn put_apgen(&mut self, idx: usize, snap: ApgenSnapshot) {
        self.apgen.insert(idx, snap);
    }

    /// Records (or replaces) the pattern snapshot for instance `idx`.
    pub fn put_pattern(&mut self, idx: usize, snap: PatternSnapshot) {
        self.pattern.insert(idx, snap);
    }

    /// Persists the apgen section atomically (tmp+rename).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn save_apgen(&self) -> std::io::Result<()> {
        let mut body = String::new();
        let mut idxs: Vec<&usize> = self.apgen.keys().collect();
        idxs.sort();
        for &idx in idxs {
            let s = &self.apgen[&idx];
            let _ = writeln!(
                body,
                "INST {} master={} orient={} phases={} rep={},{} counts={},{},{},{}",
                idx,
                s.master,
                s.orient,
                phases_str(&s.phases),
                s.rep_location.x,
                s.rep_location.y,
                s.total,
                s.dirty,
                s.without,
                s.off_track,
            );
            for (pi, aps) in s.pin_aps.iter().enumerate() {
                let _ = writeln!(body, "PIN {} {}", pi, aps.len());
                for ap in aps {
                    write_ap(&mut body, ap);
                }
            }
            let _ = writeln!(body, "END");
        }
        write_atomic(&self.dir.join("apgen.ckpt"), &seal(&body))
    }

    /// Persists the pattern section atomically (tmp+rename).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn save_pattern(&self) -> std::io::Result<()> {
        let mut body = String::new();
        let mut idxs: Vec<&usize> = self.pattern.keys().collect();
        idxs.sort();
        for &idx in idxs {
            let s = &self.pattern[&idx];
            let _ = writeln!(
                body,
                "INST {} master={} orient={} phases={} aps={:016x}",
                idx,
                s.master,
                s.orient,
                phases_str(&s.phases),
                s.aps_fnv,
            );
            let order: Vec<String> = s.pin_order.iter().map(usize::to_string).collect();
            let _ = writeln!(
                body,
                "ORDER {}",
                if order.is_empty() {
                    "-".to_owned()
                } else {
                    order.join(",")
                },
            );
            for p in &s.patterns {
                write_pattern(&mut body, p);
            }
            let _ = writeln!(body, "END");
        }
        write_atomic(&self.dir.join("pattern.ckpt"), &seal(&body))
    }

    /// The phase fractions measured by the last finished run in this
    /// directory, if any.
    #[must_use]
    pub fn fractions(&self) -> Option<PhaseFractions> {
        self.fractions
    }

    /// Persists `fractions` as this directory's history (atomically) and
    /// remembers them in the store.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn save_fractions(&mut self, fractions: PhaseFractions) -> std::io::Result<()> {
        self.fractions = Some(fractions);
        let body = format!("{}\n", fractions.to_line());
        write_atomic(&self.dir.join("history.ckpt"), &seal(&body))
    }
}

/// Loads the fraction history, degrading to `None` on any problem (a
/// corrupt history only costs allocator accuracy, never correctness).
fn load_history(path: &Path) -> Option<PhaseFractions> {
    let text = std::fs::read_to_string(path).ok()?;
    let body = open(&text).ok()?;
    body.lines().find_map(PhaseFractions::parse_line)
}

/// Parsed `INST` header: the instance index plus its `key=value` pairs.
type InstHeader<'a> = (usize, Vec<(&'a str, &'a str)>);

/// Splits `rest` of an `INST` line into `(idx, key=value map iterator)`.
fn parse_inst_header(line: &str, lineno: usize) -> Result<InstHeader<'_>, LoadCacheError> {
    let err = |m: &str| LoadCacheError {
        message: m.to_owned(),
        line: lineno,
    };
    let rest = line
        .strip_prefix("INST ")
        .ok_or_else(|| err("expected INST"))?;
    let mut it = rest.split_whitespace();
    let idx: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err("bad INST index"))?;
    let kvs = it.filter_map(|tok| tok.split_once('=')).collect();
    Ok((idx, kvs))
}

fn parse_apgen_checkpoint(text: &str) -> Result<HashMap<usize, ApgenSnapshot>, LoadCacheError> {
    let body = open(text)?;
    let err = |m: &str, n: usize| LoadCacheError {
        message: m.to_owned(),
        line: n + 2,
    };
    let mut out = HashMap::new();
    let mut lines = body.lines().enumerate();
    while let Some((n, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (idx, kvs) = parse_inst_header(line, n + 2)?;
        let mut master = None;
        let mut orient = None;
        let mut phases = None;
        let mut rep = None;
        let mut counts = None;
        for (k, v) in kvs {
            match k {
                "master" => master = Some(Symbol::intern(v)),
                "orient" => {
                    orient = Some(v.parse::<Orient>().map_err(|e| err(&e.to_string(), n))?);
                }
                "phases" => phases = parse_phases(v),
                "rep" => {
                    let (x, y) = v.split_once(',').ok_or_else(|| err("bad rep", n))?;
                    rep = Some(Point::new(
                        x.parse().map_err(|_| err("bad rep x", n))?,
                        y.parse().map_err(|_| err("bad rep y", n))?,
                    ));
                }
                "counts" => {
                    let cs: Vec<usize> = v
                        .split(',')
                        .map(|t| t.parse().ok())
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| err("bad counts", n))?;
                    if cs.len() != 4 {
                        return Err(err("counts needs 4 fields", n));
                    }
                    counts = Some((cs[0], cs[1], cs[2], cs[3]));
                }
                _ => {}
            }
        }
        let master = master.ok_or_else(|| err("INST missing master", n))?;
        let orient = orient.ok_or_else(|| err("INST missing orient", n))?;
        let phases = phases.ok_or_else(|| err("INST missing phases", n))?;
        let rep_location = rep.ok_or_else(|| err("INST missing rep", n))?;
        let (total, dirty, without, off_track) =
            counts.ok_or_else(|| err("INST missing counts", n))?;
        let mut pin_aps: Vec<Vec<AccessPoint>> = Vec::new();
        loop {
            let (bn, bline) = lines.next().ok_or_else(|| err("unterminated INST", n))?;
            let bline = bline.trim();
            if bline == "END" {
                break;
            } else if let Some(rest) = bline.strip_prefix("PIN ") {
                let mut it = rest.split_whitespace();
                let pi: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad PIN index", bn))?;
                let count: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad PIN count", bn))?;
                while pin_aps.len() <= pi {
                    pin_aps.push(Vec::new());
                }
                for _ in 0..count {
                    let (an, ap_line) = lines.next().ok_or_else(|| err("missing AP line", bn))?;
                    pin_aps[pi].push(parse_ap(ap_line.trim(), an + 2)?);
                }
            } else {
                return Err(err("unexpected line in INST", bn));
            }
        }
        out.insert(
            idx,
            ApgenSnapshot {
                master,
                orient,
                phases,
                rep_location,
                pin_aps,
                total,
                dirty,
                without,
                off_track,
            },
        );
    }
    Ok(out)
}

fn parse_pattern_checkpoint(text: &str) -> Result<HashMap<usize, PatternSnapshot>, LoadCacheError> {
    let body = open(text)?;
    let err = |m: &str, n: usize| LoadCacheError {
        message: m.to_owned(),
        line: n + 2,
    };
    let mut out = HashMap::new();
    let mut lines = body.lines().enumerate();
    while let Some((n, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (idx, kvs) = parse_inst_header(line, n + 2)?;
        let mut master = None;
        let mut orient = None;
        let mut phases = None;
        let mut aps_fnv = None;
        for (k, v) in kvs {
            match k {
                "master" => master = Some(Symbol::intern(v)),
                "orient" => {
                    orient = Some(v.parse::<Orient>().map_err(|e| err(&e.to_string(), n))?);
                }
                "phases" => phases = parse_phases(v),
                "aps" => {
                    aps_fnv = Some(u64::from_str_radix(v, 16).map_err(|_| err("bad aps hash", n))?);
                }
                _ => {}
            }
        }
        let master = master.ok_or_else(|| err("INST missing master", n))?;
        let orient = orient.ok_or_else(|| err("INST missing orient", n))?;
        let phases = phases.ok_or_else(|| err("INST missing phases", n))?;
        let aps_fnv = aps_fnv.ok_or_else(|| err("INST missing aps hash", n))?;
        let mut pin_order = Vec::new();
        let mut patterns = Vec::new();
        loop {
            let (bn, bline) = lines.next().ok_or_else(|| err("unterminated INST", n))?;
            let bline = bline.trim();
            if bline == "END" {
                break;
            } else if let Some(rest) = bline.strip_prefix("ORDER ") {
                if rest != "-" {
                    pin_order = rest
                        .split(',')
                        .map(str::parse)
                        .collect::<Result<Vec<usize>, _>>()
                        .map_err(|_| err("bad ORDER", bn))?;
                }
            } else if bline.starts_with("PATTERN") {
                patterns.push(parse_pattern(bline, bn + 2)?);
            } else {
                return Err(err("unexpected line in INST", bn));
            }
        }
        out.insert(
            idx,
            PatternSnapshot {
                master,
                orient,
                phases,
                aps_fnv,
                pin_order,
                patterns,
            },
        );
    }
    Ok(out)
}

/// One recovered entry of the [`EcoJournal`]: a batch of moves that was
/// accepted (durably recorded) by a previous daemon incarnation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotone journal sequence number (1-based).
    pub seq: u64,
    /// The recorded move batch, in request order.
    pub moves: Vec<crate::service::EcoMove>,
}

/// Crash-safe write-ahead log for `eco_update` batches (the durability
/// half of the `pao serve` hardening contract, format `PAO-JOURNAL v3`).
///
/// Unlike the checkpoint files — whole-file seal + atomic rename — the
/// journal is *append-only*: each accepted ECO batch becomes one entry
/// written and fsynced **before** its re-analysis runs, so a daemon
/// killed at any instant can replay the journal on restart and land
/// bit-identical to a twin that never died. Every entry carries its own
/// FNV-1a checksum over its move lines:
///
/// ```text
/// PAO-JOURNAL v3
/// BEGIN seq=3 moves=2 fnv1a=00a1b2c3d4e5f607
/// M A 1200 3400 u17
/// M D -40 0 corner cell with spaces
/// COMMIT 3
/// REVOKE 3
/// ```
///
/// `M A x y inst` is an absolute move, `M D dx dy inst` a relative one
/// (the instance name is the final field and may contain spaces). A
/// `COMMIT` whose sequence matches closes the entry; a kill mid-append
/// leaves a torn tail that fails its checksum or lacks its `COMMIT` and
/// is discarded on replay — together with everything after it, because
/// entries only replay in order. `REVOKE seq` marks an entry that was
/// recorded but then *not* applied (its re-analysis degraded and the old
/// snapshot kept serving); replay skips revoked entries.
#[derive(Debug)]
pub struct EcoJournal {
    path: PathBuf,
    file: std::fs::File,
    next_seq: u64,
    entries: u64,
}

const JOURNAL_MAGIC: &str = "PAO-JOURNAL v3";

/// Serializes one move as an `M` line (instance name last, so names with
/// spaces survive the round trip).
fn write_move(out: &mut String, m: &crate::service::EcoMove) {
    use crate::service::EcoTarget;
    match m.target {
        EcoTarget::Abs(p) => {
            let _ = writeln!(out, "M A {} {} {}", p.x, p.y, m.inst);
        }
        EcoTarget::Delta(d) => {
            let _ = writeln!(out, "M D {} {} {}", d.x, d.y, m.inst);
        }
    }
}

/// Parses a line produced by [`write_move`].
fn parse_move(line: &str) -> Option<crate::service::EcoMove> {
    use crate::service::{EcoMove, EcoTarget};
    let mut it = line.splitn(3, ' ');
    if it.next() != Some("M") {
        return None;
    }
    let kind = it.next()?;
    let rest = it.next()?;
    // `x y inst…`: split the two coordinates off the front, keep the rest
    // verbatim as the instance name.
    let mut it = rest.splitn(2, ' ');
    let x: i64 = it.next()?.parse().ok()?;
    let tail = it.next()?;
    let mut it = tail.splitn(2, ' ');
    let y: i64 = it.next()?.parse().ok()?;
    let inst = it.next()?.to_owned();
    let p = Point::new(x, y);
    let target = match kind {
        "A" => EcoTarget::Abs(p),
        "D" => EcoTarget::Delta(p),
        _ => return None,
    };
    Some(EcoMove { inst, target })
}

impl EcoJournal {
    /// Starts a fresh journal at `path`, truncating whatever was there (a
    /// non-resume daemon start must never replay stale entries — same
    /// rule as [`CheckpointStore::create`]).
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<EcoJournal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::File::create(&path)?;
        {
            use std::io::Write as _;
            writeln!(file, "{JOURNAL_MAGIC}")?;
            file.sync_all()?;
        }
        Ok(EcoJournal {
            path,
            file,
            next_seq: 1,
            entries: 0,
        })
    }

    /// Reopens the journal at `path` and recovers its committed entries
    /// in order: revoked entries are dropped, and the first torn or
    /// corrupt record ends recovery (everything after it is discarded,
    /// reported through the returned [`LoadCacheError`] — order matters,
    /// so nothing past a bad record may replay). A missing file starts an
    /// empty journal.
    ///
    /// # Errors
    ///
    /// Only filesystem errors; data problems come back as the optional
    /// [`LoadCacheError`] alongside the recovered prefix.
    pub fn resume(
        path: impl Into<PathBuf>,
    ) -> std::io::Result<(EcoJournal, Vec<JournalEntry>, Option<LoadCacheError>)> {
        let path = path.into();
        if !path.exists() {
            let journal = EcoJournal::create(&path)?;
            return Ok((journal, Vec::new(), None));
        }
        let text = std::fs::read_to_string(&path)?;
        let (entries, truncated, warning) = parse_journal(&text);
        if truncated {
            // Drop the torn tail on disk too, so the next append extends a
            // well-formed file instead of burying garbage mid-journal.
            let mut body = format!("{JOURNAL_MAGIC}\n");
            for e in &entries {
                let mut moves = String::new();
                for m in &e.moves {
                    write_move(&mut moves, m);
                }
                body.push_str(&entry_text(e.seq, e.moves.len(), &moves));
            }
            std::fs::write(&path, &body)?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        let next_seq = entries.iter().map(|e| e.seq).max().unwrap_or(0) + 1;
        let journal = EcoJournal {
            path,
            file,
            next_seq,
            entries: entries.len() as u64,
        };
        Ok((journal, entries, warning))
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Committed (non-revoked at last count) entries written or recovered
    /// through this handle.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Durably records one accepted move batch *before* its analysis runs
    /// and returns the entry's sequence number. The entry is fsynced: when
    /// this returns `Ok`, a kill at any later instant leaves the batch
    /// replayable.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error — the caller must then reject the
    /// ECO (no durability, no apply).
    pub fn append(&mut self, moves: &[crate::service::EcoMove]) -> std::io::Result<u64> {
        use std::io::Write as _;
        let seq = self.next_seq;
        let mut body = String::new();
        for m in moves {
            write_move(&mut body, m);
        }
        let text = entry_text(seq, moves.len(), &body);
        self.file.write_all(text.as_bytes())?;
        self.file.sync_data()?;
        self.next_seq += 1;
        self.entries += 1;
        Ok(seq)
    }

    /// Marks entry `seq` as not-applied (its re-analysis degraded; the
    /// previous snapshot kept serving). Replay skips revoked entries.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error.
    pub fn revoke(&mut self, seq: u64) -> std::io::Result<()> {
        use std::io::Write as _;
        writeln!(self.file, "REVOKE {seq}")?;
        self.file.sync_data()?;
        self.entries = self.entries.saturating_sub(1);
        Ok(())
    }
}

/// One serialized journal entry (header + move lines + commit).
fn entry_text(seq: u64, moves: usize, body: &str) -> String {
    format!(
        "BEGIN seq={seq} moves={moves} fnv1a={:016x}\n{body}COMMIT {seq}\n",
        fnv1a(body.as_bytes())
    )
}

/// Recovers `(entries, tail_truncated, warning)` from journal text.
/// Entries after the first malformed record are discarded.
fn parse_journal(text: &str) -> (Vec<JournalEntry>, bool, Option<LoadCacheError>) {
    let mut entries: Vec<JournalEntry> = Vec::new();
    let bad = |line: usize, message: String| {
        (
            true,
            Some(LoadCacheError {
                message: format!("journal tail discarded: {message}"),
                line,
            }),
        )
    };
    let mut lines = text.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        let (t, w) = bad(1, "empty journal".to_owned());
        return (entries, t, w);
    };
    if header.trim() != JOURNAL_MAGIC {
        let (t, w) = bad(1, format!("expected `{JOURNAL_MAGIC}` header"));
        return (entries, t, w);
    }
    while let Some((n, line)) = lines.next() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(seq_str) = line.strip_prefix("REVOKE ") {
            match seq_str.trim().parse::<u64>() {
                Ok(seq) => entries.retain(|e| e.seq != seq),
                Err(_) => {
                    let (t, w) = bad(n + 1, "bad REVOKE sequence".to_owned());
                    return (entries, t, w);
                }
            }
            continue;
        }
        let Some(rest) = line.strip_prefix("BEGIN ") else {
            let (t, w) = bad(n + 1, format!("unexpected line `{line}`"));
            return (entries, t, w);
        };
        let mut seq = None;
        let mut count = None;
        let mut sum = None;
        for tok in rest.split_whitespace() {
            if let Some(v) = tok.strip_prefix("seq=") {
                seq = v.parse::<u64>().ok();
            } else if let Some(v) = tok.strip_prefix("moves=") {
                count = v.parse::<usize>().ok();
            } else if let Some(v) = tok.strip_prefix("fnv1a=") {
                sum = u64::from_str_radix(v, 16).ok();
            }
        }
        let (Some(seq), Some(count), Some(sum)) = (seq, count, sum) else {
            let (t, w) = bad(n + 1, "bad BEGIN header".to_owned());
            return (entries, t, w);
        };
        let mut body = String::new();
        let mut moves = Vec::with_capacity(count);
        for _ in 0..count {
            let Some((mn, mline)) = lines.next() else {
                let (t, w) = bad(n + 1, "entry truncated mid-moves".to_owned());
                return (entries, t, w);
            };
            let Some(m) = parse_move(mline.trim_end()) else {
                let (t, w) = bad(mn + 1, format!("bad move line `{mline}`"));
                return (entries, t, w);
            };
            body.push_str(mline.trim_end());
            body.push('\n');
            moves.push(m);
        }
        if fnv1a(body.as_bytes()) != sum {
            let (t, w) = bad(n + 1, format!("entry seq={seq} failed its checksum"));
            return (entries, t, w);
        }
        match lines.next() {
            Some((_, cline)) if cline.trim_end() == format!("COMMIT {seq}") => {}
            _ => {
                let (t, w) = bad(n + 1, format!("entry seq={seq} missing COMMIT"));
                return (entries, t, w);
            }
        }
        entries.push(JournalEntry { seq, moves });
    }
    (entries, false, None)
}

#[cfg(test)]
mod journal_tests {
    use super::*;
    use crate::service::{EcoMove, EcoTarget};

    fn mv(inst: &str, target: EcoTarget) -> EcoMove {
        EcoMove {
            inst: inst.to_owned(),
            target,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pao_journal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("eco.journal")
    }

    #[test]
    fn append_resume_roundtrip_preserves_order_and_revokes() {
        let path = tmp("roundtrip");
        let mut j = EcoJournal::create(&path).unwrap();
        let b1 = vec![mv("u1", EcoTarget::Abs(Point::new(100, 200)))];
        let b2 = vec![
            mv("u2", EcoTarget::Delta(Point::new(-40, 0))),
            mv("cell with spaces", EcoTarget::Abs(Point::new(0, -7))),
        ];
        let b3 = vec![mv("u3", EcoTarget::Delta(Point::new(5, 5)))];
        assert_eq!(j.append(&b1).unwrap(), 1);
        assert_eq!(j.append(&b2).unwrap(), 2);
        assert_eq!(j.append(&b3).unwrap(), 3);
        j.revoke(2).unwrap();
        assert_eq!(j.entries(), 2);
        drop(j);

        let (j2, entries, warn) = EcoJournal::resume(&path).unwrap();
        assert!(warn.is_none(), "{warn:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], JournalEntry { seq: 1, moves: b1 });
        assert_eq!(entries[1], JournalEntry { seq: 3, moves: b3 });
        assert_eq!(j2.entries(), 2);
        // New appends continue the sequence past the recovered maximum.
        let mut j2 = j2;
        assert_eq!(j2.append(&b2).unwrap(), 4);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = tmp("torn");
        let mut j = EcoJournal::create(&path).unwrap();
        let b1 = vec![mv("u1", EcoTarget::Abs(Point::new(1, 2)))];
        let b2 = vec![mv("u2", EcoTarget::Abs(Point::new(3, 4)))];
        j.append(&b1).unwrap();
        j.append(&b2).unwrap();
        drop(j);
        // Simulate a kill mid-append: chop bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let (_, entries, warn) = EcoJournal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1, "torn entry must not replay");
        assert_eq!(entries[0].moves, b1);
        assert!(warn.is_some(), "torn tail must be reported");
        // Resume rewrote a clean file: a second resume sees no warning.
        let (_, entries2, warn2) = EcoJournal::resume(&path).unwrap();
        assert_eq!(entries2, entries);
        assert!(warn2.is_none(), "{warn2:?}");
    }

    #[test]
    fn corrupt_entry_ends_recovery_before_later_entries() {
        let path = tmp("corrupt");
        let mut j = EcoJournal::create(&path).unwrap();
        j.append(&[mv("u1", EcoTarget::Abs(Point::new(1, 2)))])
            .unwrap();
        j.append(&[mv("u2", EcoTarget::Abs(Point::new(3, 4)))])
            .unwrap();
        j.append(&[mv("u3", EcoTarget::Abs(Point::new(5, 6)))])
            .unwrap();
        drop(j);
        // Flip a byte inside entry 2's move line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let pos = text.find("M A 3 4 u2").unwrap();
        text.replace_range(pos..pos + 10, "M A 3 9 u2");
        std::fs::write(&path, &text).unwrap();
        let (_, entries, warn) = EcoJournal::resume(&path).unwrap();
        // Entry 2 fails its checksum; entry 3 must NOT replay without it.
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, 1);
        assert!(warn.is_some());
    }

    #[test]
    fn missing_file_resumes_empty() {
        let path = tmp("missing");
        let (j, entries, warn) = EcoJournal::resume(&path).unwrap();
        assert!(entries.is_empty());
        assert!(warn.is_none());
        assert_eq!(j.entries(), 0);
        assert!(path.exists(), "resume must create the journal file");
    }

    #[test]
    fn random_byte_smashes_never_panic_or_misparse() {
        let path = tmp("fuzz");
        let mut j = EcoJournal::create(&path).unwrap();
        for i in 0..4 {
            j.append(&[mv(&format!("u{i}"), EcoTarget::Abs(Point::new(i, -i)))])
                .unwrap();
        }
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        pao_ptest::check("journal.byte_mutation", 200, |rng| {
            let mut bytes = text.clone().into_bytes();
            if rng.gen_bool(0.3) {
                bytes.truncate(rng.gen_range(0..bytes.len()));
            } else {
                for _ in 0..rng.gen_range(1..=3usize) {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] = rng.gen_range(0..=255u64) as u8;
                }
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            let (entries, _, _) = parse_journal(&mutated);
            // Recovered entries must be a prefix of the originals: a
            // mutation may shorten the journal, never change a move.
            let (reference, _, _) = parse_journal(&text);
            assert!(entries.len() <= reference.len());
            for (got, want) in entries.iter().zip(&reference) {
                assert_eq!(got, want, "mutation changed a recovered entry");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::Point;
    use pao_tech::{LayerId, ViaId};

    fn sample_ap() -> AccessPoint {
        AccessPoint {
            pos: Point::new(-120, 4500),
            layer: LayerId(0),
            pref_type: CoordType::ShapeCenter,
            nonpref_type: CoordType::OnTrack,
            vias: vec![ViaId(3), ViaId(1)],
            planar: vec![PlanarDir::East, PlanarDir::South],
        }
    }

    #[test]
    fn ap_roundtrip() {
        let ap = sample_ap();
        let mut s = String::new();
        write_ap(&mut s, &ap);
        let back = parse_ap(s.trim_end(), 1).unwrap();
        assert_eq!(ap, back);
    }

    #[test]
    fn ap_roundtrip_empty_lists() {
        let mut ap = sample_ap();
        ap.vias.clear();
        ap.planar.clear();
        let mut s = String::new();
        write_ap(&mut s, &ap);
        assert_eq!(parse_ap(s.trim_end(), 1).unwrap(), ap);
    }

    #[test]
    fn pattern_roundtrip() {
        let p = AccessPattern {
            choice: vec![0, 2, 1],
            cost: -42,
            validated: true,
        };
        let mut s = String::new();
        write_pattern(&mut s, &p);
        assert_eq!(parse_pattern(s.trim_end(), 1).unwrap(), p);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        assert!(parse_ap("AP 1 2", 7).unwrap_err().line == 7);
        assert!(parse_ap("NOPE", 3).is_err());
        assert!(parse_pattern("PATTERN cost=x validated=true choice=-", 2).is_err());
    }

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal("BODY line 1\nBODY line 2\n");
        assert!(sealed.starts_with("PAO-CACHE v3 fnv1a="));
        assert_eq!(open(&sealed).unwrap(), "BODY line 1\nBODY line 2\n");
    }

    #[test]
    fn open_rejects_corruption_and_old_versions() {
        // Wrong magic / legacy version: version mismatch, not a panic.
        assert!(open("garbage").is_err());
        assert!(open("PAO-CACHE v1\nENTRY ...\n").is_err());
        assert!(open("PAO-CACHE v2 fnv1a=0000000000000000\n").is_err());
        assert!(open("").is_err());
        // Missing or malformed checksum.
        assert!(open("PAO-CACHE v3\nbody\n").is_err());
        assert!(open("PAO-CACHE v3 fnv1a=xyz\nbody\n").is_err());
        // Truncated body no longer matches the recorded checksum.
        let sealed = seal("line 1\nline 2\n");
        let truncated = &sealed[..sealed.len() - 3];
        let e = open(truncated).unwrap_err();
        assert!(e.message.contains("checksum mismatch"), "{e}");
        // A flipped body byte is caught too.
        let flipped = sealed.replace("line 2", "line 3");
        assert!(open(&flipped).is_err());
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pao-persist-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_apgen_snapshot() -> ApgenSnapshot {
        ApgenSnapshot {
            master: "BUFX1".into(),
            orient: Orient::N,
            phases: vec![0, 140],
            rep_location: Point::new(1200, -400),
            pin_aps: vec![
                vec![sample_ap()],
                Vec::new(),
                vec![sample_ap(), sample_ap()],
            ],
            total: 3,
            dirty: 0,
            without: 1,
            off_track: 2,
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let dir = tmpdir("roundtrip");
        let mut store = CheckpointStore::create(&dir).unwrap();
        let apgen = sample_apgen_snapshot();
        store.put_apgen(7, apgen.clone());
        let pattern = PatternSnapshot {
            master: "BUFX1".into(),
            orient: Orient::FS,
            phases: Vec::new(),
            aps_fnv: aps_fingerprint(&apgen.pin_aps),
            pin_order: vec![2, 0],
            patterns: vec![AccessPattern {
                choice: vec![0, 1],
                cost: 5,
                validated: true,
            }],
        };
        store.put_pattern(7, pattern.clone());
        store.save_apgen().unwrap();
        store.save_pattern().unwrap();
        store
            .save_fractions(PhaseFractions([0.5, 0.2, 0.1, 0.1, 0.1]))
            .unwrap();

        let (back, rejected) = CheckpointStore::resume(&dir).unwrap();
        assert!(rejected.is_empty(), "{rejected:?}");
        assert_eq!(back.apgen(7), Some(&apgen));
        assert_eq!(back.pattern(7), Some(&pattern));
        assert_eq!(back.apgen(0), None);
        assert_eq!(back.apgen_len(), 1);
        let f = back.fractions().expect("history restored");
        assert!((f.0[0] - 0.5).abs() < 1e-3, "{f:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_clears_stale_checkpoints_but_keeps_history() {
        let dir = tmpdir("stale");
        let mut store = CheckpointStore::create(&dir).unwrap();
        store.put_apgen(0, sample_apgen_snapshot());
        store.save_apgen().unwrap();
        store.save_fractions(PhaseFractions::DEFAULT).unwrap();
        // A fresh (non-resume) run must not see the old snapshots…
        let fresh = CheckpointStore::create(&dir).unwrap();
        assert_eq!(fresh.apgen_len(), 0);
        assert!(!dir.join("apgen.ckpt").exists());
        // …but keeps the measured fractions for its allocator.
        assert!(fresh.fractions().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_reclaims_stale_tmp_orphans() {
        // A crash between write_atomic's write and rename leaves a
        // `*.tmp` orphan; both open paths must sweep it so a daemon
        // cycling checkpoints never accumulates garbage.
        let dir = tmpdir("tmp_orphans");
        // Seed a real (sealed) history file through the store API, then
        // fake the crash leftovers by hand.
        CheckpointStore::create(&dir)
            .unwrap()
            .save_fractions(PhaseFractions([0.5, 0.2, 0.1, 0.1, 0.1]))
            .unwrap();
        std::fs::write(dir.join("apgen.ckpt.tmp"), "half-written").unwrap();
        std::fs::write(dir.join("pattern.ckpt.tmp"), "also half").unwrap();
        let (store, rejected) = CheckpointStore::resume(&dir).unwrap();
        assert!(rejected.is_empty(), "{rejected:?}");
        assert!(!dir.join("apgen.ckpt.tmp").exists(), "orphan swept");
        assert!(!dir.join("pattern.ckpt.tmp").exists(), "orphan swept");
        assert!(store.fractions().is_some(), "real files survive the sweep");
        drop(store);

        std::fs::write(dir.join("history.ckpt.tmp"), "stale").unwrap();
        let fresh = CheckpointStore::create(&dir).unwrap();
        assert!(!dir.join("history.ckpt.tmp").exists(), "create sweeps too");
        assert!(fresh.fractions().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_empty_with_report() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("apgen.ckpt"), "PAO-CACHE v2 fnv1a=0\nINST\n").unwrap();
        std::fs::write(dir.join("pattern.ckpt"), seal("INST not-a-number\n")).unwrap();
        std::fs::write(dir.join("history.ckpt"), "garbage").unwrap();
        let (store, rejected) = CheckpointStore::resume(&dir).unwrap();
        assert_eq!(rejected.len(), 2, "{rejected:?}");
        assert_eq!(store.apgen_len(), 0);
        assert_eq!(store.pattern_len(), 0);
        assert!(store.fractions().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = tmpdir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.ckpt");
        write_atomic(&path, "first version, quite long\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        assert!(!dir.join("x.ckpt.tmp").exists(), "tmp file renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aps_fingerprint_distinguishes_tables() {
        let a = vec![vec![sample_ap()]];
        let mut moved = sample_ap();
        moved.pos.x += 10;
        let b = vec![vec![moved]];
        assert_eq!(aps_fingerprint(&a), aps_fingerprint(&a));
        assert_ne!(aps_fingerprint(&a), aps_fingerprint(&b));
        assert_ne!(aps_fingerprint(&a), aps_fingerprint(&[]));
    }
}
