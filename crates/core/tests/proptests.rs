//! Property-based tests for the pin access framework's invariants.

use pao_core::apgen::{generate_pin_access_points, AccessPoint, ApGenConfig};
use pao_core::coord::CoordType;
use pao_core::pattern::{generate_patterns, order_pins, PatternConfig};
use pao_core::unique::local_pin_owner;
use pao_design::{Design, TrackPattern};
use pao_drc::{DrcEngine, ShapeSet};
use pao_geom::{Dir, Point, Rect};
use pao_tech::rules::MinStepRule;
use pao_tech::{Layer, LayerId, Tech, ViaDef, ViaId};
use proptest::prelude::*;

fn tech() -> Tech {
    let mut t = Tech::new(1000);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    t.add_layer(m1);
    t.add_layer(Layer::cut("V1", 50, 120));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let mut via = ViaDef::new(
        "via1_0",
        LayerId(0),
        vec![Rect::new(-65, -30, 65, 30)],
        LayerId(1),
        vec![Rect::new(-25, -25, 25, 25)],
        LayerId(2),
        vec![Rect::new(-30, -65, 30, 65)],
    );
    via.is_default = true;
    t.add_via(via);
    t
}

fn design() -> Design {
    let mut d = Design::new("p", Rect::new(0, 0, 20_000, 20_000));
    d.tracks.push(TrackPattern::new(
        Dir::Horizontal,
        100,
        200,
        90,
        vec![LayerId(0)],
    ));
    d.tracks.push(TrackPattern::new(
        Dir::Vertical,
        100,
        200,
        90,
        vec![LayerId(2)],
    ));
    d
}

fn ap_at(x: i64, y: i64) -> AccessPoint {
    AccessPoint {
        pos: Point::new(x, y),
        layer: LayerId(0),
        pref_type: CoordType::OnTrack,
        nonpref_type: CoordType::OnTrack,
        vias: vec![ViaId(0)],
        planar: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every AP returned by Algorithm 1 lies on the pin and its primary
    /// via re-validates clean — the framework's core guarantee.
    #[test]
    fn generated_aps_are_on_pin_and_clean(
        x in 200i64..2000,
        y in 200i64..2000,
        w in 200i64..1500,
        h in 70i64..800,
    ) {
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(x, y, x + w, y + h);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        let aps = generate_pin_access_points(
            &t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &ApGenConfig::default(),
        );
        for ap in &aps {
            prop_assert!(pin.contains(ap.pos), "AP {} off pin {}", ap.pos, pin);
            let via = ap.primary_via().expect("via access");
            let v = engine.check_via_placement(t.via(via), ap.pos, local_pin_owner(0), &ctx);
            prop_assert!(v.is_empty(), "dirty AP {}: {v:?}", ap.pos);
        }
        // Determinism.
        let again = generate_pin_access_points(
            &t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &ApGenConfig::default(),
        );
        prop_assert_eq!(aps, again);
    }

    /// Pin ordering is a permutation of the pins with access points, and
    /// boundary pins are the extremes of the ordering key.
    #[test]
    fn ordering_is_a_permutation(coords in prop::collection::vec((0i64..5000, 0i64..5000), 1..8)) {
        let pins: Vec<Vec<AccessPoint>> = coords
            .iter()
            .map(|&(x, y)| vec![ap_at(x, y)])
            .collect();
        let order = order_pins(&pins, 0.3);
        prop_assert_eq!(order.len(), pins.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pins.len(), "permutation");
        // Keys are non-decreasing along the order.
        let key = |i: usize| coords[i].0 as f64 + 0.3 * coords[i].1 as f64;
        for w in order.windows(2) {
            prop_assert!(key(w[0]) <= key(w[1]) + 1e-9);
        }
    }

    /// Patterns index valid APs, and every validated pattern's choices are
    /// pairwise compatible when re-checked exhaustively.
    #[test]
    fn patterns_are_well_formed(
        xs in prop::collection::vec(0i64..20u8 as i64, 2..5),
        seed in 0u8..4,
    ) {
        let t = tech();
        let e = DrcEngine::new(&t);
        // Pins spaced 300 apart with 1–3 APs each on distinct tracks.
        let pins: Vec<Vec<AccessPoint>> = xs
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (0..=(n % 3))
                    .map(|k| ap_at(500 + 300 * i as i64, 100 + 200 * (k + i64::from(seed))))
                    .collect()
            })
            .collect();
        let (order, pats) = generate_patterns(&t, &e, &pins, &PatternConfig::default());
        prop_assert_eq!(order.len(), pins.len());
        prop_assert!(!pats.is_empty());
        prop_assert!(pats.len() <= 3);
        for pat in &pats {
            prop_assert_eq!(pat.choice.len(), order.len());
            for (oi, &api) in pat.choice.iter().enumerate() {
                prop_assert!(api < pins[order[oi]].len(), "AP index in range");
            }
            if pat.validated {
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        let a = &pins[order[i]][pat.choice[i]];
                        let b = &pins[order[j]][pat.choice[j]];
                        prop_assert!(
                            pao_core::pattern::aps_compatible(
                                &t, &e, a, Point::ORIGIN, b, Point::ORIGIN
                            ),
                            "validated pattern has conflicting pair"
                        );
                    }
                }
            }
        }
    }

    /// Shrinking the coordinate-type sets never increases the AP count.
    #[test]
    fn fewer_coord_types_fewer_aps(y0 in 150i64..1800) {
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(300, y0, 1500, y0 + 150);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        let full = ApGenConfig { k: usize::MAX, ..ApGenConfig::default() };
        let restricted = ApGenConfig {
            k: usize::MAX,
            pref_types: vec![CoordType::OnTrack],
            nonpref_types: vec![CoordType::OnTrack],
            ..ApGenConfig::default()
        };
        let all = generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &full);
        let few =
            generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &restricted);
        prop_assert!(few.len() <= all.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Persisted access points round-trip exactly.
    #[test]
    fn persisted_ap_roundtrip(
        x in -1_000_000i64..1_000_000,
        y in -1_000_000i64..1_000_000,
        layer in 0u32..16,
        pref in 0u8..4,
        nonpref in 0u8..3,
        vias in prop::collection::vec(0u32..32, 0..4),
        planar_mask in 0u8..16,
    ) {
        use pao_core::persist;
        use pao_core::apgen::PlanarDir;
        let coord = |c: u8| match c {
            0 => CoordType::OnTrack,
            1 => CoordType::HalfTrack,
            2 => CoordType::ShapeCenter,
            _ => CoordType::EnclosureBoundary,
        };
        let planar: Vec<PlanarDir> = PlanarDir::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| planar_mask & (1 << i) != 0)
            .map(|(_, d)| d)
            .collect();
        let ap = AccessPoint {
            pos: Point::new(x, y),
            layer: LayerId(layer),
            pref_type: coord(pref),
            nonpref_type: coord(nonpref),
            vias: vias.into_iter().map(ViaId).collect(),
            planar,
        };
        let mut s = String::new();
        persist::write_ap(&mut s, &ap);
        let back = persist::parse_ap(s.trim_end(), 1).expect("parses");
        prop_assert_eq!(ap, back);
    }
}
