//! Property-based tests for the pin access framework's invariants.

use pao_core::apgen::{generate_pin_access_points, AccessPoint, ApGenConfig};
use pao_core::coord::CoordType;
use pao_core::pattern::{generate_patterns, order_pins, PatternConfig};
use pao_core::unique::local_pin_owner;
use pao_design::{Design, TrackPattern};
use pao_drc::{DrcEngine, ShapeSet};
use pao_geom::{Dir, Point, Rect};
use pao_ptest::check;
use pao_tech::rules::MinStepRule;
use pao_tech::{Layer, LayerId, Tech, ViaDef, ViaId};

fn tech() -> Tech {
    let mut t = Tech::new(1000);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    t.add_layer(m1);
    t.add_layer(Layer::cut("V1", 50, 120));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let mut via = ViaDef::new(
        "via1_0",
        LayerId(0),
        vec![Rect::new(-65, -30, 65, 30)],
        LayerId(1),
        vec![Rect::new(-25, -25, 25, 25)],
        LayerId(2),
        vec![Rect::new(-30, -65, 30, 65)],
    );
    via.is_default = true;
    t.add_via(via);
    t
}

fn design() -> Design {
    let mut d = Design::new("p", Rect::new(0, 0, 20_000, 20_000));
    d.tracks.push(TrackPattern::new(
        Dir::Horizontal,
        100,
        200,
        90,
        vec![LayerId(0)],
    ));
    d.tracks.push(TrackPattern::new(
        Dir::Vertical,
        100,
        200,
        90,
        vec![LayerId(2)],
    ));
    d
}

fn ap_at(x: i64, y: i64) -> AccessPoint {
    AccessPoint {
        pos: Point::new(x, y),
        layer: LayerId(0),
        pref_type: CoordType::OnTrack,
        nonpref_type: CoordType::OnTrack,
        vias: vec![ViaId(0)],
        planar: vec![],
    }
}

/// Every AP returned by Algorithm 1 lies on the pin and its primary
/// via re-validates clean — the framework's core guarantee.
#[test]
fn generated_aps_are_on_pin_and_clean() {
    check("generated_aps_are_on_pin_and_clean", 48, |rng| {
        let x = rng.gen_range(200i64..2000);
        let y = rng.gen_range(200i64..2000);
        let w = rng.gen_range(200i64..1500);
        let h = rng.gen_range(70i64..800);
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(x, y, x + w, y + h);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        let aps = generate_pin_access_points(
            &t,
            &d,
            &engine,
            &ctx,
            0,
            &[(LayerId(0), pin)],
            &ApGenConfig::default(),
        );
        for ap in &aps {
            assert!(pin.contains(ap.pos), "AP {} off pin {}", ap.pos, pin);
            let via = ap.primary_via().expect("via access");
            let v = engine.check_via_placement(t.via(via), ap.pos, local_pin_owner(0), &ctx);
            assert!(v.is_empty(), "dirty AP {}: {v:?}", ap.pos);
        }
        // Determinism.
        let again = generate_pin_access_points(
            &t,
            &d,
            &engine,
            &ctx,
            0,
            &[(LayerId(0), pin)],
            &ApGenConfig::default(),
        );
        assert_eq!(aps, again);
    });
}

/// Pin ordering is a permutation of the pins with access points, and
/// boundary pins are the extremes of the ordering key.
#[test]
fn ordering_is_a_permutation() {
    check("ordering_is_a_permutation", 128, |rng| {
        let n = rng.gen_range(1usize..8);
        let coords: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.gen_range(0i64..5000), rng.gen_range(0i64..5000)))
            .collect();
        let pins: Vec<Vec<AccessPoint>> = coords.iter().map(|&(x, y)| vec![ap_at(x, y)]).collect();
        let order = order_pins(&pins, 0.3);
        assert_eq!(order.len(), pins.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pins.len(), "permutation");
        // Keys are non-decreasing along the order.
        let key = |i: usize| coords[i].0 as f64 + 0.3 * coords[i].1 as f64;
        for w in order.windows(2) {
            assert!(key(w[0]) <= key(w[1]) + 1e-9);
        }
    });
}

/// Patterns index valid APs, and every validated pattern's choices are
/// pairwise compatible when re-checked exhaustively.
#[test]
fn patterns_are_well_formed() {
    check("patterns_are_well_formed", 48, |rng| {
        let t = tech();
        let e = DrcEngine::new(&t);
        let n = rng.gen_range(2usize..5);
        let xs: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..20)).collect();
        let seed = rng.gen_range(0u8..4);
        // Pins spaced 300 apart with 1–3 APs each on distinct tracks.
        let pins: Vec<Vec<AccessPoint>> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                (0..=(x % 3))
                    .map(|k| ap_at(500 + 300 * i as i64, 100 + 200 * (k + i64::from(seed))))
                    .collect()
            })
            .collect();
        let (order, pats) = generate_patterns(&t, &e, &pins, &PatternConfig::default());
        assert_eq!(order.len(), pins.len());
        assert!(!pats.is_empty());
        assert!(pats.len() <= 3);
        for pat in &pats {
            assert_eq!(pat.choice.len(), order.len());
            for (oi, &api) in pat.choice.iter().enumerate() {
                assert!(api < pins[order[oi]].len(), "AP index in range");
            }
            if pat.validated {
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        let a = &pins[order[i]][pat.choice[i]];
                        let b = &pins[order[j]][pat.choice[j]];
                        assert!(
                            pao_core::pattern::aps_compatible(
                                &t,
                                &e,
                                a,
                                Point::ORIGIN,
                                b,
                                Point::ORIGIN
                            ),
                            "validated pattern has conflicting pair"
                        );
                    }
                }
            }
        }
    });
}

/// Shrinking the coordinate-type sets never increases the AP count.
#[test]
fn fewer_coord_types_fewer_aps() {
    check("fewer_coord_types_fewer_aps", 48, |rng| {
        let y0 = rng.gen_range(150i64..1800);
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(300, y0, 1500, y0 + 150);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        let full = ApGenConfig {
            k: usize::MAX,
            ..ApGenConfig::default()
        };
        let restricted = ApGenConfig {
            k: usize::MAX,
            pref_types: vec![CoordType::OnTrack],
            nonpref_types: vec![CoordType::OnTrack],
            ..ApGenConfig::default()
        };
        let all = generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &full);
        let few =
            generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &restricted);
        assert!(few.len() <= all.len());
    });
}

/// A random multi-height placement: rows of abutting single-height
/// cells with occasional double-height cells spanning two rows, pins
/// hugging the cell edges so cluster selection has real boundary edges
/// to probe. Every pin is connected, so the failed-pin audit covers the
/// whole design.
#[allow(clippy::needless_range_loop)]
fn gen_world(rng: &mut pao_ptest::Rng) -> (Tech, Design) {
    use pao_design::{Component, Net, NetPin};
    use pao_geom::Orient;
    use pao_tech::{Macro, Pin, PinDir, Port};
    let mut t = tech();
    let edge_cell = |name: &str, h: i64| {
        let mut cell = Macro::new(name, 1200, h);
        cell.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(
                LayerId(0),
                vec![Rect::new(35, 100, 185, h - 500)],
            )],
        ));
        cell.pins.push(Pin::new(
            "Y",
            PinDir::Output,
            vec![Port::rects(
                LayerId(0),
                vec![Rect::new(1015, 100, 1165, h - 500)],
            )],
        ));
        cell
    };
    t.add_macro(edge_cell("SH", 1400));
    t.add_macro(edge_cell("DH", 2800));
    let rows = rng.gen_range(2usize..4);
    let cols = rng.gen_range(3usize..7);
    let mut d = Design::new("rand", Rect::new(0, 0, 40_000, 40_000));
    d.tracks.push(TrackPattern::new(
        Dir::Horizontal,
        100,
        200,
        90,
        vec![LayerId(0)],
    ));
    d.tracks.push(TrackPattern::new(
        Dir::Vertical,
        100,
        200,
        90,
        vec![LayerId(2)],
    ));
    let mut occupied = vec![vec![false; cols]; rows];
    let mut placed = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if occupied[r][c] || rng.gen_bool(0.2) {
                continue; // leave a gap — clusters split here
            }
            let double = r + 1 < rows && !occupied[r + 1][c] && rng.gen_bool(0.25);
            let master = if double { "DH" } else { "SH" };
            let at = Point::new(200 + 1200 * c as i64, 1400 * r as i64);
            let name = format!("u{r}_{c}");
            placed.push(d.add_component(Component::new(name, master, at, Orient::N)));
            occupied[r][c] = true;
            if double {
                occupied[r + 1][c] = true;
            }
        }
    }
    for (i, &comp) in placed.iter().enumerate() {
        let mut net = Net::new(format!("n{i}"));
        net.pins.push(NetPin::Comp {
            comp,
            pin: "A".into(),
        });
        net.pins.push(NetPin::Comp {
            comp,
            pin: "Y".into(),
        });
        d.add_net(net);
    }
    (t, d)
}

/// The cluster-selection fast path is output-invariant: memoization,
/// the intra-group wavefront split and the thread count change wall
/// clock and probe counts only, never a selection. Also pins down the
/// telemetry contract (memo lookups cover every edge; counters are
/// identical across thread counts and split modes) and cross-checks the
/// audit's hint fast path against the public whole-design probe.
#[test]
fn selection_identical_across_memo_split_and_threads() {
    use pao_core::{PaoConfig, PinAccessOracle};
    let mut total_edges = 0u64;
    check(
        "selection_identical_across_memo_split_and_threads",
        10,
        |rng| {
            let (t, d) = gen_world(rng);
            let run = |threads: usize, memo: bool, split: usize| {
                let mut cfg = PaoConfig {
                    threads,
                    ..PaoConfig::default()
                };
                cfg.select.memo = memo;
                cfg.select.split_min_clusters = split;
                PinAccessOracle::with_config(cfg).analyze(&t, &d)
            };
            let base = run(1, true, 16);
            let split4 = run(4, true, 1); // forced wavefront split
            let nomemo = run(1, false, 16);
            let nomemo4 = run(4, false, 1);
            for v in [&split4, &nomemo, &nomemo4] {
                assert_eq!(v.selection, base.selection, "selection diverged");
                assert_eq!(v.overrides, base.overrides, "overrides diverged");
                assert!(v.stats.counters_eq(&base.stats), "counters diverged");
            }
            // Per-cluster memo scope makes every counter except `subranges`
            // thread- and split-invariant.
            let bt = base.stats.select_telemetry;
            let st = split4.stats.select_telemetry;
            assert_eq!(
                (bt.edges, bt.probes, bt.cache_hits, bt.cache_misses),
                (st.edges, st.probes, st.cache_hits, st.cache_misses),
            );
            assert_eq!(bt.edges_pruned, st.edges_pruned);
            assert_eq!(
                bt.cache_hits + bt.cache_misses,
                bt.edges,
                "memo covers every edge"
            );
            // Memo off: same edges and pruning, zero cache traffic, at
            // least as many probes.
            let nt = nomemo.stats.select_telemetry;
            assert_eq!((nt.cache_hits, nt.cache_misses), (0, 0));
            assert_eq!(nt.edges, bt.edges);
            assert_eq!(nt.edges_pruned, bt.edges_pruned);
            assert!(nt.probes >= bt.probes, "memo increased probe count");
            // Audit-hint cross-check: the hinted audit inside analyze must
            // agree with the public full-probe count.
            let (total, failed) = pao_core::oracle::count_failed_pins(&t, &d, &base);
            assert_eq!(total, base.stats.total_pins);
            assert_eq!(failed, base.stats.failed_pins, "hinted audit diverged");
            total_edges += bt.edges;
        },
    );
    assert!(
        total_edges > 0,
        "no run exercised a boundary edge — vacuous fixture"
    );
}

/// Persisted access points round-trip exactly.
#[test]
fn persisted_ap_roundtrip() {
    check("persisted_ap_roundtrip", 128, |rng| {
        use pao_core::apgen::PlanarDir;
        use pao_core::persist;
        let coord = |c: u8| match c {
            0 => CoordType::OnTrack,
            1 => CoordType::HalfTrack,
            2 => CoordType::ShapeCenter,
            _ => CoordType::EnclosureBoundary,
        };
        let planar_mask = rng.gen_range(0u8..16);
        let planar: Vec<PlanarDir> = PlanarDir::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| planar_mask & (1 << i) != 0)
            .map(|(_, d)| d)
            .collect();
        let n_vias = rng.gen_range(0usize..4);
        let ap = AccessPoint {
            pos: Point::new(
                rng.gen_range(-1_000_000i64..1_000_000),
                rng.gen_range(-1_000_000i64..1_000_000),
            ),
            layer: LayerId(rng.gen_range(0u32..16)),
            pref_type: coord(rng.gen_range(0u8..4)),
            nonpref_type: coord(rng.gen_range(0u8..3)),
            vias: (0..n_vias)
                .map(|_| ViaId(rng.gen_range(0u32..32)))
                .collect(),
            planar,
        };
        let mut s = String::new();
        persist::write_ap(&mut s, &ap);
        let back = persist::parse_ap(s.trim_end(), 1).expect("parses");
        assert_eq!(ap, back);
    });
}
