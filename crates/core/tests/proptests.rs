//! Property-based tests for the pin access framework's invariants.

use pao_core::apgen::{generate_pin_access_points, AccessPoint, ApGenConfig};
use pao_core::coord::CoordType;
use pao_core::pattern::{generate_patterns, order_pins, PatternConfig};
use pao_core::unique::local_pin_owner;
use pao_design::{Design, TrackPattern};
use pao_drc::{DrcEngine, ShapeSet};
use pao_geom::{Dir, Point, Rect};
use pao_ptest::check;
use pao_tech::rules::MinStepRule;
use pao_tech::{Layer, LayerId, Tech, ViaDef, ViaId};

fn tech() -> Tech {
    let mut t = Tech::new(1000);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    t.add_layer(m1);
    t.add_layer(Layer::cut("V1", 50, 120));
    t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let mut via = ViaDef::new(
        "via1_0",
        LayerId(0),
        vec![Rect::new(-65, -30, 65, 30)],
        LayerId(1),
        vec![Rect::new(-25, -25, 25, 25)],
        LayerId(2),
        vec![Rect::new(-30, -65, 30, 65)],
    );
    via.is_default = true;
    t.add_via(via);
    t
}

fn design() -> Design {
    let mut d = Design::new("p", Rect::new(0, 0, 20_000, 20_000));
    d.tracks.push(TrackPattern::new(
        Dir::Horizontal,
        100,
        200,
        90,
        vec![LayerId(0)],
    ));
    d.tracks.push(TrackPattern::new(
        Dir::Vertical,
        100,
        200,
        90,
        vec![LayerId(2)],
    ));
    d
}

fn ap_at(x: i64, y: i64) -> AccessPoint {
    AccessPoint {
        pos: Point::new(x, y),
        layer: LayerId(0),
        pref_type: CoordType::OnTrack,
        nonpref_type: CoordType::OnTrack,
        vias: vec![ViaId(0)],
        planar: vec![],
    }
}

/// Every AP returned by Algorithm 1 lies on the pin and its primary
/// via re-validates clean — the framework's core guarantee.
#[test]
fn generated_aps_are_on_pin_and_clean() {
    check("generated_aps_are_on_pin_and_clean", 48, |rng| {
        let x = rng.gen_range(200i64..2000);
        let y = rng.gen_range(200i64..2000);
        let w = rng.gen_range(200i64..1500);
        let h = rng.gen_range(70i64..800);
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(x, y, x + w, y + h);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        let aps = generate_pin_access_points(
            &t,
            &d,
            &engine,
            &ctx,
            0,
            &[(LayerId(0), pin)],
            &ApGenConfig::default(),
        );
        for ap in &aps {
            assert!(pin.contains(ap.pos), "AP {} off pin {}", ap.pos, pin);
            let via = ap.primary_via().expect("via access");
            let v = engine.check_via_placement(t.via(via), ap.pos, local_pin_owner(0), &ctx);
            assert!(v.is_empty(), "dirty AP {}: {v:?}", ap.pos);
        }
        // Determinism.
        let again = generate_pin_access_points(
            &t,
            &d,
            &engine,
            &ctx,
            0,
            &[(LayerId(0), pin)],
            &ApGenConfig::default(),
        );
        assert_eq!(aps, again);
    });
}

/// Pin ordering is a permutation of the pins with access points, and
/// boundary pins are the extremes of the ordering key.
#[test]
fn ordering_is_a_permutation() {
    check("ordering_is_a_permutation", 128, |rng| {
        let n = rng.gen_range(1usize..8);
        let coords: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.gen_range(0i64..5000), rng.gen_range(0i64..5000)))
            .collect();
        let pins: Vec<Vec<AccessPoint>> = coords.iter().map(|&(x, y)| vec![ap_at(x, y)]).collect();
        let order = order_pins(&pins, 0.3);
        assert_eq!(order.len(), pins.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pins.len(), "permutation");
        // Keys are non-decreasing along the order.
        let key = |i: usize| coords[i].0 as f64 + 0.3 * coords[i].1 as f64;
        for w in order.windows(2) {
            assert!(key(w[0]) <= key(w[1]) + 1e-9);
        }
    });
}

/// Patterns index valid APs, and every validated pattern's choices are
/// pairwise compatible when re-checked exhaustively.
#[test]
fn patterns_are_well_formed() {
    check("patterns_are_well_formed", 48, |rng| {
        let t = tech();
        let e = DrcEngine::new(&t);
        let n = rng.gen_range(2usize..5);
        let xs: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..20)).collect();
        let seed = rng.gen_range(0u8..4);
        // Pins spaced 300 apart with 1–3 APs each on distinct tracks.
        let pins: Vec<Vec<AccessPoint>> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                (0..=(x % 3))
                    .map(|k| ap_at(500 + 300 * i as i64, 100 + 200 * (k + i64::from(seed))))
                    .collect()
            })
            .collect();
        let (order, pats) = generate_patterns(&t, &e, &pins, &PatternConfig::default());
        assert_eq!(order.len(), pins.len());
        assert!(!pats.is_empty());
        assert!(pats.len() <= 3);
        for pat in &pats {
            assert_eq!(pat.choice.len(), order.len());
            for (oi, &api) in pat.choice.iter().enumerate() {
                assert!(api < pins[order[oi]].len(), "AP index in range");
            }
            if pat.validated {
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        let a = &pins[order[i]][pat.choice[i]];
                        let b = &pins[order[j]][pat.choice[j]];
                        assert!(
                            pao_core::pattern::aps_compatible(
                                &t,
                                &e,
                                a,
                                Point::ORIGIN,
                                b,
                                Point::ORIGIN
                            ),
                            "validated pattern has conflicting pair"
                        );
                    }
                }
            }
        }
    });
}

/// Shrinking the coordinate-type sets never increases the AP count.
#[test]
fn fewer_coord_types_fewer_aps() {
    check("fewer_coord_types_fewer_aps", 48, |rng| {
        let y0 = rng.gen_range(150i64..1800);
        let t = tech();
        let d = design();
        let engine = DrcEngine::new(&t);
        let pin = Rect::new(300, y0, 1500, y0 + 150);
        let mut ctx = ShapeSet::new(t.layers().len());
        ctx.insert(LayerId(0), pin, local_pin_owner(0));
        ctx.rebuild();
        let full = ApGenConfig {
            k: usize::MAX,
            ..ApGenConfig::default()
        };
        let restricted = ApGenConfig {
            k: usize::MAX,
            pref_types: vec![CoordType::OnTrack],
            nonpref_types: vec![CoordType::OnTrack],
            ..ApGenConfig::default()
        };
        let all = generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &full);
        let few =
            generate_pin_access_points(&t, &d, &engine, &ctx, 0, &[(LayerId(0), pin)], &restricted);
        assert!(few.len() <= all.len());
    });
}

/// Persisted access points round-trip exactly.
#[test]
fn persisted_ap_roundtrip() {
    check("persisted_ap_roundtrip", 128, |rng| {
        use pao_core::apgen::PlanarDir;
        use pao_core::persist;
        let coord = |c: u8| match c {
            0 => CoordType::OnTrack,
            1 => CoordType::HalfTrack,
            2 => CoordType::ShapeCenter,
            _ => CoordType::EnclosureBoundary,
        };
        let planar_mask = rng.gen_range(0u8..16);
        let planar: Vec<PlanarDir> = PlanarDir::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| planar_mask & (1 << i) != 0)
            .map(|(_, d)| d)
            .collect();
        let n_vias = rng.gen_range(0usize..4);
        let ap = AccessPoint {
            pos: Point::new(
                rng.gen_range(-1_000_000i64..1_000_000),
                rng.gen_range(-1_000_000i64..1_000_000),
            ),
            layer: LayerId(rng.gen_range(0u32..16)),
            pref_type: coord(rng.gen_range(0u8..4)),
            nonpref_type: coord(rng.gen_range(0u8..3)),
            vias: (0..n_vias)
                .map(|_| ViaId(rng.gen_range(0u32..32)))
                .collect(),
            planar,
        };
        let mut s = String::new();
        persist::write_ap(&mut s, &ap);
        let back = persist::parse_ap(s.trim_end(), 1).expect("parses");
        assert_eq!(ap, back);
    });
}
