//! End-to-end deadline/watchdog/checkpoint harness: the *anytime* contract.
//!
//! Asserts that the oracle under a [`RunBudget`]
//!
//! 1. never aborts — an exhausted budget still yields a usable partial
//!    result with per-phase skip tallies,
//! 2. resumes from a phase-granular checkpoint bit-identically to an
//!    uninterrupted run (at 1 and 4 threads), and
//! 3. detects an injected worker stall via the watchdog and converts it
//!    into a degraded (never hung, never aborted) run.
//!
//! Everything lives in one `#[test]` because the stall-injection plan is
//! process-global state — concurrent tests in the same binary would race
//! on it.

use pao_core::{
    fault, CancelReason, CheckpointStore, PaoConfig, PaoResult, PinAccessOracle, RunBudget,
    Watchdog,
};
use pao_design::CompId;
use pao_tech::Tech;
use pao_testgen::{generate, SuiteCase};
use std::time::Duration;

fn oracle(threads: usize) -> PinAccessOracle {
    PinAccessOracle::with_config(PaoConfig {
        threads,
        ..PaoConfig::default()
    })
}

/// Every connected pin's selected access position — the output the
/// downstream router consumes, used here as the identity fingerprint.
fn access_fingerprint(
    tech: &Tech,
    design: &pao_design::Design,
    result: &PaoResult,
) -> Vec<Option<pao_geom::Point>> {
    let mut out = Vec::new();
    for (ci, comp) in design.components().iter().enumerate() {
        let Some(master) = comp.master_in(tech) else {
            continue;
        };
        for pi in 0..master.pins.len() {
            out.push(
                result
                    .access_point(design, CompId(ci as u32), pi)
                    .map(|ap| ap.pos),
            );
        }
    }
    out
}

/// A scratch checkpoint directory under the OS temp dir, cleaned first.
fn ckpt_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pao-deadline-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn deadline_watchdog_and_resume_contract() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    fault::disarm();
    let clean = oracle(1).analyze(&tech, &design);
    assert!(clean.stats.quarantined.is_empty(), "clean run is healthy");
    assert!(!clean.stats.deadline.is_partial(), "clean run is complete");
    let clean_fp = access_fingerprint(&tech, &design, &clean);

    // ---- 1. Zero budget: everything skippable is skipped, the run still
    // returns a structurally usable result (partial, never aborted).
    let zero =
        oracle(2).analyze_with_budget(&tech, &design, RunBudget::with_deadline(Duration::ZERO));
    assert!(zero.stats.deadline.is_partial(), "{}", zero.stats);
    assert_eq!(zero.stats.deadline.budget, Some(Duration::ZERO));
    assert!(zero.stats.deadline.skipped_items() > 0);
    assert!(
        zero.stats
            .deadline
            .skipped
            .iter()
            .all(|s| s.reason == CancelReason::Deadline),
        "{}",
        zero.stats.deadline
    );
    // Skips are not faults: the quarantine list stays clean.
    assert!(zero.stats.quarantined.is_empty(), "{}", zero.stats);
    // The partial result answers access queries without panicking
    // (every pin simply has no access yet).
    let _ = access_fingerprint(&tech, &design, &zero);
    // Pins the audit never certified count as failed, not as missing.
    assert_eq!(zero.stats.failed_pins, zero.stats.total_pins);

    // ---- 2. Checkpoint + resume: a run cut mid-way persists its finished
    // apgen/pattern work; resuming with a fresh budget completes the
    // analysis bit-identically to the uninterrupted run.
    for threads in [1usize, 4] {
        let dir = ckpt_dir(&format!("resume-t{threads}"));
        {
            let mut store = CheckpointStore::create(&dir).expect("create checkpoint dir");
            // A 2 ms budget cuts somewhere inside the pipeline; wherever
            // the cut lands, completed work is checkpointed.
            let budget = RunBudget {
                checkpoint: Some(&mut store),
                ..RunBudget::with_deadline(Duration::from_millis(2))
            };
            let _partial = oracle(threads).analyze_with_budget(&tech, &design, budget);
        }
        let (mut store, errors) = CheckpointStore::resume(&dir).expect("resume");
        assert!(errors.is_empty(), "clean checkpoints reload: {errors:?}");
        let budget = RunBudget {
            checkpoint: Some(&mut store),
            ..RunBudget::unlimited()
        };
        let resumed = oracle(threads).analyze_with_budget(&tech, &design, budget);
        assert!(!resumed.stats.deadline.is_partial(), "{}", resumed.stats);
        assert!(
            resumed.stats.counters_eq(&clean.stats),
            "resume x{threads} counters match uninterrupted run:\n{}\nvs\n{}",
            resumed.stats,
            clean.stats
        );
        assert_eq!(
            access_fingerprint(&tech, &design, &resumed),
            clean_fp,
            "resume x{threads} is bit-identical to the uninterrupted run"
        );
        // The complete run left full checkpoints + phase history behind.
        let (store2, errors2) = CheckpointStore::resume(&dir).expect("resume");
        assert!(errors2.is_empty(), "{errors2:?}");
        assert_eq!(store2.apgen_len(), resumed.stats.unique_instances);
        assert_eq!(store2.pattern_len(), resumed.stats.unique_instances);
        assert!(store2.fractions().is_some(), "history saved on completion");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- 3. A fully-checkpointed directory restores instead of
    // recomputing (and still produces the identical result).
    let dir = ckpt_dir("warm");
    {
        let mut store = CheckpointStore::create(&dir).expect("create checkpoint dir");
        let budget = RunBudget {
            checkpoint: Some(&mut store),
            ..RunBudget::unlimited()
        };
        let _ = oracle(2).analyze_with_budget(&tech, &design, budget);
    }
    let (mut store, _) = CheckpointStore::resume(&dir).expect("resume");
    assert!(store.apgen_len() > 0 && store.pattern_len() > 0);
    let budget = RunBudget {
        checkpoint: Some(&mut store),
        ..RunBudget::unlimited()
    };
    let warm = oracle(2).analyze_with_budget(&tech, &design, budget);
    assert_eq!(access_fingerprint(&tech, &design, &warm), clean_fp);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- 4. Watchdog: an injected mid-item stall is detected, recorded,
    // and converted into a cancelled (degraded) run — never a hang.
    fault::arm_stall("apgen.instance", 0, 400);
    let budget = RunBudget {
        watchdog: Some(Watchdog {
            multiple: 2,
            min_stall: Duration::from_millis(50),
            poll: Duration::from_millis(1),
        }),
        ..RunBudget::unlimited()
    };
    let stalled = oracle(2).analyze_with_budget(&tech, &design, budget);
    assert!(!fault::stall_armed(), "injected stall must have fired");
    assert!(
        !stalled.stats.deadline.stalls.is_empty(),
        "watchdog records the stall: {}",
        stalled.stats
    );
    let rec = &stalled.stats.deadline.stalls[0];
    assert_eq!(rec.label, "apgen.instance");
    assert_eq!(rec.item, 0);
    assert!(
        stalled
            .stats
            .deadline
            .skipped
            .iter()
            .all(|s| s.reason == CancelReason::Stall),
        "{}",
        stalled.stats.deadline
    );
    // Degraded, not aborted: the result is still structurally usable.
    let _ = access_fingerprint(&tech, &design, &stalled);
    fault::disarm();
}
