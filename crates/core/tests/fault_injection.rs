//! End-to-end fault-injection harness: inject a deterministic panic into
//! every pipeline phase and assert the degrade-never-abort contract.
//!
//! For each phase the harness arms one injected panic (keyed on the input
//! index, so the same item faults at every thread count), runs the full
//! analysis at 1 and 4 threads, and checks that
//!
//! 1. the run completes instead of aborting,
//! 2. exactly the injected item lands in `PaoStats::quarantined` with the
//!    right phase and the panic message as its reason,
//! 3. the degraded results are bit-identical between thread counts, and
//! 4. everything *outside* the quarantined item matches the clean run.
//!
//! Everything lives in one `#[test]` because the injection plan is
//! process-global state — concurrent tests in the same binary would race
//! on it.

use pao_core::{fault, PaoConfig, PaoResult, Phase, PinAccessOracle};
use pao_design::CompId;
use pao_tech::Tech;
use pao_testgen::{generate, SuiteCase};

fn oracle(threads: usize) -> PinAccessOracle {
    PinAccessOracle::with_config(PaoConfig {
        threads,
        ..PaoConfig::default()
    })
}

/// Every connected pin's selected access position — the output the
/// downstream router consumes, used here as the identity fingerprint.
fn access_fingerprint(
    tech: &Tech,
    design: &pao_design::Design,
    result: &PaoResult,
) -> Vec<Option<pao_geom::Point>> {
    let mut out = Vec::new();
    for (ci, comp) in design.components().iter().enumerate() {
        let Some(master) = comp.master_in(tech) else {
            continue;
        };
        for pi in 0..master.pins.len() {
            out.push(
                result
                    .access_point(design, CompId(ci as u32), pi)
                    .map(|ap| ap.pos),
            );
        }
    }
    out
}

#[test]
fn injected_faults_degrade_never_abort() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    fault::disarm();
    let clean = oracle(1).analyze(&tech, &design);
    assert!(clean.stats.quarantined.is_empty(), "clean run is healthy");
    assert_eq!(clean.stats.failed_pins, 0, "{}", clean.stats);

    let phases = [
        ("apgen.instance", Phase::Apgen),
        ("pattern.instance", Phase::Pattern),
        ("select.group", Phase::Select),
        ("repair.scan", Phase::Repair),
        ("audit.pin", Phase::Audit),
    ];
    for (label, phase) in phases {
        let mut runs: Vec<PaoResult> = Vec::new();
        for threads in [1usize, 4] {
            fault::arm(label, 0);
            // The contract under test: this completes instead of panicking.
            let r = oracle(threads).analyze(&tech, &design);
            assert!(!fault::armed(), "fault at {label} must have fired");
            assert_eq!(
                r.stats.quarantined.len(),
                1,
                "{label} x{threads}: exactly the injected item is quarantined"
            );
            let f = &r.stats.quarantined[0];
            assert_eq!(f.phase, phase, "{label}");
            assert!(
                f.reason.contains(&format!("injected fault at {label}[0]")),
                "{label}: panic payload preserved, got `{}`",
                f.reason
            );
            assert!(!f.item.is_empty(), "{label}: fault names its item");
            runs.push(r);
        }
        let (one, four) = (&runs[0], &runs[1]);

        // Thread-count identity holds for degraded runs too: the fault is
        // keyed on the input item, not the worker that claims it.
        assert!(
            one.stats.counters_eq(&four.stats),
            "{label}: counters diverged\n1 thr: {}\n4 thr: {}",
            one.stats,
            four.stats
        );
        assert_eq!(one.selection, four.selection, "{label}");
        assert_eq!(one.overrides, four.overrides, "{label}");
        assert_eq!(
            access_fingerprint(&tech, &design, one),
            access_fingerprint(&tech, &design, four),
            "{label}: per-pin access diverged between thread counts"
        );

        // Degraded-mode semantics per phase: the run minus the quarantined
        // item matches the clean run.
        match phase {
            Phase::Apgen | Phase::Pattern => {
                // Item 0 = unique instance 0. Every other unique instance's
                // intra-cell results are untouched.
                assert_eq!(one.unique.len(), clean.unique.len(), "{label}");
                for (ui, u) in one.unique.iter().enumerate().skip(1) {
                    assert_eq!(u.pin_aps, clean.unique[ui].pin_aps, "{label} ui={ui}");
                    assert_eq!(u.patterns, clean.unique[ui].patterns, "{label} ui={ui}");
                }
                // The quarantined instance has no patterns, so its member
                // pins (and only pins) can fail.
                assert!(one.unique[0].patterns.is_empty(), "{label}");
                assert!(one.stats.failed_pins >= clean.stats.failed_pins, "{label}");
            }
            Phase::Audit => {
                // The un-certifiable pin conservatively counts as failed;
                // nothing else changes (the audit is read-only).
                assert_eq!(
                    one.stats.failed_pins,
                    clean.stats.failed_pins + 1,
                    "{label}"
                );
                assert_eq!(
                    access_fingerprint(&tech, &design, one),
                    access_fingerprint(&tech, &design, &clean),
                    "{label}: audit faults must not change selected access"
                );
            }
            Phase::Select | Phase::Repair => {
                // A quarantined selection group keeps its members' default
                // pattern; a quarantined repair scan item is treated as
                // not-dirty. On this clean design both degrade to the
                // clean outcome.
                assert_eq!(one.stats.failed_pins, clean.stats.failed_pins, "{label}");
            }
            _ => unreachable!(),
        }
    }
    fault::disarm();
}
