//! Decision-ledger end-to-end contract:
//!
//! 1. the record stream of a full analysis is **bit-identical across
//!    thread counts** (canonical sort on flush),
//! 2. the ledger stays silent when disabled, and
//! 3. degraded runs — injected quarantines and expired deadlines — still
//!    flush cleanly (no drops, no panics, no stuck thread buffers).
//!
//! Everything lives in one `#[test]`: the ledger (like the fault plan) is
//! process-global state, and sibling tests in this binary would race on
//! enable/reset.

use pao_core::{fault, PaoConfig, PinAccessOracle, RunBudget};
use pao_testgen::{generate, SuiteCase};
use std::time::Duration;

fn oracle(threads: usize) -> PinAccessOracle {
    PinAccessOracle::with_config(PaoConfig {
        threads,
        ..PaoConfig::default()
    })
}

#[test]
fn ledger_thread_identity_and_degraded_flush() {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    fault::disarm();

    // Disabled (the default): an analysis leaves no records behind.
    pao_obs::reset();
    let _ = oracle(2).analyze(&tech, &design);
    let dump = pao_obs::take_ledger();
    assert!(dump.records.is_empty(), "ledger off ⇒ no records");
    assert_eq!(dump.dropped, 0);

    // Enabled: thread counts must not change the canonical stream.
    pao_obs::enable_ledger();
    let mut dumps = Vec::new();
    for threads in [1usize, 4] {
        pao_obs::reset();
        pao_obs::enable_ledger();
        let _ = oracle(threads).analyze(&tech, &design);
        let dump = pao_obs::take_ledger();
        assert_eq!(dump.dropped, 0, "x{threads}: capacity must suffice");
        assert!(
            !dump.records.is_empty(),
            "x{threads}: an analysis emits records"
        );
        dumps.push(dump.records);
    }
    assert_eq!(
        dumps[0], dumps[1],
        "ledger stream must be identical at 1 and 4 threads"
    );
    // The stream covers the apgen phase at minimum (accept/reject
    // verdicts exist for any non-trivial design).
    assert!(dumps[0]
        .iter()
        .any(|r| matches!(r.decode_event(), Some(pao_obs::LedgerEvent::ApAccept))));

    // Expired deadline: skipped items emit nothing, finished items flush.
    pao_obs::reset();
    pao_obs::enable_ledger();
    let partial =
        oracle(2).analyze_with_budget(&tech, &design, RunBudget::with_deadline(Duration::ZERO));
    assert!(partial.stats.deadline.is_partial());
    let dump = pao_obs::take_ledger();
    assert_eq!(dump.dropped, 0, "deadline run flushes without drops");

    // Injected quarantine mid-apgen: the poisoned worker's thread buffer
    // still drains (TLS flush runs on buffer drop / take), and the run's
    // dump stays consistent.
    pao_obs::reset();
    pao_obs::enable_ledger();
    fault::arm("apgen.instance", 0);
    let hurt = oracle(2).analyze(&tech, &design);
    fault::disarm();
    assert!(
        !hurt.stats.quarantined.is_empty(),
        "injected fault must quarantine"
    );
    let dump = pao_obs::take_ledger();
    assert_eq!(dump.dropped, 0, "quarantined run flushes without drops");
    let mut sorted = dump.records.clone();
    sorted.sort_unstable();
    assert_eq!(dump.records, sorted, "take() yields canonical order");
    pao_obs::reset();
}
