//! Allocation regression gate for the cluster-selection fast path.
//!
//! The steady-state selection loop — near-boundary collection, DP rows,
//! memo lookups and pairwise via probes — runs entirely out of
//! [`SelectScratch`]'s reused buffers. This test drives `solve_group`
//! twice over the same workload with a warm scratch and asserts the
//! second pass performs **zero** heap allocations, using a counting
//! wrapper around the system allocator (criterion is not available in
//! the offline build, so the gate lives here instead of a bench).

use pao_core::cluster::{
    build_clusters, conflict_reach, group_clusters, pair_reach, solve_group, SelectScratch,
    SelectTelemetry, SelectTuning,
};
use pao_core::{PinAccessOracle, UniqueInstanceAccess};
use pao_design::{Component, Design, TrackPattern};
use pao_drc::DrcEngine;
use pao_geom::{Dir, Orient, Point, Rect};
use pao_tech::rules::MinStepRule;
use pao_tech::{Layer, Macro, Pin, PinDir, Port, Tech, ViaDef};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts allocations (not frees — a free-only path is still
/// allocation-free in the sense we gate on).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A row of abutting 2-pin cells: one cluster, many boundary edges, so
/// the counted pass exercises the DP, the memo and the probe loop.
fn world() -> (Tech, Design) {
    let mut t = Tech::new(1000);
    let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
    m1.min_step = Some(MinStepRule::simple(60));
    let m1 = t.add_layer(m1);
    let v1 = t.add_layer(Layer::cut("V1", 70, 80));
    let m2 = t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 70));
    let mut via = ViaDef::new(
        "via1_0",
        m1,
        vec![Rect::new(-65, -35, 65, 35)],
        v1,
        vec![Rect::new(-35, -35, 35, 35)],
        m2,
        vec![Rect::new(-35, -65, 35, 65)],
    );
    via.is_default = true;
    t.add_via(via);
    // Pins hug the cell edges so their access points land within
    // `conflict_reach` of the shared boundaries — every DP edge then
    // has via pairs to probe.
    let mut cell = Macro::new("BUFX1", 1200, 1400);
    cell.pins.push(Pin::new(
        "A",
        PinDir::Input,
        vec![Port::rects(m1, vec![Rect::new(35, 100, 185, 900)])],
    ));
    cell.pins.push(Pin::new(
        "Y",
        PinDir::Output,
        vec![Port::rects(m1, vec![Rect::new(1015, 100, 1165, 900)])],
    ));
    t.add_macro(cell);

    let mut d = Design::new("alloc_row", Rect::new(0, 0, 40_000, 20_000));
    d.tracks
        .push(TrackPattern::new(Dir::Horizontal, 100, 200, 90, vec![m1]));
    d.tracks
        .push(TrackPattern::new(Dir::Vertical, 100, 200, 90, vec![m2]));
    for i in 0..8i64 {
        d.add_component(Component::new(
            format!("u{i}"),
            "BUFX1",
            Point::new(200 + 1200 * i, 0),
            Orient::N,
        ));
    }
    (t, d)
}

/// One full selection pass over every group with a shared warm scratch,
/// mirroring the sequential path of `select_patterns_budget`.
#[allow(clippy::too_many_arguments)]
fn run_selection(
    t: &Tech,
    engine: &DrcEngine<'_>,
    d: &Design,
    comp_uniq: &[Option<pao_core::UniqueInstanceId>],
    uniq: &[UniqueInstanceAccess],
    defaults: &[Option<usize>],
    groups: &[Vec<usize>],
    clusters: &[pao_core::Cluster],
    tuning: &SelectTuning,
    local: &mut HashMap<usize, Option<usize>>,
    scratch: &mut SelectScratch,
) -> SelectTelemetry {
    let reach = conflict_reach(t);
    let far = pair_reach(t, engine);
    let mut tel = SelectTelemetry::default();
    for group in groups {
        local.clear();
        tel.absorb(&solve_group(
            t, engine, d, comp_uniq, uniq, reach, far, clusters, group, defaults, tuning, 1, local,
            scratch,
        ));
    }
    tel
}

#[test]
fn warm_selection_pass_allocates_nothing() {
    let (t, d) = world();
    // Upstream phases (apgen + patterns) may allocate freely; they run
    // once and hand the selection phase its immutable inputs.
    let result = PinAccessOracle::new().analyze(&t, &d);
    let engine = DrcEngine::new(&t);
    let clusters = build_clusters(&t, &d);
    let groups = group_clusters(&clusters, d.components().len());
    let defaults: Vec<Option<usize>> = result
        .comp_uniq
        .iter()
        .map(|cu| {
            cu.filter(|ui| !result.unique[ui.index()].patterns.is_empty())
                .map(|_| 0)
        })
        .collect();
    let tuning = SelectTuning::default();
    let mut local: HashMap<usize, Option<usize>> = HashMap::new();
    let mut scratch = SelectScratch::new(t.layers().len());

    // Warm pass: grows every scratch buffer to its high-water mark.
    let warm = run_selection(
        &t,
        &engine,
        &d,
        &result.comp_uniq,
        &result.unique,
        &defaults,
        &groups,
        &clusters,
        &tuning,
        &mut local,
        &mut scratch,
    );
    assert!(
        warm.edges > 0 && warm.probes > 0,
        "fixture too trivial to exercise the probe path: {warm:?}"
    );

    // Counted pass: identical work, zero allocations.
    let before = ALLOCS.load(Ordering::Relaxed);
    let counted = run_selection(
        &t,
        &engine,
        &d,
        &result.comp_uniq,
        &result.unique,
        &defaults,
        &groups,
        &clusters,
        &tuning,
        &mut local,
        &mut scratch,
    );
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(counted, warm, "warm pass changed the outcome");
    assert_eq!(
        allocs, 0,
        "warm selection pass allocated {allocs} times (scratch reuse regressed)"
    );
}
