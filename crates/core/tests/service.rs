//! Service-layer determinism: concurrent queries against a resident
//! [`OracleService`] must be byte-identical to serial ones, and an
//! `eco_update` + re-query must match a cold full re-analysis of the
//! moved design bit-for-bit.
//!
//! Reject collection stays off here — the decision ledger is
//! process-global and these tests run concurrently with others in this
//! binary; the ledger path is exercised end-to-end by the CLI serve test
//! and the `scripts/verify.sh` serve gate.

use pao_core::service::selection_dump;
use pao_core::{
    EcoMove, EcoTarget, OracleService, PaoConfig, PinAccessOracle, RunBudget, ServiceError,
};
use pao_design::CompId;
use pao_testgen::{generate, SuiteCase};

fn start_service() -> OracleService {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    OracleService::start(
        tech,
        design,
        PaoConfig::default(),
        RunBudget::unlimited(),
        false,
    )
}

/// Every query the determinism tests replay: one of each kind per
/// component, rendered to its debug string (typed replies are `Eq`, but
/// the byte-identity claim is easiest stated over the rendering).
fn query_all(svc: &OracleService) -> Vec<String> {
    let design = svc.design().clone();
    let tech = svc.tech().clone();
    let mut out = Vec::new();
    for (ci, comp) in design.components().iter().enumerate() {
        let name: &str = &comp.name;
        let Some(master) = design.component(CompId(ci as u32)).master_in(&tech) else {
            continue;
        };
        for pin in &master.pins {
            out.push(format!("{:?}", svc.pin_access(name, &pin.name)));
        }
        out.push(format!("{:?}", svc.instance_patterns(name)));
        out.push(format!("{:?}", svc.cluster_selection(name)));
    }
    out.push(svc.selection_dump());
    out
}

#[test]
fn concurrent_queries_match_serial_byte_for_byte() {
    let svc = start_service();
    let serial = query_all(&svc);
    assert!(serial.len() > 3, "smoke design should yield many queries");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| query_all(&svc))).collect();
        for h in handles {
            let threaded = h.join().unwrap();
            assert_eq!(serial, threaded, "concurrent replies diverged");
        }
    });
}

#[test]
fn unknown_queries_return_typed_errors() {
    let svc = start_service();
    assert_eq!(
        svc.pin_access("no_such_instance", "A"),
        Err(ServiceError::UnknownInstance("no_such_instance".to_owned()))
    );
    let design = svc.design().clone();
    let tech = svc.tech().clone();
    let comp = &design.components()[0];
    let master = design
        .component(CompId(0))
        .master_in(&tech)
        .expect("smoke components have masters");
    assert_eq!(
        svc.pin_access(&comp.name, "no_such_pin"),
        Err(ServiceError::UnknownPin {
            master: master.name.to_string(),
            pin: "no_such_pin".to_owned(),
        })
    );
    assert!(svc.instance_patterns("nope").is_err());
    assert!(svc.cluster_selection("nope").is_err());
}

/// Swapping two same-master instances preserves the signature set, so
/// the ECO must take the dirty-cluster fast path (zero cache misses) —
/// and still match a cold full analysis of the moved placement
/// bit-for-bit: same selection dump, same access points everywhere.
#[test]
fn eco_update_matches_cold_full_reanalysis() {
    let mut svc = start_service();
    let design = svc.design().clone();

    // Find two instances of the same master to swap.
    let comps = design.components();
    let (a, b) = 'found: {
        for i in 0..comps.len() {
            for j in (i + 1)..comps.len() {
                if comps[i].master == comps[j].master && comps[i].location != comps[j].location {
                    break 'found (i, j);
                }
            }
        }
        panic!("smoke design should repeat a master");
    };
    let moves = [
        EcoMove {
            inst: comps[a].name.to_string(),
            target: EcoTarget::Abs(comps[b].location),
        },
        EcoMove {
            inst: comps[b].name.to_string(),
            target: EcoTarget::Abs(comps[a].location),
        },
    ];

    let reply = svc.eco_update(&moves, None, None).expect("eco applies");
    assert_eq!(reply.moved, 2);
    assert_eq!(reply.eco_seq, 1);
    assert_eq!(svc.eco_updates(), 1);
    assert_eq!(
        reply.cache_misses, 0,
        "signature-preserving swap must stay on the dirty-cluster fast path"
    );
    assert!(!reply.full_reanalysis);

    // Cold reference: a fresh oracle over the moved placement.
    let (tech, mut moved) = generate(&SuiteCase::small_smoke());
    let loc_a = moved.components()[a].location;
    let loc_b = moved.components()[b].location;
    moved.component_mut(CompId(a as u32)).location = loc_b;
    moved.component_mut(CompId(b as u32)).location = loc_a;
    let cold = PinAccessOracle::new().analyze(&tech, &moved);

    assert_eq!(
        svc.selection_dump(),
        selection_dump(&moved, &cold),
        "eco result diverged from cold re-analysis"
    );
    let warm_design = svc.design().clone();
    let warm = svc.result().clone();
    assert_eq!(warm.stats.total_aps, cold.stats.total_aps);
    assert_eq!(warm.stats.failed_pins, cold.stats.failed_pins);
    for ci in 0..moved.components().len() {
        let comp = CompId(ci as u32);
        let Some(master) = moved.component(comp).master_in(&tech) else {
            continue;
        };
        for pi in 0..master.pins.len() {
            assert_eq!(
                warm.access_point(&warm_design, comp, pi),
                cold.access_point(&moved, comp, pi),
                "access point diverged at comp {ci} pin {pi}"
            );
        }
    }
}

/// An ECO naming a missing instance is rejected whole: nothing moves,
/// the sequence number does not advance.
#[test]
fn eco_update_rejects_unknown_instance_atomically() {
    let mut svc = start_service();
    let before = svc.selection_dump();
    let known = svc.design().components()[0].name.to_string();
    let moves = [
        EcoMove {
            inst: known,
            target: EcoTarget::Delta(pao_geom::Point { x: 100, y: 0 }),
        },
        EcoMove {
            inst: "ghost".to_owned(),
            target: EcoTarget::Delta(pao_geom::Point { x: 0, y: 0 }),
        },
    ];
    assert_eq!(
        svc.eco_update(&moves, None, None),
        Err(ServiceError::UnknownInstance("ghost".to_owned()))
    );
    assert_eq!(svc.eco_updates(), 0);
    assert_eq!(
        svc.selection_dump(),
        before,
        "rejected ECO must not move anything"
    );
}

/// An ECO whose re-analysis blows its deadline degrades gracefully: the
/// previous snapshot keeps serving, the signature cache is restored, and
/// a later unconstrained ECO still lands bit-identically.
#[test]
fn degraded_eco_keeps_previous_snapshot_and_cache() {
    let mut svc = start_service();
    let before = svc.selection_dump();
    let cache_before = svc.cache_stats();
    let known = svc.design().components()[0].name.to_string();
    let moves = [EcoMove {
        inst: known.clone(),
        target: EcoTarget::Delta(pao_geom::Point { x: 40, y: 0 }),
    }];

    // A zero deadline deterministically skips every phase's work.
    let err = svc
        .eco_update(&moves, Some(std::time::Duration::ZERO), None)
        .expect_err("zero-deadline ECO must degrade");
    match err {
        ServiceError::EcoDegraded {
            quarantined,
            skipped,
            stalls,
        } => {
            assert!(skipped > 0, "zero deadline must skip work");
            assert_eq!(quarantined, 0);
            assert_eq!(stalls, 0);
        }
        other => panic!("expected EcoDegraded, got {other:?}"),
    }
    assert_eq!(svc.eco_updates(), 0, "degraded ECO must not count");
    assert_eq!(svc.degraded_ecos(), 1);
    assert_eq!(
        svc.selection_dump(),
        before,
        "degraded ECO must keep the previous snapshot serving"
    );
    assert_eq!(
        svc.cache_stats(),
        cache_before,
        "degraded ECO must restore the signature cache"
    );

    // The service stays healthy: the same move applies cleanly without a
    // deadline and matches a cold analysis of the moved placement.
    let reply = svc.eco_update(&moves, None, None).expect("eco applies");
    assert_eq!(reply.eco_seq, 1);
    let (tech, mut moved) = generate(&SuiteCase::small_smoke());
    moved.component_mut(CompId(0)).location += pao_geom::Point { x: 40, y: 0 };
    let cold = PinAccessOracle::new().analyze(&tech, &moved);
    assert_eq!(svc.selection_dump(), selection_dump(&moved, &cold));
}

/// Journaled ECOs replay to a bit-identical snapshot: a service that
/// records batches, "dies", and is rebuilt from the original design plus
/// the recovered journal must match the uninterrupted twin byte-for-byte.
#[test]
fn journal_replay_matches_uninterrupted_twin() {
    let dir = std::env::temp_dir().join(format!("pao_svc_journal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("eco.journal");

    let mut svc = start_service();
    svc.attach_journal(pao_core::EcoJournal::create(&path).expect("journal create"));
    let names: Vec<String> = svc
        .design()
        .components()
        .iter()
        .map(|c| c.name.to_string())
        .collect();
    let batches: Vec<Vec<EcoMove>> = vec![
        vec![EcoMove {
            inst: names[0].clone(),
            target: EcoTarget::Delta(pao_geom::Point { x: 40, y: 0 }),
        }],
        vec![
            EcoMove {
                inst: names[1].clone(),
                target: EcoTarget::Delta(pao_geom::Point { x: 0, y: -40 }),
            },
            EcoMove {
                inst: names[0].clone(),
                target: EcoTarget::Delta(pao_geom::Point { x: -40, y: 0 }),
            },
        ],
    ];
    for b in &batches {
        svc.eco_update(b, None, None)
            .expect("journaled eco applies");
    }
    let twin_dump = svc.selection_dump();
    drop(svc); // "kill" the first incarnation

    // Restart: fresh load of the original design, then journal replay.
    let (journal, entries, warn) = pao_core::EcoJournal::resume(&path).expect("journal resume");
    assert!(warn.is_none(), "{warn:?}");
    assert_eq!(entries.len(), batches.len());
    let mut restarted = start_service();
    let replayed = restarted.replay(&entries).expect("replay applies");
    assert_eq!(replayed, batches.len() as u64);
    restarted.attach_journal(journal);
    assert_eq!(
        restarted.selection_dump(),
        twin_dump,
        "replayed snapshot diverged from the uninterrupted twin"
    );
    assert_eq!(restarted.eco_updates(), batches.len() as u64);
}
