//! Parametric technology flavours.

use pao_geom::{Dbu, Dir, Rect};
use pao_tech::rules::{EolRule, MinStepRule, SpacingTable};
use pao_tech::{Layer, Site, Tech, ViaDef};

/// The technology flavours used by the synthetic suite (paper Table I:
/// 45 nm for test1–3, 32 nm for test4–10, plus the 14 nm AES study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechFlavor {
    /// 45 nm-like: relaxed pitches, few unique instances.
    N45,
    /// 32 nm-like with pitches incommensurate to the row height — many
    /// unique instances (tests 4–6).
    N32A,
    /// 32 nm-like with mostly commensurate pitches — few unique
    /// instances (tests 7–10).
    N32B,
    /// 14 nm-like: pin width well below enclosure needs, track phases
    /// misaligned with pin centers — off-track access required.
    N14,
}

/// The parameters a flavour expands to (all DBU, 1000 per micron).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TechParams {
    /// Flavour these parameters came from.
    pub flavor: TechFlavor,
    /// M1 (horizontal) track pitch.
    pub m1_pitch: Dbu,
    /// M1 track offset.
    pub m1_offset: Dbu,
    /// M2 (vertical) track pitch.
    pub m2_pitch: Dbu,
    /// M2 track offset.
    pub m2_offset: Dbu,
    /// Routing wire width (all layers).
    pub width: Dbu,
    /// Simple metal spacing.
    pub spacing: Dbu,
    /// Min-step length (`MAXEDGES 0` semantics).
    pub min_step: Dbu,
    /// Cut size of the default (wide) via.
    pub cut_wide: Dbu,
    /// Cut size of the alternate (bar) via.
    pub cut_bar: Dbu,
    /// Cut-to-cut spacing.
    pub cut_spacing: Dbu,
    /// Default via bottom enclosure half-extent along the wire.
    pub enc_long: Dbu,
    /// Bar-via bottom enclosure half-extent along the pin bar.
    pub bar_long: Dbu,
    /// Placement site width.
    pub site_width: Dbu,
    /// Row (and standard-cell) height. Deliberately incommensurate with
    /// the M1 pitch in [`TechFlavor::N32A`] so track phases cycle over
    /// rows, multiplying unique instances.
    pub row_height: Dbu,
    /// Number of routing layers in the stack.
    pub num_routing_layers: u32,
}

impl TechFlavor {
    /// Expands the flavour to concrete parameters.
    #[must_use]
    pub fn params(self) -> TechParams {
        match self {
            TechFlavor::N45 => TechParams {
                flavor: self,
                m1_pitch: 280,
                m1_offset: 140,
                m2_pitch: 400,
                m2_offset: 200,
                width: 120,
                spacing: 120,
                min_step: 80,
                cut_wide: 110,
                cut_bar: 100,
                cut_spacing: 280,
                enc_long: 130,
                bar_long: 120,
                site_width: 360,
                row_height: 2800,
                num_routing_layers: 9,
            },
            TechFlavor::N32A => TechParams {
                flavor: self,
                // Row height (9 × 200 = 1800) is NOT a multiple of the M1
                // pitch 190 → y phases cycle over rows → many unique
                // instances (paper tests 4–6).
                m1_pitch: 190,
                m1_offset: 95,
                m2_pitch: 320,
                m2_offset: 160,
                width: 100,
                spacing: 100,
                min_step: 70,
                cut_wide: 90,
                cut_bar: 80,
                cut_spacing: 230,
                enc_long: 110,
                bar_long: 100,
                site_width: 300,
                row_height: 1800,
                num_routing_layers: 9,
            },
            TechFlavor::N32B => TechParams {
                flavor: self,
                m1_pitch: 200,
                m1_offset: 100,
                m2_pitch: 240,
                m2_offset: 120,
                width: 100,
                spacing: 100,
                min_step: 70,
                cut_wide: 90,
                cut_bar: 80,
                cut_spacing: 230,
                enc_long: 110,
                bar_long: 100,
                site_width: 300,
                row_height: 1800,
                num_routing_layers: 9,
            },
            TechFlavor::N14 => TechParams {
                flavor: self,
                m1_pitch: 130,
                m1_offset: 65,
                m2_pitch: 140,
                m2_offset: 70,
                width: 60,
                spacing: 70,
                min_step: 50,
                cut_wide: 55,
                cut_bar: 50,
                cut_spacing: 105,
                enc_long: 75,
                bar_long: 80,
                site_width: 130,
                row_height: 1300,
                num_routing_layers: 9,
            },
        }
    }

    /// The row height in DBU.
    #[must_use]
    pub fn row_height(self) -> Dbu {
        self.params().row_height
    }
}

/// Builds the technology for a flavour: the routing/cut layer stack with
/// rules, two via definitions per cut layer (the wide default via and the
/// bar via), and the core site. Cell masters are added separately by
/// [`cells`](crate::cells).
#[must_use]
pub fn make_tech(flavor: TechFlavor) -> Tech {
    let p = flavor.params();
    let mut tech = Tech::new(1000);
    tech.manufacturing_grid = 5;

    let mut routing_ids = Vec::new();
    let mut cut_ids = Vec::new();
    for i in 0..p.num_routing_layers {
        if i > 0 {
            let cut = Layer::cut(format!("via{i}"), p.cut_wide, p.cut_spacing);
            cut_ids.push(tech.add_layer(cut));
        }
        let horizontal = i % 2 == 0;
        let (dir, pitch, offset) = if horizontal {
            (Dir::Horizontal, p.m1_pitch, p.m1_offset)
        } else {
            (Dir::Vertical, p.m2_pitch, p.m2_offset)
        };
        let mut layer = Layer::routing(format!("metal{}", i + 1), dir, pitch, p.width, p.spacing);
        layer.offset = offset;
        layer.min_step = Some(MinStepRule::simple(p.min_step));
        layer.min_area = i128::from(p.width) * i128::from(p.width) * 3;
        layer.spacing_table = Some(SpacingTable::new(
            vec![0, p.width * 2],
            vec![0, p.m1_pitch * 2],
            vec![
                vec![p.spacing, p.spacing],
                vec![p.spacing, p.spacing + p.width / 2],
            ],
        ));
        layer.eol_rules.push(EolRule {
            space: p.spacing + p.width / 4,
            eol_width: p.width - 10,
            within: p.spacing / 4,
        });
        routing_ids.push(tech.add_layer(layer));
    }

    for (i, &cut) in cut_ids.iter().enumerate() {
        let bot = routing_ids[i];
        let top = routing_ids[i + 1];
        // The wide default via: enclosure elongated along the *bottom*
        // layer's preferred direction.
        let bottom_horizontal = i % 2 == 0;
        let hw = p.cut_wide / 2;
        let (bx, by) = if bottom_horizontal {
            (p.enc_long, p.width / 2)
        } else {
            (p.width / 2, p.enc_long)
        };
        let (tx, ty) = if bottom_horizontal {
            (p.width / 2, p.enc_long)
        } else {
            (p.enc_long, p.width / 2)
        };
        let mut wide = ViaDef::new(
            format!("via{}_0", i + 1),
            bot,
            vec![Rect::new(-bx, -by, bx, by)],
            cut,
            vec![Rect::new(-hw, -hw, hw, hw)],
            top,
            vec![Rect::new(-tx, -ty, tx, ty)],
        );
        wide.is_default = true;
        tech.add_via(wide);
        // The bar via: enclosure elongated along the bottom layer's
        // NON-preferred direction — nests inside a pin bar of wire width.
        let hb = p.cut_bar / 2;
        let (bx, by) = if bottom_horizontal {
            (p.width / 2, p.bar_long)
        } else {
            (p.bar_long, p.width / 2)
        };
        let (tx, ty) = if bottom_horizontal {
            (p.width / 2, p.bar_long)
        } else {
            (p.bar_long, p.width / 2)
        };
        let bar = ViaDef::new(
            format!("via{}_1", i + 1),
            bot,
            vec![Rect::new(-bx, -by, bx, by)],
            cut,
            vec![Rect::new(-hb, -hb, hb, hb)],
            top,
            vec![Rect::new(-tx, -ty, tx, ty)],
        );
        tech.add_via(bar);
    }

    tech.add_site(Site::new("core", p.site_width, flavor.row_height()));
    tech
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_tech::LayerKind;

    #[test]
    fn stacks_have_nine_routing_layers() {
        for flavor in [
            TechFlavor::N45,
            TechFlavor::N32A,
            TechFlavor::N32B,
            TechFlavor::N14,
        ] {
            let t = make_tech(flavor);
            let routing = t
                .layers()
                .iter()
                .filter(|l| l.kind == LayerKind::Routing)
                .count();
            let cuts = t
                .layers()
                .iter()
                .filter(|l| l.kind == LayerKind::Cut)
                .count();
            assert_eq!(routing, 9, "{flavor:?}");
            assert_eq!(cuts, 8, "{flavor:?}");
            assert_eq!(t.vias().len(), 16, "{flavor:?}");
            assert_eq!(t.sites().len(), 1);
        }
    }

    #[test]
    fn directions_alternate() {
        let t = make_tech(TechFlavor::N45);
        let m1 = t.layer_by_name("metal1").unwrap();
        let m2 = t.layer_by_name("metal2").unwrap();
        let m3 = t.layer_by_name("metal3").unwrap();
        assert_eq!(m1.dir, Dir::Horizontal);
        assert_eq!(m2.dir, Dir::Vertical);
        assert_eq!(m3.dir, Dir::Horizontal);
    }

    #[test]
    fn vias_enclose_their_cuts() {
        for flavor in [
            TechFlavor::N45,
            TechFlavor::N32A,
            TechFlavor::N32B,
            TechFlavor::N14,
        ] {
            let t = make_tech(flavor);
            for via in t.vias() {
                let cut = via.cut_bbox();
                assert!(
                    via.bottom_bbox().contains_rect(cut),
                    "{flavor:?} {}: bottom does not enclose cut",
                    via.name
                );
                assert!(
                    via.top_bbox().contains_rect(cut),
                    "{flavor:?} {}: top does not enclose cut",
                    via.name
                );
            }
        }
    }

    #[test]
    fn default_vias_first_per_layer() {
        let t = make_tech(TechFlavor::N32A);
        let m1 = t.layer_id("metal1").unwrap();
        let ups = t.up_vias_from(m1);
        assert_eq!(ups.len(), 2);
        assert!(t.via(ups[0]).is_default);
        assert!(!t.via(ups[1]).is_default);
    }

    #[test]
    fn row_height_matches_tracks() {
        assert_eq!(TechFlavor::N45.row_height(), 2800);
        // N32A: 1800 is NOT a multiple of the 190 pitch — by design.
        assert_eq!(
            TechFlavor::N32A.row_height() % TechFlavor::N32A.params().m1_pitch,
            90
        );
        assert_eq!(TechFlavor::N32B.row_height(), 1800);
    }

    #[test]
    fn wide_via_wings_violate_min_step_on_bars() {
        // The engineered contrast: the default via's bottom enclosure
        // overhangs a wire-width pin bar by (enc_long − width/2) per side,
        // and that overhang is below min_step → Fig. 3 dirty.
        for flavor in [TechFlavor::N45, TechFlavor::N32A, TechFlavor::N14] {
            let p = flavor.params();
            let overhang = p.enc_long - p.width / 2;
            assert!(overhang < p.min_step, "{flavor:?}");
            assert!(overhang > 0, "{flavor:?}");
        }
    }

    #[test]
    fn same_track_adjacent_site_cuts_conflict() {
        // Cut-to-cut gap at one site pitch must violate cut spacing so the
        // pattern DP has real work to do.
        for flavor in [TechFlavor::N45, TechFlavor::N32A, TechFlavor::N32B] {
            let p = flavor.params();
            let gap = p.site_width - p.cut_wide;
            assert!(
                gap < p.cut_spacing,
                "{flavor:?}: same-row vias must conflict"
            );
            // …but one track apart diagonally must be clean.
            let dy = p.m1_pitch - p.cut_wide;
            let d2 = i128::from(gap) * i128::from(gap) + i128::from(dy) * i128::from(dy);
            assert!(
                d2 >= i128::from(p.cut_spacing) * i128::from(p.cut_spacing),
                "{flavor:?}: diagonal vias must be clean"
            );
        }
    }
}
