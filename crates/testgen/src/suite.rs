//! The `ispd18s` synthetic suite — paper Table I at 1/20 scale.

use crate::cells::{add_block_macro, add_std_cells};
use crate::netlist::{build_netlist, NetlistConfig};
use crate::place::{place_design, PlaceConfig};
use crate::techs::{make_tech, TechFlavor};
use pao_design::Design;
use pao_ptest::Rng;
use pao_tech::Tech;

/// One testcase of the synthetic suite.
#[derive(Debug, Clone)]
pub struct SuiteCase {
    /// Testcase name, e.g. `"ispd18s_test5"`.
    pub name: String,
    /// Technology flavour.
    pub flavor: TechFlavor,
    /// Standard-cell count.
    pub cells: usize,
    /// Block macro count.
    pub macros: usize,
    /// Target net count.
    pub nets: usize,
    /// Design I/O pin count.
    pub io_pins: usize,
    /// Placement utilization in percent.
    pub utilization: u32,
    /// RNG seed (placement + netlist are deterministic in it).
    pub seed: u64,
}

impl SuiteCase {
    /// A tiny fast case for unit tests and doc examples.
    #[must_use]
    pub fn small_smoke() -> SuiteCase {
        SuiteCase {
            name: "smoke".into(),
            flavor: TechFlavor::N45,
            cells: 60,
            macros: 0,
            nets: 50,
            io_pins: 4,
            utilization: 80,
            seed: 42,
        }
    }
}

/// The ten `ispd18s` testcases — the paper's Table I rows scaled 1/20 in
/// cell/net counts, preserving the technology split (45 nm for test1–3,
/// 32 nm for the rest), the macro placement in test3/7/8, and the
/// relative testcase sizes.
#[must_use]
pub fn ispd18s_suite() -> Vec<SuiteCase> {
    let mk = |name: &str, flavor, cells, macros, nets, io_pins| SuiteCase {
        name: name.into(),
        flavor,
        cells,
        macros,
        nets,
        io_pins,
        utilization: 82,
        seed: 20180000 + name.bytes().map(u64::from).sum::<u64>(),
    };
    vec![
        mk("ispd18s_test1", TechFlavor::N45, 444, 0, 158, 0),
        mk("ispd18s_test2", TechFlavor::N45, 1796, 0, 1842, 61),
        mk("ispd18s_test3", TechFlavor::N45, 1799, 1, 1835, 61),
        mk("ispd18s_test4", TechFlavor::N32A, 3605, 0, 3620, 61),
        mk("ispd18s_test5", TechFlavor::N32A, 3598, 0, 3620, 61),
        mk("ispd18s_test6", TechFlavor::N32A, 5396, 0, 5385, 61),
        mk("ispd18s_test7", TechFlavor::N32B, 8993, 1, 8993, 61),
        mk("ispd18s_test8", TechFlavor::N32B, 9599, 1, 8993, 61),
        mk("ispd18s_test9", TechFlavor::N32B, 9646, 0, 8943, 61),
        mk("ispd18s_test10", TechFlavor::N32B, 14519, 0, 9100, 61),
    ]
}

/// The 14 nm AES study case (paper Section IV-B, Fig. 9): 1/7-scale
/// OpenCores AES on the 14 nm-like flavour.
#[must_use]
pub fn aes14_case() -> SuiteCase {
    SuiteCase {
        name: "aes14".into(),
        flavor: TechFlavor::N14,
        cells: 2857,
        macros: 0,
        nets: 2900,
        io_pins: 45,
        utilization: 85,
        seed: 14_000_000,
    }
}

/// Resolves a case by its suite name: `"smoke"`, `"aes14"`, or one of the
/// `ispd18s_test*` cases. `None` for anything else — callers own the
/// diagnostic (e.g. "try `pao gen list`").
#[must_use]
pub fn case_by_name(name: &str) -> Option<SuiteCase> {
    if name == "smoke" {
        return Some(SuiteCase::small_smoke());
    }
    if name == "aes14" {
        return Some(aes14_case());
    }
    ispd18s_suite().into_iter().find(|c| c.name == name)
}

/// Generates a testcase: the technology (layers, vias, site, cell library,
/// macros when needed) and the placed design with netlist.
#[must_use]
pub fn generate(case: &SuiteCase) -> (Tech, Design) {
    let mut tech = make_tech(case.flavor);
    add_std_cells(&mut tech, case.flavor);
    if case.macros > 0 {
        add_block_macro(&mut tech, case.flavor);
    }
    let mut rng = Rng::new(case.seed);
    let mut design = place_design(
        &tech,
        case.flavor,
        &PlaceConfig {
            cells: case.cells,
            macros: case.macros,
            utilization: case.utilization,
        },
        &mut rng,
        &case.name,
    );
    build_netlist(
        &tech,
        &mut design,
        &NetlistConfig {
            nets: case.nets,
            io_pins: case.io_pins,
        },
        &mut rng,
    );
    (tech, design)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_cases_matching_paper_shape() {
        let suite = ispd18s_suite();
        assert_eq!(suite.len(), 10);
        // 45 nm for tests 1–3, 32 nm beyond (paper Table I).
        assert_eq!(suite[0].flavor, TechFlavor::N45);
        assert_eq!(suite[2].flavor, TechFlavor::N45);
        assert_eq!(suite[3].flavor, TechFlavor::N32A);
        assert_eq!(suite[9].flavor, TechFlavor::N32B);
        // Macros only in tests 3, 7, 8.
        let with_macros: Vec<&str> = suite
            .iter()
            .filter(|c| c.macros > 0)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            with_macros,
            vec!["ispd18s_test3", "ispd18s_test7", "ispd18s_test8"]
        );
        // Sizes ascend overall (test10 largest).
        assert!(suite[9].cells > suite[0].cells * 20);
    }

    #[test]
    fn smoke_case_generates() {
        let (tech, design) = generate(&SuiteCase::small_smoke());
        assert_eq!(design.components().len(), 60);
        assert!(design.nets().len() >= 30, "{}", design.nets().len());
        assert!(design.connected_pin_count() >= 80);
        assert!(tech.macro_by_name("INVX1").is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let case = SuiteCase::small_smoke();
        let (_, d1) = generate(&case);
        let (_, d2) = generate(&case);
        assert_eq!(d1.components(), d2.components());
        assert_eq!(d1.nets(), d2.nets());
    }

    #[test]
    fn lef_def_roundtrip() {
        let case = SuiteCase::small_smoke();
        let (tech, design) = generate(&case);
        let lef = pao_tech::lef::write_lef(&tech);
        let tech2 = pao_tech::lef::parse_lef(&lef).unwrap();
        assert_eq!(tech.layers(), tech2.layers());
        assert_eq!(tech.vias(), tech2.vias());
        let def = pao_design::def::write_def(&design, &tech);
        let design2 = pao_design::def::parse_def(&def, &tech2).unwrap();
        assert_eq!(design.components(), design2.components());
        assert_eq!(design.nets(), design2.nets());
        assert_eq!(design.tracks, design2.tracks);
    }

    #[test]
    fn case_by_name_resolves_all_suites() {
        assert_eq!(case_by_name("smoke").unwrap().name, "smoke");
        assert_eq!(case_by_name("aes14").unwrap().flavor, TechFlavor::N14);
        assert_eq!(case_by_name("ispd18s_test7").unwrap().name, "ispd18s_test7");
        assert!(case_by_name("nope").is_none());
    }

    #[test]
    fn aes14_uses_14nm_flavour() {
        let case = aes14_case();
        assert_eq!(case.flavor, TechFlavor::N14);
        assert_eq!(case.cells, 2857);
    }
}
