#![warn(missing_docs)]

//! Synthetic LEF/DEF benchmark generator mirroring the shape of the
//! ISPD-2018 initial detailed routing suite.
//!
//! The real suite is proprietary; this crate generates deterministic
//! stand-ins that exercise the same pin access mechanisms (see DESIGN.md §4):
//!
//! * **Via/pin geometry**: the default via's bottom enclosure is wider
//!   than a pin bar, creating min-step "wings" unless the pin is wide —
//!   forcing the alternate bar-via; the bar-via in turn nests only when
//!   centered, making off-track (shape-center) coordinates necessary when
//!   track phases misalign (the paper's Fig. 3 mechanism).
//! * **Cut spacing**: vias on the same track in adjacent-site pins
//!   conflict, so intra-cell compatibility needs the pattern DP and
//!   inter-cell compatibility needs BCA + cluster selection.
//! * **Pitch commensurability** per [`TechFlavor`] controls how many
//!   unique instances a placement produces.
//!
//! # Examples
//!
//! ```
//! use pao_testgen::{generate, SuiteCase, TechFlavor};
//!
//! let case = SuiteCase::small_smoke();
//! let (tech, design) = generate(&case);
//! assert!(!design.components().is_empty());
//! assert!(tech.macros().len() >= 10);
//! ```

pub mod cells;
pub mod netlist;
pub mod place;
pub mod scale;
pub mod suite;
pub mod techs;

pub use scale::{scale_cases, scaled_case_by_name, scaled_tech, write_scaled_def, ScaleCase};
pub use suite::{aes14_case, case_by_name, generate, ispd18s_suite, SuiteCase};
pub use techs::{make_tech, TechFlavor, TechParams};
