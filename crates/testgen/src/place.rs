//! Row-based placement generator.

use crate::cells::CELL_SPECS;
use crate::techs::TechFlavor;
use pao_design::{Component, Design, Row, TrackPattern};
use pao_geom::{Dir, Orient, Point, Rect};
use pao_ptest::Rng;
use pao_tech::{LayerKind, Tech};

/// Placement parameters.
#[derive(Debug, Clone)]
pub struct PlaceConfig {
    /// Target number of (non-fill) standard cells.
    pub cells: usize,
    /// Number of block macros to drop in (0 for most testcases).
    pub macros: usize,
    /// Row utilization in percent (gaps are left empty — they split
    /// clusters).
    pub utilization: u32,
}

/// Creates the die, rows, track patterns and a dense row-based placement.
///
/// Cells are drawn from [`CELL_SPECS`] with a bias toward small cells,
/// packed left to right with occasional gaps (per `utilization`); rows
/// alternate `N`/`FS` orientation as in real designs. Macros (if any) are
/// placed in the lower-left region first and rows route around them.
#[must_use]
pub fn place_design(
    tech: &Tech,
    flavor: TechFlavor,
    cfg: &PlaceConfig,
    rng: &mut Rng,
    name: &str,
) -> Design {
    let p = flavor.params();
    let row_h = p.row_height;

    // Estimate die size for the requested cell count and utilization.
    let avg_sites: f64 = CELL_SPECS
        .iter()
        .filter(|s| s.output.is_some())
        .map(|s| f64::from(s.width_sites))
        .sum::<f64>()
        / CELL_SPECS.iter().filter(|s| s.output.is_some()).count() as f64;
    let total_sites = cfg.cells as f64 * avg_sites / (f64::from(cfg.utilization) / 100.0);
    let aspect = 1.1; // slightly wider than tall, like the paper's dies
    let rows = ((total_sites * f64::from(p.site_width as u32) / f64::from(row_h as u32) / aspect)
        .sqrt()
        .ceil() as i64)
        .max(2);
    let sites_per_row = ((total_sites / rows as f64).ceil() as i64).max(20);
    let die_w = sites_per_row * p.site_width;
    let die_h = rows * row_h;

    let mut design = Design::new(name, Rect::new(0, 0, die_w, die_h));
    design.dbu_per_micron = 1000;

    // Track patterns for every routing layer, spanning the die.
    for (li, layer) in tech.layers().iter().enumerate() {
        if layer.kind != LayerKind::Routing || layer.pitch == 0 {
            continue;
        }
        let id = pao_tech::LayerId(li as u32);
        let (extent, dir) = match layer.dir {
            Dir::Horizontal => (die_h, Dir::Horizontal),
            Dir::Vertical => (die_w, Dir::Vertical),
        };
        let count = ((extent - layer.offset) / layer.pitch + 1).max(1) as u32;
        design.tracks.push(TrackPattern::new(
            dir,
            layer.offset,
            layer.pitch,
            count,
            vec![id],
        ));
    }

    // Macros first (lower-left corner, spaced apart).
    let mut macro_boxes: Vec<Rect> = Vec::new();
    if cfg.macros > 0 {
        let ram = tech.macro_by_name("RAM16X4").unwrap_or_else(|| {
            panic!("tech lacks block macro RAM16X4; add it with add_block_macro")
        });
        for mi in 0..cfg.macros {
            let x = (mi as i64) * (ram.width + 4 * p.site_width);
            let y = 0;
            if x + ram.width > die_w {
                break;
            }
            let comp = Component::new(format!("ram{mi}"), "RAM16X4", Point::new(x, y), Orient::N);
            let bbox = Rect::new(x, y, x + ram.width, y + ram.height);
            macro_boxes.push(bbox.expanded(p.site_width));
            let mut comp = comp;
            comp.is_fixed = true;
            design.add_component(comp);
        }
    }

    // Rows and standard cells. Multi-height cells (height_rows > 1) are
    // placed at even rows in N orientation (so their internal rails match
    // the row rail pattern) and block the columns of the rows they span.
    let std_specs: Vec<_> = CELL_SPECS.iter().filter(|s| s.output.is_some()).collect();
    let mut placed = 0usize;
    let mut cell_id = 0usize;
    let mut blocked: Vec<Vec<(i64, i64)>> = vec![Vec::new(); rows as usize];
    for r in 0..rows {
        let y = r * row_h;
        let orient = if r % 2 == 0 { Orient::N } else { Orient::FS };
        design.rows.push(Row::new(
            format!("row_{r}"),
            "core",
            Point::new(0, y),
            orient,
            sites_per_row as u32,
            p.site_width,
            row_h,
        ));
        if placed >= cfg.cells {
            continue;
        }
        let mut col: i64 = 0;
        while col < sites_per_row && placed < cfg.cells {
            // Skip columns blocked by a multi-height cell from below.
            if let Some(&(_, hi)) = blocked[r as usize]
                .iter()
                .find(|&&(lo, hi)| col >= lo && col < hi)
            {
                col = hi;
                continue;
            }
            // Occasional gap per utilization.
            if rng.gen_range(0..100u32) >= cfg.utilization {
                col += i64::from(rng.gen_range(1..3u32));
                continue;
            }
            // Small-cell bias: pick two, keep the narrower most of the time.
            let mut spec = std_specs[rng.gen_range(0..std_specs.len())];
            let alt = std_specs[rng.gen_range(0..std_specs.len())];
            if alt.width_sites < spec.width_sites && rng.gen_range(0..100) < 60 {
                spec = alt;
            }
            let w_sites = i64::from(spec.width_sites);
            let h_rows = i64::from(spec.height_rows);
            if col + w_sites > sites_per_row {
                break;
            }
            // Multi-height constraints: even row, room above, N orient.
            if h_rows > 1 && (r % 2 != 0 || r + h_rows > rows || orient != Orient::N) {
                col += 1;
                continue;
            }
            // The whole span must be clear of blocks in this row too (a
            // wide cell could start left of a blocked range).
            if blocked[r as usize]
                .iter()
                .any(|&(lo, hi)| lo < col + w_sites && col < hi)
            {
                col += 1;
                continue;
            }
            let x = col * p.site_width;
            let bbox = Rect::new(x, y, x + w_sites * p.site_width, y + h_rows * row_h);
            if macro_boxes.iter().any(|m| m.overlaps(bbox)) {
                col += 1;
                continue;
            }
            // Upper rows must be clear of blocks (they cannot yet hold
            // cells — rows fill bottom-up — but may hold other MH blocks).
            let clear_above = (1..h_rows).all(|dr| {
                blocked[(r + dr) as usize]
                    .iter()
                    .all(|&(lo, hi)| hi <= col || lo >= col + w_sites)
            });
            if !clear_above {
                col += 1;
                continue;
            }
            for dr in 1..h_rows {
                blocked[(r + dr) as usize].push((col, col + w_sites));
            }
            design.add_component(Component::new(
                format!("u{cell_id}"),
                spec.name,
                Point::new(x, y),
                orient,
            ));
            cell_id += 1;
            placed += 1;
            col += w_sites;
        }
    }
    design
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_block_macro, add_std_cells};
    use crate::techs::make_tech;

    fn world(cells: usize, macros: usize) -> (Tech, Design) {
        let flavor = TechFlavor::N45;
        let mut tech = make_tech(flavor);
        add_std_cells(&mut tech, flavor);
        if macros > 0 {
            add_block_macro(&mut tech, flavor);
        }
        let mut rng = Rng::new(7);
        let cfg = PlaceConfig {
            cells,
            macros,
            utilization: 80,
        };
        let d = place_design(&tech, flavor, &cfg, &mut rng, "t");
        (tech, d)
    }

    #[test]
    fn places_requested_cell_count() {
        let (_, d) = world(200, 0);
        assert_eq!(d.components().len(), 200);
        assert!(!d.rows.is_empty());
        assert!(!d.tracks.is_empty());
    }

    #[test]
    fn placement_is_legal() {
        let (tech, d) = world(150, 0);
        let p = TechFlavor::N45.params();
        let mut boxes: Vec<Rect> = Vec::new();
        for c in d.components() {
            assert_eq!(c.location.x % p.site_width, 0, "site-aligned");
            assert_eq!(c.location.y % p.row_height, 0, "row-aligned");
            let b = c.bbox(&tech);
            assert!(d.die_area.contains_rect(b), "inside die");
            assert!(boxes.iter().all(|o| !o.overlaps(b)), "no overlap");
            boxes.push(b);
        }
    }

    #[test]
    fn rows_alternate_orientation() {
        let (_, d) = world(100, 0);
        assert_eq!(d.rows[0].orient, Orient::N);
        assert_eq!(d.rows[1].orient, Orient::FS);
    }

    #[test]
    fn macros_avoid_cell_overlap() {
        let (tech, d) = world(300, 2);
        let rams: Vec<Rect> = d
            .components()
            .iter()
            .filter(|c| c.master == "RAM16X4")
            .map(|c| c.bbox(&tech))
            .collect();
        assert_eq!(rams.len(), 2);
        for c in d.components().iter().filter(|c| c.master != "RAM16X4") {
            let b = c.bbox(&tech);
            assert!(rams.iter().all(|m| !m.overlaps(b)));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (_, d1) = world(120, 0);
        let (_, d2) = world(120, 0);
        assert_eq!(d1.components(), d2.components());
    }

    #[test]
    fn tracks_cover_every_routing_layer() {
        let (tech, d) = world(50, 0);
        let routing = tech.routing_layers();
        for id in routing {
            let dir = tech.layer(id).dir;
            assert!(
                !d.track_patterns_for(id, dir).is_empty(),
                "layer {id} lacks tracks"
            );
        }
    }
}
