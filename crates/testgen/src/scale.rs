//! Tiled scale-up cases: 20k / 200k / 1M-component designs.
//!
//! A scale case replicates an `ispd18s_test2`-sized tile on a
//! `tiles_x × tiles_y` grid. Every tile is generated independently with
//! its own RNG stream (placement gaps, cell mix and netlist all vary per
//! tile), then shifted into its grid slot. The DEF is **streamed**: the
//! writer holds at most one tile's design in memory at a time and
//! regenerates tiles per section pass, so emitting a million-component
//! DEF needs O(tile) memory, not O(design).
//!
//! Tiles abut exactly — the tile die width is a whole number of sites and
//! its height a whole number of rows — so the merged placement is legal
//! and rows/tracks stay on the uniform global grid. Track patterns span
//! the full die; a tile's offset against the global track grid varies by
//! grid slot, which multiplies unique-instance classes exactly the way a
//! real large placement does (bounded by pitch/site commensurability).

use crate::netlist::{build_netlist, NetlistConfig};
use crate::place::{place_design, PlaceConfig};
use crate::suite::SuiteCase;
use crate::techs::TechFlavor;
use pao_design::{Design, NetPin};
use pao_ptest::Rng;
use pao_tech::{LayerKind, Tech};
use std::io::{self, Write};

/// A tiled scale-up case.
#[derive(Debug, Clone)]
pub struct ScaleCase {
    /// Case name, e.g. `"scale_200k"`.
    pub name: String,
    /// Grid width in tiles.
    pub tiles_x: u32,
    /// Grid height in tiles.
    pub tiles_y: u32,
    /// Per-tile generation parameters (the `ispd18s_test2` shape).
    pub tile: SuiteCase,
}

/// The base tile: `ispd18s_test2`'s shape with no I/O pins (boundary
/// pins don't replicate meaningfully — interior tiles have no boundary).
fn base_tile(seed: u64) -> SuiteCase {
    SuiteCase {
        name: "tile".into(),
        flavor: TechFlavor::N45,
        cells: 1796,
        macros: 0,
        nets: 1842,
        io_pins: 0,
        utilization: 82,
        seed,
    }
}

/// The scale-up ladder: ~20k, ~200k and ~1M components.
#[must_use]
pub fn scale_cases() -> Vec<ScaleCase> {
    let mk = |name: &str, tiles_x: u32, tiles_y: u32| ScaleCase {
        name: name.into(),
        tiles_x,
        tiles_y,
        tile: base_tile(0x5CA1_E000 + u64::from(tiles_x) * 1000 + u64::from(tiles_y)),
    };
    vec![
        mk("scale_20k", 4, 3),
        mk("scale_200k", 11, 10),
        mk("scale_1m", 24, 24),
    ]
}

/// Resolves a scale case by name (`"scale_20k"`, `"scale_200k"`,
/// `"scale_1m"`).
#[must_use]
pub fn scaled_case_by_name(name: &str) -> Option<ScaleCase> {
    scale_cases().into_iter().find(|c| c.name == name)
}

/// The technology every scale case uses (the tile flavour's tech plus
/// its standard-cell library).
#[must_use]
pub fn scaled_tech(case: &ScaleCase) -> Tech {
    let mut tech = crate::techs::make_tech(case.tile.flavor);
    crate::cells::add_std_cells(&mut tech, case.tile.flavor);
    tech
}

/// Per-tile RNG seed: decorrelates tiles so placements and netlists
/// differ per grid slot while staying deterministic in the case seed.
fn tile_seed(case: &ScaleCase, tx: u32, ty: u32) -> u64 {
    let slot = u64::from(ty) * u64::from(case.tiles_x) + u64::from(tx);
    case.tile
        .seed
        .wrapping_add(slot.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One tile's placement (no netlist) — the COMPONENTS-pass workhorse.
fn tile_placed(tech: &Tech, case: &ScaleCase, tx: u32, ty: u32) -> Design {
    let mut rng = Rng::new(tile_seed(case, tx, ty));
    place_design(
        tech,
        case.tile.flavor,
        &PlaceConfig {
            cells: case.tile.cells,
            macros: 0,
            utilization: case.tile.utilization,
        },
        &mut rng,
        "tile",
    )
}

/// One tile's placement plus netlist — the NETS-pass workhorse. The
/// netlist builder continues the placement RNG stream exactly as
/// [`crate::generate`] does, so a tile is reproducible in isolation.
fn tile_full(tech: &Tech, case: &ScaleCase, tx: u32, ty: u32) -> Design {
    let mut rng = Rng::new(tile_seed(case, tx, ty));
    let mut design = place_design(
        tech,
        case.tile.flavor,
        &PlaceConfig {
            cells: case.tile.cells,
            macros: 0,
            utilization: case.tile.utilization,
        },
        &mut rng,
        "tile",
    );
    build_netlist(
        tech,
        &mut design,
        &NetlistConfig {
            nets: case.tile.nets,
            io_pins: 0,
        },
        &mut rng,
    );
    design
}

/// Streams a scale case as DEF text. Returns `(components, nets)`
/// totals.
///
/// Three passes over the tile grid keep memory at O(tile):
///
/// 1. a **count** pass (full generation, discarded) fills in the
///    `COMPONENTS`/`NETS` section headers so the streaming parser can
///    pre-size its tables;
/// 2. a **components** pass (placement only) emits each tile's
///    components shifted into its grid slot, names prefixed
///    `t<tx>_<ty>_`;
/// 3. a **nets** pass (full generation) emits each tile's netlist with
///    the same prefix.
///
/// Passes regenerate tiles deterministically instead of caching them —
/// generation is cheap, a million resident components are not.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_scaled_def<W: Write>(
    tech: &Tech,
    case: &ScaleCase,
    out: &mut W,
) -> io::Result<(usize, usize)> {
    let params = case.tile.flavor.params();
    let tile0 = tile_placed(tech, case, 0, 0);
    let tile_w = tile0.die_area.width();
    let tile_h = tile0.die_area.height();
    let rows_per_tile = tile0.rows.len() as u32;
    let sites_per_row = tile0.rows.first().map_or(0, |r| r.num_sites);
    drop(tile0);
    let die_w = tile_w * i64::from(case.tiles_x);
    let die_h = tile_h * i64::from(case.tiles_y);

    // Pass 1: totals for the section headers.
    let mut total_comps = 0usize;
    let mut total_nets = 0usize;
    for ty in 0..case.tiles_y {
        for tx in 0..case.tiles_x {
            let t = tile_full(tech, case, tx, ty);
            total_comps += t.components().len();
            total_nets += t.nets().len();
        }
    }

    writeln!(out, "VERSION 5.8 ;")?;
    writeln!(out, "DESIGN {} ;", case.name)?;
    writeln!(out, "UNITS DISTANCE MICRONS 1000 ;")?;
    writeln!(out, "DIEAREA ( 0 0 ) ( {die_w} {die_h} ) ;")?;
    // Rows: per tile, preserving each tile's exact row grid (names stay
    // unique via the tile prefix).
    for ty in 0..case.tiles_y {
        for tx in 0..case.tiles_x {
            let x0 = i64::from(tx) * tile_w;
            let y0 = i64::from(ty) * tile_h;
            for r in 0..rows_per_tile {
                let orient = if r % 2 == 0 { "N" } else { "FS" };
                writeln!(
                    out,
                    "ROW row_t{tx}_{ty}_{r} core {x0} {} {orient} DO {sites_per_row} BY 1 STEP {} 0 ;",
                    y0 + i64::from(r) * params.row_height,
                    params.site_width
                )?;
            }
        }
    }
    // Tracks: one uniform global pattern per routing layer, the same
    // offset/pitch the tile generator uses, extended to the full die.
    for layer in tech.layers() {
        if layer.kind != LayerKind::Routing || layer.pitch == 0 {
            continue;
        }
        let (axis, extent) = match layer.dir {
            pao_geom::Dir::Horizontal => ("Y", die_h),
            pao_geom::Dir::Vertical => ("X", die_w),
        };
        let count = ((extent - layer.offset) / layer.pitch + 1).max(1);
        writeln!(
            out,
            "TRACKS {axis} {} DO {count} STEP {} LAYER {} ;",
            layer.offset, layer.pitch, layer.name
        )?;
    }

    // Pass 2: components.
    writeln!(out, "COMPONENTS {total_comps} ;")?;
    for ty in 0..case.tiles_y {
        for tx in 0..case.tiles_x {
            let x0 = i64::from(tx) * tile_w;
            let y0 = i64::from(ty) * tile_h;
            let t = tile_placed(tech, case, tx, ty);
            for c in t.components() {
                writeln!(
                    out,
                    " - t{tx}_{ty}_{} {} + PLACED ( {} {} ) {} ;",
                    c.name,
                    c.master,
                    c.location.x + x0,
                    c.location.y + y0,
                    c.orient
                )?;
            }
        }
    }
    writeln!(out, "END COMPONENTS")?;
    writeln!(out, "PINS 0 ;")?;
    writeln!(out, "END PINS")?;

    // Pass 3: nets.
    writeln!(out, "NETS {total_nets} ;")?;
    for ty in 0..case.tiles_y {
        for tx in 0..case.tiles_x {
            let t = tile_full(tech, case, tx, ty);
            for n in t.nets() {
                write!(out, " - t{tx}_{ty}_{}", n.name)?;
                for pin in &n.pins {
                    match pin {
                        NetPin::Comp { comp, pin } => {
                            write!(out, " ( t{tx}_{ty}_{} {} )", t.component(*comp).name, pin)?;
                        }
                        // io_pins is 0 for scale tiles; nothing to map.
                        NetPin::Io { .. } => {}
                    }
                }
                writeln!(out, " ;")?;
            }
        }
    }
    writeln!(out, "END NETS")?;
    writeln!(out, "END DESIGN")?;
    Ok((total_comps, total_nets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_design::def::{parse_def, write_def};

    /// A miniature scale case so tests stay fast: 2×2 grid of 150-cell
    /// tiles.
    fn mini() -> ScaleCase {
        ScaleCase {
            name: "scale_mini".into(),
            tiles_x: 2,
            tiles_y: 2,
            tile: SuiteCase {
                cells: 150,
                nets: 120,
                ..base_tile(77)
            },
        }
    }

    #[test]
    fn ladder_has_three_sizes() {
        let cases = scale_cases();
        assert_eq!(cases.len(), 3);
        assert!(scaled_case_by_name("scale_20k").is_some());
        assert!(scaled_case_by_name("scale_1m").is_some());
        assert!(scaled_case_by_name("nope").is_none());
        let c20 = scaled_case_by_name("scale_20k").unwrap();
        let n = c20.tiles_x as usize * c20.tiles_y as usize * c20.tile.cells;
        assert!((18_000..25_000).contains(&n), "{n}");
        let c1m = scaled_case_by_name("scale_1m").unwrap();
        let n = c1m.tiles_x as usize * c1m.tiles_y as usize * c1m.tile.cells;
        assert!(n >= 1_000_000, "{n}");
    }

    #[test]
    fn streamed_def_parses_with_legal_tiling() {
        let case = mini();
        let tech = scaled_tech(&case);
        let mut buf = Vec::new();
        let (comps, nets) = write_scaled_def(&tech, &case, &mut buf).unwrap();
        assert_eq!(comps, 600);
        assert!(nets > 200, "{nets}");
        let text = String::from_utf8(buf).unwrap();
        let d = parse_def(&text, &tech).unwrap();
        assert_eq!(d.components().len(), comps);
        assert_eq!(d.nets().len(), nets);
        assert!(!d.tracks.is_empty());
        // Tiles must abut without overlapping: all placements legal.
        let mut boxes: Vec<pao_geom::Rect> = Vec::new();
        for c in d.components() {
            let b = c.bbox(&tech);
            assert!(d.die_area.contains_rect(b), "inside die: {}", c.name);
            assert!(
                boxes.iter().all(|o| !o.overlaps(b)),
                "overlap at {}",
                c.name
            );
            boxes.push(b);
        }
        // Tiles differ: tile (0,0) and (1,0) place different cell mixes.
        let sig = |tx: u32| -> Vec<&str> {
            d.components()
                .iter()
                .filter(|c| c.name.starts_with(&format!("t{tx}_0_")))
                .take(20)
                .map(|c| c.master.as_str())
                .collect()
        };
        assert_ne!(sig(0), sig(1), "tiles should vary per slot");
    }

    #[test]
    fn streaming_is_deterministic() {
        let case = mini();
        let tech = scaled_tech(&case);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_scaled_def(&tech, &case, &mut a).unwrap();
        write_scaled_def(&tech, &case, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_then_rewrite_is_stable() {
        // The writer's normal form is a fixed point: parse → write →
        // parse → write is byte-identical.
        let case = mini();
        let tech = scaled_tech(&case);
        let mut buf = Vec::new();
        write_scaled_def(&tech, &case, &mut buf).unwrap();
        let d1 = parse_def(&String::from_utf8(buf).unwrap(), &tech).unwrap();
        let w1 = write_def(&d1, &tech);
        let d2 = parse_def(&w1, &tech).unwrap();
        let w2 = write_def(&d2, &tech);
        assert_eq!(w1, w2);
    }

    #[test]
    fn benchmark_size_roundtrip_byte_identical() {
        // The suite-size (~1.8k component) writer output survives a
        // parse → rewrite cycle byte-identically.
        let case = crate::case_by_name("ispd18s_test2").unwrap();
        let (tech, design) = crate::generate(&case);
        let w1 = write_def(&design, &tech);
        let d = parse_def(&w1, &tech).unwrap();
        assert_eq!(d.components().len(), design.components().len());
        assert_eq!(w1, write_def(&d, &tech));
    }

    #[test]
    fn scale_20k_roundtrip_byte_identical() {
        // The streamed 20k-component DEF parses back to a database whose
        // canonical rewrite is a fixed point — the same writer contract
        // the in-memory path has, at real scale.
        let case = scaled_case_by_name("scale_20k").unwrap();
        let tech = scaled_tech(&case);
        let mut buf = Vec::new();
        let (comps, _) = write_scaled_def(&tech, &case, &mut buf).unwrap();
        assert!(comps > 20_000, "{comps}");
        let d1 = parse_def(&String::from_utf8(buf).unwrap(), &tech).unwrap();
        assert_eq!(d1.components().len(), comps);
        let w1 = write_def(&d1, &tech);
        let d2 = parse_def(&w1, &tech).unwrap();
        assert_eq!(w1, write_def(&d2, &tech));
    }
}
