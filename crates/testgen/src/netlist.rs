//! Random netlist generator with placement locality.

use pao_design::{CompId, Design, IoPin, Net, NetPin};
use pao_geom::{Orient, Point, Rect};
use pao_ptest::Rng;
use pao_tech::{PinDir, Symbol, Tech};

/// Netlist parameters.
#[derive(Debug, Clone)]
pub struct NetlistConfig {
    /// Target number of signal nets (bounded by the number of driver
    /// pins available).
    pub nets: usize,
    /// Number of design I/O pins to create and attach to nets.
    pub io_pins: usize,
}

/// Builds a random netlist over the placed design: each net has one driver
/// (an output pin) and 1–4 sinks (input pins of instances within a local
/// window), mimicking the short-net locality of placed designs. Every
/// instance pin joins at most one net. A share of nets additionally get a
/// design I/O pin on the die boundary.
pub fn build_netlist(tech: &Tech, design: &mut Design, cfg: &NetlistConfig, rng: &mut Rng) {
    // Collect drivers (output pins) and sinks (input pins) per component.
    let mut drivers: Vec<(CompId, Symbol)> = Vec::new();
    let mut sinks: Vec<(CompId, Symbol, Point)> = Vec::new();
    for (ci, comp) in design.components().iter().enumerate() {
        let Some(master) = comp.master_in(tech) else {
            continue;
        };
        let id = CompId(ci as u32);
        for pin in master.signal_pins() {
            match pin.dir {
                PinDir::Output => drivers.push((id, pin.name)),
                PinDir::Input | PinDir::Inout => {
                    sinks.push((id, pin.name, comp.location));
                }
            }
        }
    }
    // Spatial buckets of sinks for locality lookups. Placed designs have
    // short nets; a ~4 µm window keeps routed wirelength (and congestion)
    // realistic so Experiment 3's DRC counts reflect pin access, not
    // router overload.
    let bucket = 4_000i64;
    let mut grid: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (si, &(_, _, loc)) in sinks.iter().enumerate() {
        grid.entry((loc.x / bucket, loc.y / bucket))
            .or_default()
            .push(si);
    }
    let mut sink_used = vec![false; sinks.len()];

    // I/O pins spread along the die boundary on metal2/metal3.
    let m2 = tech.layer_id("metal2");
    let m3 = tech.layer_id("metal3");
    let die = design.die_area;
    let pad = tech.layer_by_name("metal2").map_or(100, |l| l.width * 2);
    let mut io_indices = Vec::new();
    for i in 0..cfg.io_pins {
        let (layer, loc) = match i % 4 {
            0 => (m2, Point::new(die.xlo(), die.ylo() + (i as i64 + 1) * 3000)),
            1 => (m2, Point::new(die.xhi(), die.ylo() + (i as i64 + 1) * 3000)),
            2 => (m3, Point::new(die.xlo() + (i as i64 + 1) * 3000, die.ylo())),
            _ => (m3, Point::new(die.xlo() + (i as i64 + 1) * 3000, die.yhi())),
        };
        let Some(layer) = layer else { continue };
        let loc = Point::new(
            loc.x.clamp(die.xlo(), die.xhi()),
            loc.y.clamp(die.ylo(), die.yhi()),
        );
        let name = format!("io{i}");
        let pin = IoPin::new(
            name.clone(),
            name,
            layer,
            Rect::new(-pad, -pad, pad, pad),
            loc,
            Orient::N,
        );
        io_indices.push(design.add_io_pin(pin));
    }

    // Shuffle drivers deterministically.
    for i in (1..drivers.len()).rev() {
        drivers.swap(i, rng.gen_range(0..=i));
    }
    let mut io_iter = io_indices.into_iter();
    let mut net_id = 0usize;
    for (comp, pin) in drivers.into_iter().take(cfg.nets) {
        let loc = design.component(comp).location;
        let mut net = Net::new(format!("n{net_id}"));
        net.pins.push(NetPin::Comp { comp, pin });
        // Gather unused sinks near the driver (3×3 bucket window).
        let fanout = rng.gen_range(1..=3usize);
        let (bx, by) = (loc.x / bucket, loc.y / bucket);
        let mut candidates: Vec<usize> = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(v) = grid.get(&(bx + dx, by + dy)) {
                    candidates.extend(v.iter().copied().filter(|&s| !sink_used[s]));
                }
            }
        }
        for _ in 0..fanout {
            if candidates.is_empty() {
                break;
            }
            let k = rng.gen_range(0..candidates.len());
            let si = candidates.swap_remove(k);
            if sink_used[si] {
                continue;
            }
            sink_used[si] = true;
            let (scomp, spin, _) = &sinks[si];
            if *scomp == comp {
                continue; // avoid trivial self-loop nets
            }
            net.pins.push(NetPin::Comp {
                comp: *scomp,
                pin: *spin,
            });
        }
        if net.degree() < 2 {
            // Attach an I/O pin if available, else drop the net.
            if let Some(io) = io_iter.next() {
                net.pins.push(NetPin::Io { index: io });
            } else {
                continue;
            }
        } else if net_id.is_multiple_of(29) {
            if let Some(io) = io_iter.next() {
                net.pins.push(NetPin::Io { index: io });
            }
        }
        design.add_net(net);
        net_id += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::add_std_cells;
    use crate::place::{place_design, PlaceConfig};
    use crate::techs::{make_tech, TechFlavor};
    use std::collections::HashSet;

    fn world(cells: usize, nets: usize, io: usize) -> (Tech, Design) {
        let flavor = TechFlavor::N45;
        let mut tech = make_tech(flavor);
        add_std_cells(&mut tech, flavor);
        let mut rng = Rng::new(11);
        let mut d = place_design(
            &tech,
            flavor,
            &PlaceConfig {
                cells,
                macros: 0,
                utilization: 80,
            },
            &mut rng,
            "t",
        );
        build_netlist(
            &tech,
            &mut d,
            &NetlistConfig { nets, io_pins: io },
            &mut rng,
        );
        (tech, d)
    }

    #[test]
    fn nets_have_driver_and_sinks() {
        let (tech, d) = world(300, 250, 20);
        assert!(d.nets().len() > 150, "{}", d.nets().len());
        for net in d.nets() {
            assert!(net.degree() >= 2, "{}", net.name);
            // Exactly one driver.
            let drivers = net
                .comp_pins()
                .filter(|(c, p)| {
                    let m = d.component(*c).master_in(&tech).unwrap();
                    m.pin(p).unwrap().dir == PinDir::Output
                })
                .count();
            assert_eq!(drivers, 1, "{}", net.name);
        }
    }

    #[test]
    fn each_pin_in_at_most_one_net() {
        let (_, d) = world(300, 250, 20);
        let mut seen: HashSet<(CompId, Symbol)> = HashSet::new();
        for net in d.nets() {
            for (c, p) in net.comp_pins() {
                assert!(seen.insert((c, p)), "pin reused: {c} {p}");
            }
        }
    }

    #[test]
    fn io_pins_on_die_boundary() {
        let (_, d) = world(200, 150, 12);
        assert!(!d.io_pins().is_empty());
        let die = d.die_area;
        for p in d.io_pins() {
            let on_edge = p.location.x == die.xlo()
                || p.location.x == die.xhi()
                || p.location.y == die.ylo()
                || p.location.y == die.yhi();
            assert!(on_edge, "{} at {}", p.name, p.location);
        }
    }

    #[test]
    fn deterministic() {
        let (_, d1) = world(150, 120, 8);
        let (_, d2) = world(150, 120, 8);
        assert_eq!(d1.nets(), d2.nets());
    }
}
