//! Synthetic standard-cell library generator.
//!
//! Cells are single-height masters with vertical metal1 pin bars. Four pin
//! geometry variants (chosen deterministically per pin) exercise the
//! paper's access mechanisms:
//!
//! * **tall** — spans several tracks with full via-enclosure margin: easy,
//!   on-track access;
//! * **medium** — fewer tracks, still nested;
//! * **sliver** — the lowest track's bar-via enclosure overhangs the pin
//!   bottom by less than `MINSTEP`: the on-track point there is dirty
//!   (paper Fig. 3) and validation must reject it;
//! * **wide-short** — a wide pin *between* tracks: access requires
//!   off-track (half-track / shape-center) preferred-direction
//!   coordinates.

use crate::techs::{TechFlavor, TechParams};
use pao_geom::{Dbu, Point, Polygon, Rect};
use pao_tech::{LayerId, Macro, MacroClass, Pin, PinDir, PinUse, Port, Tech};

/// Static description of one library cell.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Master name.
    pub name: &'static str,
    /// Width in placement sites.
    pub width_sites: u32,
    /// Height in rows (1 = single-height; the paper lists multi-height
    /// support as future work — the double-height flop exercises it).
    pub height_rows: u32,
    /// Input pin names.
    pub inputs: &'static [&'static str],
    /// Output pin name (`None` for fill cells).
    pub output: Option<&'static str>,
}

/// The library's cell set (a typical small std-cell kit). `DFFX2MH` is a
/// double-height flop.
pub const CELL_SPECS: [CellSpec; 13] = [
    CellSpec {
        name: "INVX1",
        width_sites: 3,
        height_rows: 1,
        inputs: &["A"],
        output: Some("Y"),
    },
    CellSpec {
        name: "INVX2",
        width_sites: 4,
        height_rows: 1,
        inputs: &["A"],
        output: Some("Y"),
    },
    CellSpec {
        name: "BUFX2",
        width_sites: 4,
        height_rows: 1,
        inputs: &["A"],
        output: Some("Y"),
    },
    CellSpec {
        name: "NAND2X1",
        width_sites: 5,
        height_rows: 1,
        inputs: &["A", "B"],
        output: Some("Y"),
    },
    CellSpec {
        name: "NOR2X1",
        width_sites: 5,
        height_rows: 1,
        inputs: &["A", "B"],
        output: Some("Y"),
    },
    CellSpec {
        name: "AND2X1",
        width_sites: 6,
        height_rows: 1,
        inputs: &["A", "B"],
        output: Some("Y"),
    },
    CellSpec {
        name: "XOR2X1",
        width_sites: 8,
        height_rows: 1,
        inputs: &["A", "B"],
        output: Some("Y"),
    },
    CellSpec {
        name: "OAI21X1",
        width_sites: 7,
        height_rows: 1,
        inputs: &["A", "B", "C"],
        output: Some("Y"),
    },
    CellSpec {
        name: "AOI21X1",
        width_sites: 7,
        height_rows: 1,
        inputs: &["A", "B", "C"],
        output: Some("Y"),
    },
    CellSpec {
        name: "MUX2X1",
        width_sites: 8,
        height_rows: 1,
        inputs: &["A", "B", "S"],
        output: Some("Y"),
    },
    CellSpec {
        name: "DFFX1",
        width_sites: 10,
        height_rows: 1,
        inputs: &["D", "CK"],
        output: Some("Q"),
    },
    CellSpec {
        name: "DFFX2MH",
        width_sites: 6,
        height_rows: 2,
        inputs: &["D", "CK", "SE"],
        output: Some("Q"),
    },
    CellSpec {
        name: "FILLX1",
        width_sites: 1,
        height_rows: 1,
        inputs: &[],
        output: None,
    },
];

/// The local y coordinate of reference M1 track `k` (0-based) in a cell.
fn track(p: &TechParams, k: i64) -> Dbu {
    p.m1_offset + k * p.m1_pitch
}

/// Site columns the pins of cell `ci` occupy: spread over the cell width
/// with the first pin in column 0. Odd-indexed cells put their last pin in
/// the last column (hugging the right edge, where it can conflict with the
/// abutting neighbor's first pin — the inter-cell case BCA exists for);
/// even-indexed cells inset it by one site.
fn pin_columns(spec: &CellSpec, ci: usize) -> Vec<u32> {
    let n = (spec.inputs.len() + usize::from(spec.output.is_some())) as u32;
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![spec.width_sites / 2];
    }
    let last = if ci % 2 == 1 || spec.width_sites < 3 {
        spec.width_sites - 1
    } else {
        spec.width_sites - 2
    };
    (0..n).map(|pi| pi * last / (n - 1)).collect()
}

/// Builds the vertical pin bar (or wide pad) for pin `variant` centered at
/// x = `cx`, returning the port geometry.
fn pin_geometry(p: &TechParams, m1: LayerId, cx: Dbu, variant: u32) -> Port {
    let hw = p.width / 2;
    match variant % 4 {
        // Tall bar: tracks 2..6 with full bar-via margin.
        0 => Port::rects(
            m1,
            vec![Rect::new(
                cx - hw,
                track(p, 2) - p.bar_long,
                cx + hw,
                track(p, 6) + p.bar_long,
            )],
        ),
        // Medium bar: tracks 3..5.
        1 => Port::rects(
            m1,
            vec![Rect::new(
                cx - hw,
                track(p, 3) - p.bar_long,
                cx + hw,
                track(p, 5) + p.bar_long,
            )],
        ),
        // Sliver bar: the bar-via at track 2 overhangs the pin bottom by
        // min_step/2 — a dirty on-track candidate.
        2 => Port::rects(
            m1,
            vec![Rect::new(
                cx - hw,
                track(p, 2) - p.bar_long + p.min_step / 2,
                cx + hw,
                track(p, 5) + p.bar_long,
            )],
        ),
        // Wide-short pad between tracks 5 and 6, as an L-shaped polygon:
        // a wide head (fits the wide via) with a narrow bar foot. When the
        // site is too narrow for the head (14 nm flavour), fall back to a
        // medium bar — off-track access there comes from track-phase
        // misalignment instead.
        _ => {
            let wide = p.enc_long * 2 + p.min_step;
            if wide / 2 > p.site_width - p.width / 2 - p.spacing {
                return pin_geometry(p, m1, cx, 1);
            }
            let head_ylo = track(p, 5) + p.spacing / 2;
            let head_yhi = track(p, 6) - p.spacing / 2;
            let foot_ylo = track(p, 3) - p.bar_long;
            let poly = Polygon::new(vec![
                Point::new(cx - hw, foot_ylo),
                Point::new(cx + hw, foot_ylo),
                Point::new(cx + hw, head_ylo),
                Point::new(cx + wide / 2, head_ylo),
                Point::new(cx + wide / 2, head_yhi),
                Point::new(cx - wide / 2, head_yhi),
                Point::new(cx - wide / 2, head_ylo),
                Point::new(cx - hw, head_ylo),
            ])
            .unwrap_or_else(|e| panic!("wide-short pin polygon is rectilinear: {e}"));
            Port {
                layer: m1,
                rects: Vec::new(),
                polygons: vec![poly],
            }
        }
    }
}

/// Adds the full standard-cell library for `flavor` to `tech`.
///
/// Pin bars are placed on per-site columns: the first pin occupies the
/// first column and the last pin the last column, so neighboring cells'
/// boundary pins sit one site apart — the inter-cell conflict the
/// cluster-selection step must resolve.
///
/// # Panics
///
/// Panics if `tech` lacks the `metal1`/`metal2` layers (build it with
/// [`make_tech`](crate::techs::make_tech)).
pub fn add_std_cells(tech: &mut Tech, flavor: TechFlavor) {
    let p = flavor.params();
    let m1 = tech
        .layer_id("metal1")
        .unwrap_or_else(|| panic!("tech lacks metal1; build it with make_tech"));
    let m2 = tech
        .layer_id("metal2")
        .unwrap_or_else(|| panic!("tech lacks metal2; build it with make_tech"));
    let height = p.row_height;
    for (ci, spec) in CELL_SPECS.iter().enumerate() {
        let width = Dbu::from(spec.width_sites) * p.site_width;
        let cell_height = Dbu::from(spec.height_rows) * height;
        let mut m = Macro::new(spec.name, width, cell_height);
        m.class = MacroClass::Core;
        m.site = Some("core".into());

        let pin_names: Vec<&str> = spec.inputs.iter().copied().chain(spec.output).collect();
        let cols = pin_columns(spec, ci);
        for (pi, name) in pin_names.iter().enumerate() {
            let col = cols[pi];
            let cx = Dbu::from(col) * p.site_width + p.site_width / 2;
            // Multi-height cells put odd pins in the upper row half.
            let row_shift = if spec.height_rows > 1 && pi % 2 == 1 {
                height
            } else {
                0
            };
            let mut variant = (ci as u32 + pi as u32) % 4;
            // Wide-short heads extend past their site column; at a cell
            // boundary they would violate spacing against the abutting
            // neighbor's boundary pin, so boundary columns fall back to a
            // bar variant.
            if variant == 3 && (col == 0 || col == spec.width_sites - 1) {
                variant = 1;
            }
            let mut port = pin_geometry(&p, m1, cx, variant);
            if row_shift > 0 {
                port.rects = port
                    .rects
                    .iter()
                    .map(|r| r.translated(Point::new(0, row_shift)))
                    .collect();
                port.polygons = port
                    .polygons
                    .iter()
                    .map(|poly| {
                        Polygon::new(
                            poly.vertices()
                                .iter()
                                .map(|&v| v + Point::new(0, row_shift))
                                .collect(),
                        )
                        .unwrap_or_else(|e| panic!("translated polygon stays valid: {e}"))
                    })
                    .collect();
            }
            let dir = if Some(*name) == spec.output {
                PinDir::Output
            } else {
                PinDir::Input
            };
            m.pins.push(Pin::new(*name, dir, vec![port]));
        }

        // Power rails on M1 along every row boundary, alternating
        // ground/power (so multi-height cells match the row rail pattern).
        let rail = p.width;
        for r in 0..=spec.height_rows {
            let y = Dbu::from(r) * height;
            let ground = r % 2 == 0;
            let mut pin = Pin::new(
                if ground {
                    format!("VSS{r}")
                } else {
                    format!("VDD{r}")
                },
                PinDir::Inout,
                vec![Port::rects(
                    m1,
                    vec![Rect::new(0, y - rail / 2, width, y + rail / 2)],
                )],
            );
            pin.use_ = if ground {
                PinUse::Ground
            } else {
                PinUse::Power
            };
            m.pins.push(pin);
        }

        // Larger cells carry an internal M2 obstruction strip over a
        // column at least two sites away from every pin (so no pin is
        // fully blocked), knocking out some nearby up-via tops.
        if spec.width_sites >= 6 && spec.output.is_some() {
            let pin_cols = pin_columns(spec, ci);
            let obs_col =
                (0..spec.width_sites).find(|c| pin_cols.iter().all(|&pc| c.abs_diff(pc) >= 2));
            if let Some(col) = obs_col {
                let cx = Dbu::from(col) * p.site_width + p.site_width / 4;
                m.obs.push((
                    m2,
                    Rect::new(
                        cx - p.width / 2,
                        track(&p, 2),
                        cx + p.width / 2,
                        track(&p, 6),
                    ),
                ));
            }
        }
        tech.add_macro(m);
    }
}

/// Adds a block macro (memory-like) used by the testcases with macros.
/// Pins are on metal4 along the top edge (planar access); metal1–3 under
/// the block are obstructed except for a boundary margin.
pub fn add_block_macro(tech: &mut Tech, flavor: TechFlavor) {
    let p = flavor.params();
    let m4 = tech
        .layer_id("metal4")
        .unwrap_or_else(|| panic!("tech lacks metal4; build it with make_tech"));
    let width = 30 * p.site_width;
    let height = 6 * p.row_height;
    let mut m = Macro::new("RAM16X4", width, height);
    m.class = MacroClass::Block;
    for i in 0..8u32 {
        let cx = Dbu::from(i + 1) * width / 9;
        let pad = p.width * 2;
        m.pins.push(Pin::new(
            format!("D{i}"),
            if i < 4 { PinDir::Input } else { PinDir::Output },
            vec![Port::rects(
                m4,
                vec![Rect::new(
                    cx - pad,
                    height - 3 * pad,
                    cx + pad,
                    height - pad,
                )],
            )],
        ));
    }
    for (li, lname) in ["metal1", "metal2", "metal3"].iter().enumerate() {
        let layer = tech
            .layer_id(lname)
            .unwrap_or_else(|| panic!("tech lacks {lname}; build it with make_tech"));
        let margin = p.spacing * (li as Dbu + 2);
        m.obs.push((
            layer,
            Rect::new(margin, margin, width - margin, height - margin),
        ));
    }
    tech.add_macro(m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::techs::make_tech;

    fn lib(flavor: TechFlavor) -> Tech {
        let mut t = make_tech(flavor);
        add_std_cells(&mut t, flavor);
        t
    }

    #[test]
    fn library_has_all_cells() {
        for flavor in [
            TechFlavor::N45,
            TechFlavor::N32A,
            TechFlavor::N32B,
            TechFlavor::N14,
        ] {
            let t = lib(flavor);
            for spec in &CELL_SPECS {
                let m = t
                    .macro_by_name(spec.name)
                    .unwrap_or_else(|| panic!("{}", spec.name));
                assert_eq!(m.height, i64::from(spec.height_rows) * flavor.row_height());
                assert_eq!(
                    m.width,
                    i64::from(spec.width_sites) * flavor.params().site_width
                );
                // Signal pins + one rail per row boundary.
                let expected = spec.inputs.len() + usize::from(spec.output.is_some());
                assert_eq!(m.signal_pins().count(), expected, "{}", spec.name);
                assert_eq!(m.pins.len(), expected + spec.height_rows as usize + 1);
            }
        }
    }

    #[test]
    fn pins_inside_cell_and_off_rails() {
        let flavor = TechFlavor::N45;
        let p = flavor.params();
        let t = lib(flavor);
        for spec in &CELL_SPECS {
            let m = t.macro_by_name(spec.name).unwrap();
            for pin in m.signal_pins() {
                let bbox = pin.bbox().unwrap();
                assert!(
                    bbox.xlo() >= 0 && bbox.xhi() <= m.width,
                    "{} {}",
                    spec.name,
                    pin.name
                );
                // Clear of the rails by at least a spacing.
                assert!(
                    bbox.ylo() >= p.width / 2 + p.spacing,
                    "{} {}",
                    spec.name,
                    pin.name
                );
                assert!(bbox.yhi() <= m.height - p.width / 2 - p.spacing);
            }
        }
    }

    #[test]
    fn boundary_pins_hug_cell_edges() {
        let t = lib(TechFlavor::N45);
        let p = TechFlavor::N45.params();
        let nand = t.macro_by_name("NAND2X1").unwrap();
        let a = nand.pin("A").unwrap().bbox().unwrap();
        let y = nand.pin("Y").unwrap().bbox().unwrap();
        // First pin in the first site column, output in the last.
        assert!(a.center().x < p.site_width);
        assert!(y.center().x > nand.width - p.site_width);
    }

    #[test]
    fn wide_short_variant_is_polygonal() {
        let t = lib(TechFlavor::N45);
        // Variant 3 occurs when (cell_idx + pin_idx) % 4 == 3 on an
        // interior column: MUX2X1 is cell 9, pin S (index 2, column 4).
        let mux = t.macro_by_name("MUX2X1").unwrap();
        let s = mux.pin("S").unwrap();
        assert_eq!(s.ports[0].polygons.len(), 1);
        let flat = s.ports[0].flat_rects();
        assert!(flat.len() >= 2, "T-shape decomposes into several rects");
        // Boundary-column pins never use the wide head: NAND2X1 pin A
        // (cell 3, pin 0, column 0) falls back to a bar.
        let nand = t.macro_by_name("NAND2X1").unwrap();
        assert!(nand.pin("A").unwrap().ports[0].polygons.is_empty());
    }

    #[test]
    fn block_macro_has_m4_pins_and_obstructions() {
        let mut t = make_tech(TechFlavor::N45);
        add_block_macro(&mut t, TechFlavor::N45);
        let ram = t.macro_by_name("RAM16X4").unwrap();
        assert_eq!(ram.class, MacroClass::Block);
        assert_eq!(ram.signal_pins().count(), 8);
        assert_eq!(ram.obs.len(), 3);
        let m4 = t.layer_id("metal4").unwrap();
        assert!(ram.pins.iter().all(|p| p.ports[0].layer == m4));
    }

    #[test]
    fn sliver_variant_overhangs_by_half_min_step() {
        // INVX1 is cell 0; pin Y is index 1 → variant 1 (medium); cell 2
        // (BUFX2) pin A index 0 → variant 2 (sliver).
        let flavor = TechFlavor::N45;
        let p = flavor.params();
        let t = lib(flavor);
        let buf = t.macro_by_name("BUFX2").unwrap();
        let a = buf.pin("A").unwrap().bbox().unwrap();
        // Bar-via at track 2 would span [track2 − bar_long, track2 + bar_long];
        // the pin bottom is min_step/2 above that span's bottom.
        let enc_bottom = p.m1_offset + 2 * p.m1_pitch - p.bar_long;
        assert_eq!(a.ylo() - enc_bottom, p.min_step / 2);
    }
}
