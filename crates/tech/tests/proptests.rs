//! Property-based tests: LEF round-trips and rule-table invariants.

use pao_geom::{Dir, Rect};
use pao_tech::{lef, Layer, Macro, Pin, PinDir, Port, SpacingTable, Tech, ViaDef};
use proptest::prelude::*;

/// Strategy: a random but structurally valid 2–4 routing-layer tech.
fn arb_tech() -> impl Strategy<Value = Tech> {
    (
        2usize..5,                                           // routing layers
        50i64..200,                                          // width
        50i64..300,                                          // spacing
        100i64..500,                                         // pitch
        prop::collection::vec((1i64..300, 1i64..300), 1..4), // macro pin sizes
    )
        .prop_map(|(nl, width, spacing, pitch, pins)| {
            let mut t = Tech::new(1000);
            let mut routing = Vec::new();
            for i in 0..nl {
                if i > 0 {
                    t.add_layer(Layer::cut(format!("v{i}"), width / 2 + 10, spacing));
                }
                let dir = if i % 2 == 0 {
                    Dir::Horizontal
                } else {
                    Dir::Vertical
                };
                let mut l = Layer::routing(format!("m{}", i + 1), dir, pitch, width, spacing);
                l.offset = pitch / 2;
                routing.push(t.add_layer(l));
            }
            if nl >= 2 {
                let cut = t.layer_id("v1").expect("cut exists");
                let hw = width / 4 + 5;
                let via = ViaDef::new(
                    "via1_0",
                    routing[0],
                    vec![Rect::new(-hw * 3, -hw, hw * 3, hw)],
                    cut,
                    vec![Rect::new(-hw, -hw, hw, hw)],
                    routing[1],
                    vec![Rect::new(-hw, -hw * 3, hw, hw * 3)],
                );
                t.add_via(via);
            }
            let mut m = Macro::new("CELL", 1000, 2000);
            for (pi, (w, h)) in pins.into_iter().enumerate() {
                m.pins.push(Pin::new(
                    format!("P{pi}"),
                    PinDir::Input,
                    vec![Port::rects(
                        routing[0],
                        vec![Rect::new(
                            10 + pi as i64 * 10,
                            20,
                            10 + pi as i64 * 10 + w,
                            20 + h,
                        )],
                    )],
                ));
            }
            t.add_macro(m);
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lef_roundtrip_preserves_everything(t in arb_tech()) {
        let text = lef::write_lef(&t);
        let t2 = lef::parse_lef(&text).expect("own output parses");
        prop_assert_eq!(t.dbu_per_micron, t2.dbu_per_micron);
        prop_assert_eq!(t.layers(), t2.layers());
        prop_assert_eq!(t.vias(), t2.vias());
        prop_assert_eq!(t.macros(), t2.macros());
    }

    #[test]
    fn spacing_table_lookup_is_monotone(
        base in 10i64..200,
        w_step in 10i64..200,
        p_step in 10i64..500,
        bumps in prop::collection::vec(0i64..100, 4),
    ) {
        // Build a table that is monotone by construction and verify
        // lookups never decrease as width/PRL grow.
        let t = SpacingTable::new(
            vec![0, w_step],
            vec![0, p_step],
            vec![
                vec![base, base + bumps[0]],
                vec![base + bumps[1], base + bumps[0].max(bumps[1]) + bumps[2] + bumps[3]],
            ],
        );
        let mut last = 0;
        for w in [0, w_step - 1, w_step, w_step * 2] {
            let s = t.lookup(w, p_step * 2);
            prop_assert!(s >= last, "width monotone");
            last = s;
        }
        let mut last = 0;
        for p in [0, p_step, p_step + 1, p_step * 3] {
            let s = t.lookup(w_step * 2, p);
            prop_assert!(s >= last, "PRL monotone");
            last = s;
        }
        prop_assert!(t.max_spacing() >= base);
    }

    #[test]
    fn required_spacing_at_least_simple(w1 in 0i64..500, w2 in 0i64..500, prl in 0i64..2000) {
        let mut l = Layer::routing("m", Dir::Horizontal, 200, 100, 120);
        l.spacing_table = Some(SpacingTable::new(
            vec![0, 200],
            vec![0, 500],
            vec![vec![100, 110], vec![110, 200]],
        ));
        prop_assert!(l.required_spacing(w1, w2, prl) >= 120);
    }
}
