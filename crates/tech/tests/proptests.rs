//! Property-based tests: LEF round-trips and rule-table invariants.

use pao_geom::{Dir, Rect};
use pao_ptest::{check, Rng};
use pao_tech::{lef, Layer, Macro, Pin, PinDir, Port, SpacingTable, Tech, ViaDef};

/// A random but structurally valid 2–4 routing-layer tech.
fn arb_tech(rng: &mut Rng) -> Tech {
    let nl = rng.gen_range(2usize..5);
    let width = rng.gen_range(50i64..200);
    let spacing = rng.gen_range(50i64..300);
    let pitch = rng.gen_range(100i64..500);
    let n_pins = rng.gen_range(1usize..4);
    let pins: Vec<(i64, i64)> = (0..n_pins)
        .map(|_| (rng.gen_range(1i64..300), rng.gen_range(1i64..300)))
        .collect();

    let mut t = Tech::new(1000);
    let mut routing = Vec::new();
    for i in 0..nl {
        if i > 0 {
            t.add_layer(Layer::cut(format!("v{i}"), width / 2 + 10, spacing));
        }
        let dir = if i % 2 == 0 {
            Dir::Horizontal
        } else {
            Dir::Vertical
        };
        let mut l = Layer::routing(format!("m{}", i + 1), dir, pitch, width, spacing);
        l.offset = pitch / 2;
        routing.push(t.add_layer(l));
    }
    if nl >= 2 {
        let cut = t.layer_id("v1").expect("cut exists");
        let hw = width / 4 + 5;
        let via = ViaDef::new(
            "via1_0",
            routing[0],
            vec![Rect::new(-hw * 3, -hw, hw * 3, hw)],
            cut,
            vec![Rect::new(-hw, -hw, hw, hw)],
            routing[1],
            vec![Rect::new(-hw, -hw * 3, hw, hw * 3)],
        );
        t.add_via(via);
    }
    let mut m = Macro::new("CELL", 1000, 2000);
    for (pi, (w, h)) in pins.into_iter().enumerate() {
        m.pins.push(Pin::new(
            format!("P{pi}"),
            PinDir::Input,
            vec![Port::rects(
                routing[0],
                vec![Rect::new(
                    10 + pi as i64 * 10,
                    20,
                    10 + pi as i64 * 10 + w,
                    20 + h,
                )],
            )],
        ));
    }
    t.add_macro(m);
    t
}

#[test]
fn lef_roundtrip_preserves_everything() {
    check("lef_roundtrip_preserves_everything", 64, |rng| {
        let t = arb_tech(rng);
        let text = lef::write_lef(&t);
        let t2 = lef::parse_lef(&text).expect("own output parses");
        assert_eq!(t.dbu_per_micron, t2.dbu_per_micron);
        assert_eq!(t.layers(), t2.layers());
        assert_eq!(t.vias(), t2.vias());
        assert_eq!(t.macros(), t2.macros());
    });
}

#[test]
fn spacing_table_lookup_is_monotone() {
    check("spacing_table_lookup_is_monotone", 128, |rng| {
        let base = rng.gen_range(10i64..200);
        let w_step = rng.gen_range(10i64..200);
        let p_step = rng.gen_range(10i64..500);
        let bumps: Vec<i64> = (0..4).map(|_| rng.gen_range(0i64..100)).collect();
        // Build a table that is monotone by construction and verify
        // lookups never decrease as width/PRL grow.
        let t = SpacingTable::new(
            vec![0, w_step],
            vec![0, p_step],
            vec![
                vec![base, base + bumps[0]],
                vec![
                    base + bumps[1],
                    base + bumps[0].max(bumps[1]) + bumps[2] + bumps[3],
                ],
            ],
        );
        let mut last = 0;
        for w in [0, w_step - 1, w_step, w_step * 2] {
            let s = t.lookup(w, p_step * 2);
            assert!(s >= last, "width monotone");
            last = s;
        }
        let mut last = 0;
        for p in [0, p_step, p_step + 1, p_step * 3] {
            let s = t.lookup(w_step * 2, p);
            assert!(s >= last, "PRL monotone");
            last = s;
        }
        assert!(t.max_spacing() >= base);
    });
}

#[test]
fn required_spacing_at_least_simple() {
    check("required_spacing_at_least_simple", 128, |rng| {
        let w1 = rng.gen_range(0i64..500);
        let w2 = rng.gen_range(0i64..500);
        let prl = rng.gen_range(0i64..2000);
        let mut l = Layer::routing("m", Dir::Horizontal, 200, 100, 120);
        l.spacing_table = Some(SpacingTable::new(
            vec![0, 200],
            vec![0, 500],
            vec![vec![100, 110], vec![110, 200]],
        ));
        assert!(l.required_spacing(w1, w2, prl) >= 120);
    });
}
