//! Placement sites.

use crate::symbol::Symbol;
use pao_geom::Dbu;

/// A LEF `SITE`: the placement grid unit for a class of cells. Standard
/// cells occupy an integer number of sites in a row.
///
/// ```
/// use pao_tech::Site;
/// let core = Site::new("core", 380, 2800);
/// assert_eq!(core.width, 380);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Site name, e.g. `"core"` (interned).
    pub name: Symbol,
    /// Site width in DBU.
    pub width: Dbu,
    /// Site height (row height) in DBU.
    pub height: Dbu,
}

impl Site {
    /// Creates a site.
    ///
    /// # Panics
    ///
    /// Panics when `width` or `height` is not positive.
    #[must_use]
    pub fn new(name: impl Into<Symbol>, width: Dbu, height: Dbu) -> Site {
        assert!(width > 0 && height > 0, "site dimensions must be positive");
        Site {
            name: name.into(),
            width,
            height,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let s = Site::new("core", 380, 2800);
        assert_eq!(s.name, "core");
        assert_eq!((s.width, s.height), (380, 2800));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_width() {
        let _ = Site::new("bad", 0, 10);
    }
}
