//! Interned name strings.
//!
//! Every name that occurs once per design object — instance names, master
//! names, pin names, net names — is stored exactly once in a global
//! append-only arena and referenced by a 4-byte [`Symbol`]. At a million
//! components this turns two heap-allocated `String`s per component (plus
//! a third copy inside the name→id map) into one shared allocation per
//! *distinct* name, and makes name equality an integer compare.
//!
//! Design notes:
//!
//! * The arena leaks its strings (`Box::leak`), so [`Symbol::as_str`] can
//!   return `&'static str` without holding a lock across the borrow. A
//!   process analyzes a handful of designs per run; names are live for
//!   the whole run anyway.
//! * Ids are assigned in first-intern order. `Symbol` deliberately does
//!   **not** implement `Ord`: id order is interning order, which depends
//!   on parse history — sorting by it would smuggle nondeterminism into
//!   otherwise order-independent algorithms. Sort on [`Symbol::as_str`]
//!   when a name order is really wanted.
//! * [`Symbol::lookup`] resolves a name without inserting, so probing for
//!   names that may not exist (CLI queries, negative tests) cannot grow
//!   the arena.
//!
//! ```
//! use pao_tech::Symbol;
//!
//! let a = Symbol::intern("u42");
//! let b: Symbol = "u42".into();
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "u42");
//! assert!(a == *"u42");
//! assert_eq!(Symbol::lookup("u42"), Some(a));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Mutex, OnceLock};

/// An interned string: a 4-byte handle to a name in the global arena.
///
/// Equality and hashing use the integer id, which is equivalent to string
/// equality because interning dedups. Use [`as_str`](Symbol::as_str) (or
/// the `Deref<Target = str>` impl) to read the text back.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strs: Vec<&'static str>,
    /// Total bytes of leaked string storage (the arena's high-water mark
    /// — it only grows). A resident process watches this to prove reloads
    /// dedup instead of leaking: re-interning an existing name must not
    /// move it.
    arena_bytes: usize,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strs: Vec::new(),
            arena_bytes: 0,
        })
    })
}

/// A point-in-time measurement of the global symbol arena, for leak
/// monitoring in long-lived processes (`pao profile`, `pao serve` stats).
/// The arena is append-only, so both numbers are monotone high-water
/// marks; a daemon whose `arena_bytes` keeps growing across
/// `eco_update`/reload cycles is interning *new distinct* names, not
/// re-paying for duplicates (interning dedups, so reloading the same
/// LEF/DEF names costs nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolStats {
    /// Number of distinct interned names.
    pub interned: usize,
    /// Bytes of leaked string storage backing them.
    pub arena_bytes: usize,
}

/// Reads the current [`SymbolStats`] from the global interner.
#[must_use]
pub fn symbol_stats() -> SymbolStats {
    let t = lock();
    SymbolStats {
        interned: t.strs.len(),
        arena_bytes: t.arena_bytes,
    }
}

/// Locks the interner, recovering from a poisoned lock: the table is
/// append-only, so a panic mid-intern leaves it valid (at worst one
/// string leaked without a map entry).
fn lock() -> std::sync::MutexGuard<'static, Interner> {
    match interner().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Symbol {
    /// Interns `s`, returning its (existing or fresh) symbol.
    #[must_use]
    pub fn intern(s: &str) -> Symbol {
        let mut t = lock();
        if let Some(&id) = t.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(Box::<str>::from(s));
        let id = u32::try_from(t.strs.len()).unwrap_or_else(|_| {
            // 4 billion distinct names would already have exhausted
            // memory; keep the error message honest anyway.
            panic!("symbol arena overflow")
        });
        t.strs.push(leaked);
        t.map.insert(leaked, id);
        t.arena_bytes += leaked.len();
        Symbol(id)
    }

    /// Resolves a name that may already be interned, without inserting.
    #[must_use]
    pub fn lookup(s: &str) -> Option<Symbol> {
        lock().map.get(s).copied().map(Symbol)
    }

    /// The interned text.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        lock().strs[self.0 as usize]
    }

    /// The raw arena id (diagnostics only — see the module notes on why
    /// id order must not drive algorithm order).
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.as_str().to_owned()
    }
}

impl Default for Symbol {
    fn default() -> Symbol {
        Symbol::intern("")
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Symbol::intern("sym_test_dedup");
        let b = Symbol::intern("sym_test_dedup");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        let c = Symbol::intern("sym_test_other");
        assert_ne!(a, c);
    }

    #[test]
    fn lookup_does_not_insert() {
        assert_eq!(Symbol::lookup("sym_test_never_interned_xyzzy"), None);
        let a = Symbol::intern("sym_test_lookup");
        assert_eq!(Symbol::lookup("sym_test_lookup"), Some(a));
    }

    #[test]
    #[allow(clippy::cmp_owned)] // exercises the PartialEq<String> impl itself
    fn string_comparisons() {
        let a = Symbol::intern("sym_test_cmp");
        assert!(a == *"sym_test_cmp");
        assert!(a == "sym_test_cmp");
        assert!("sym_test_cmp" == a);
        assert!(a == String::from("sym_test_cmp"));
        assert!(a != *"other");
    }

    #[test]
    fn deref_and_display() {
        let a = Symbol::intern("sym_test_fmt");
        assert_eq!(a.len(), "sym_test_fmt".len());
        assert_eq!(format!("{a}"), "sym_test_fmt");
        assert_eq!(format!("{a:?}"), "\"sym_test_fmt\"");
        assert_eq!(String::from(a), "sym_test_fmt");
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Symbol::default().as_str(), "");
    }

    #[test]
    fn stats_are_reload_stable() {
        // First intern of a distinct name grows both gauges…
        let before = symbol_stats();
        let name = "sym_test_stats_distinct_name";
        let a = Symbol::intern(name);
        let after = symbol_stats();
        assert!(after.interned > before.interned);
        assert!(after.arena_bytes >= before.arena_bytes + name.len());
        // …but re-interning (a reload of the same LEF/DEF names in a
        // resident process) is a pure lookup: zero arena growth. Other
        // tests intern concurrently, so compare against an inner
        // before/after pair rather than absolute counts.
        let inner = symbol_stats();
        let arena_floor = inner.arena_bytes;
        for _ in 0..100 {
            assert_eq!(Symbol::intern(name), a);
        }
        // Concurrent tests may have grown the arena, but *this* name
        // contributed nothing new: lookup still resolves to the original
        // id and the arena never grew by this name's length times 100.
        let growth = symbol_stats().arena_bytes - arena_floor;
        assert!(
            growth < name.len() * 100,
            "re-interning duplicated storage ({growth} bytes)"
        );
    }
}
