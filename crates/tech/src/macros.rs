//! Cell masters (LEF `MACRO`s) with pins and obstructions.

use crate::layer::LayerId;
use crate::symbol::Symbol;
use pao_geom::{Dbu, Polygon, Rect};
use std::fmt;
use std::str::FromStr;

/// LEF `MACRO CLASS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MacroClass {
    /// A standard cell placed in rows.
    #[default]
    Core,
    /// A macro block (memory, analog, …).
    Block,
    /// A pad cell.
    Pad,
}

impl MacroClass {
    /// The LEF keyword for this class.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MacroClass::Core => "CORE",
            MacroClass::Block => "BLOCK",
            MacroClass::Pad => "PAD",
        }
    }
}

impl fmt::Display for MacroClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Signal direction of a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PinDir {
    /// Input pin.
    #[default]
    Input,
    /// Output pin.
    Output,
    /// Bidirectional pin.
    Inout,
}

impl PinDir {
    /// The LEF keyword for this direction.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PinDir::Input => "INPUT",
            PinDir::Output => "OUTPUT",
            PinDir::Inout => "INOUT",
        }
    }
}

impl FromStr for PinDir {
    type Err = String;
    fn from_str(s: &str) -> Result<PinDir, String> {
        Ok(match s {
            "INPUT" => PinDir::Input,
            "OUTPUT" => PinDir::Output,
            "INOUT" => PinDir::Inout,
            other => return Err(format!("unknown pin direction `{other}`")),
        })
    }
}

/// Electrical use of a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PinUse {
    /// Ordinary signal pin (the ones pin access analysis targets).
    #[default]
    Signal,
    /// Power pin.
    Power,
    /// Ground pin.
    Ground,
    /// Clock pin.
    Clock,
}

impl PinUse {
    /// The LEF keyword for this use.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PinUse::Signal => "SIGNAL",
            PinUse::Power => "POWER",
            PinUse::Ground => "GROUND",
            PinUse::Clock => "CLOCK",
        }
    }

    /// `true` for power/ground pins (excluded from pin access analysis).
    #[must_use]
    pub fn is_supply(self) -> bool {
        matches!(self, PinUse::Power | PinUse::Ground)
    }
}

impl FromStr for PinUse {
    type Err = String;
    fn from_str(s: &str) -> Result<PinUse, String> {
        Ok(match s {
            "SIGNAL" | "ANALOG" => PinUse::Signal,
            "POWER" => PinUse::Power,
            "GROUND" => PinUse::Ground,
            "CLOCK" => PinUse::Clock,
            other => return Err(format!("unknown pin use `{other}`")),
        })
    }
}

/// One `PORT` of a pin: geometry on a single layer. A pin may have several
/// ports; any port connects the whole pin.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Layer the geometry sits on.
    pub layer: LayerId,
    /// Rectangular shapes, in master coordinates.
    pub rects: Vec<Rect>,
    /// Polygonal shapes, in master coordinates.
    pub polygons: Vec<Polygon>,
}

impl Port {
    /// Creates a port from rectangles on a layer.
    #[must_use]
    pub fn rects(layer: LayerId, rects: Vec<Rect>) -> Port {
        Port {
            layer,
            rects,
            polygons: Vec::new(),
        }
    }

    /// All shapes flattened to rectangles (polygons decomposed by slab).
    #[must_use]
    pub fn flat_rects(&self) -> Vec<Rect> {
        let mut out = self.rects.clone();
        for p in &self.polygons {
            out.extend(p.to_rects());
        }
        out
    }

    /// Bounding box of all geometry in the port, `None` when empty.
    #[must_use]
    pub fn bbox(&self) -> Option<Rect> {
        self.rects
            .iter()
            .copied()
            .chain(self.polygons.iter().map(Polygon::bbox))
            .reduce(Rect::hull)
    }
}

/// A pin of a cell master.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// Pin name, e.g. `"A"` (interned).
    pub name: Symbol,
    /// Signal direction.
    pub dir: PinDir,
    /// Electrical use.
    pub use_: PinUse,
    /// Geometry, one entry per `PORT`/layer.
    pub ports: Vec<Port>,
}

impl Pin {
    /// Creates a signal pin with the given ports.
    #[must_use]
    pub fn new(name: impl Into<Symbol>, dir: PinDir, ports: Vec<Port>) -> Pin {
        Pin {
            name: name.into(),
            dir,
            use_: PinUse::Signal,
            ports,
        }
    }

    /// All rectangles of this pin on `layer` (polygons decomposed).
    #[must_use]
    pub fn rects_on(&self, layer: LayerId) -> Vec<Rect> {
        self.ports
            .iter()
            .filter(|p| p.layer == layer)
            .flat_map(Port::flat_rects)
            .collect()
    }

    /// Bounding box of the pin across all layers, `None` for a pin with no
    /// geometry.
    #[must_use]
    pub fn bbox(&self) -> Option<Rect> {
        self.ports.iter().filter_map(Port::bbox).reduce(Rect::hull)
    }
}

/// A cell master (LEF `MACRO`).
#[derive(Debug, Clone, PartialEq)]
pub struct Macro {
    /// Master name, e.g. `"NAND2X1"` (interned).
    pub name: Symbol,
    /// Placement class.
    pub class: MacroClass,
    /// Width in DBU.
    pub width: Dbu,
    /// Height in DBU.
    pub height: Dbu,
    /// Site name this master snaps to (standard cells).
    pub site: Option<Symbol>,
    /// Pins in declaration order.
    pub pins: Vec<Pin>,
    /// Obstruction shapes as `(layer, rect)` pairs.
    pub obs: Vec<(LayerId, Rect)>,
}

impl Macro {
    /// Creates a core-class master with no pins or obstructions.
    #[must_use]
    pub fn new(name: impl Into<Symbol>, width: Dbu, height: Dbu) -> Macro {
        Macro {
            name: name.into(),
            class: MacroClass::Core,
            width,
            height,
            site: None,
            pins: Vec::new(),
            obs: Vec::new(),
        }
    }

    /// Bounding box of the master (origin at (0, 0)).
    #[must_use]
    pub fn bbox(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Looks up a pin by name.
    #[must_use]
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Pins that carry signals (pin access analysis skips supply pins).
    pub fn signal_pins(&self) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(|p| !p.use_.is_supply())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::Point;

    fn nand2() -> Macro {
        let mut m = Macro::new("NAND2X1", 570, 1400);
        m.pins.push(Pin::new(
            "A",
            PinDir::Input,
            vec![Port::rects(LayerId(0), vec![Rect::new(100, 400, 200, 800)])],
        ));
        m.pins.push(Pin::new(
            "Y",
            PinDir::Output,
            vec![Port::rects(LayerId(0), vec![Rect::new(400, 400, 500, 900)])],
        ));
        let mut vdd = Pin::new(
            "VDD",
            PinDir::Inout,
            vec![Port::rects(LayerId(0), vec![Rect::new(0, 1300, 570, 1400)])],
        );
        vdd.use_ = PinUse::Power;
        m.pins.push(vdd);
        m
    }

    #[test]
    fn pin_lookup_and_signal_filter() {
        let m = nand2();
        assert!(m.pin("A").is_some());
        assert!(m.pin("B").is_none());
        let sigs: Vec<&str> = m.signal_pins().map(|p| p.name.as_str()).collect();
        assert_eq!(sigs, vec!["A", "Y"]);
    }

    #[test]
    fn pin_rects_on_layer() {
        let m = nand2();
        let a = m.pin("A").unwrap();
        assert_eq!(a.rects_on(LayerId(0)).len(), 1);
        assert!(a.rects_on(LayerId(2)).is_empty());
        assert_eq!(a.bbox(), Some(Rect::new(100, 400, 200, 800)));
    }

    #[test]
    fn polygon_ports_flatten() {
        let poly = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 5),
            Point::new(10, 5),
            Point::new(10, 10),
            Point::new(0, 10),
        ])
        .unwrap();
        let port = Port {
            layer: LayerId(0),
            rects: vec![Rect::new(30, 0, 40, 10)],
            polygons: vec![poly],
        };
        let flat = port.flat_rects();
        assert_eq!(flat.len(), 3);
        assert_eq!(port.bbox(), Some(Rect::new(0, 0, 40, 10)));
    }

    #[test]
    fn keywords_roundtrip() {
        assert_eq!("INPUT".parse::<PinDir>().unwrap(), PinDir::Input);
        assert_eq!("POWER".parse::<PinUse>().unwrap(), PinUse::Power);
        assert!(PinUse::Ground.is_supply());
        assert!(!PinUse::Clock.is_supply());
        assert_eq!(MacroClass::Core.to_string(), "CORE");
        assert!("XYZ".parse::<PinDir>().is_err());
        assert!("XYZ".parse::<PinUse>().is_err());
    }

    #[test]
    fn master_bbox() {
        assert_eq!(nand2().bbox(), Rect::new(0, 0, 570, 1400));
    }
}
