//! Routing and cut layers.

use crate::rules::{EolRule, MinStepRule, SpacingTable};
use crate::symbol::Symbol;
use pao_geom::{Dbu, Dir};
use std::fmt;

/// Index of a layer in its [`Tech`](crate::Tech), ordered bottom-up over
/// *all* layers (routing and cut interleaved, as in the LEF file).
///
/// ```
/// use pao_tech::LayerId;
/// let m1 = LayerId(0);
/// assert_eq!(m1.0, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub u32);

impl LayerId {
    /// The layer index as a `usize` for direct slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Whether a layer carries wires or via cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A metal routing layer.
    Routing,
    /// A via cut layer between two routing layers.
    Cut,
}

/// A technology layer and its design rules.
///
/// Routing layers use `dir`, `pitch`, `offset` and `width`; cut layers use
/// `width` (cut size) and `spacing`. Fields not given by the LEF default to
/// zero / empty and the corresponding checks are skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Layer name, e.g. `"metal2"` (interned).
    pub name: Symbol,
    /// Routing or cut.
    pub kind: LayerKind,
    /// Preferred routing direction (routing layers; ignored for cuts).
    pub dir: Dir,
    /// Track pitch in DBU (routing layers).
    pub pitch: Dbu,
    /// Track offset from the die origin in DBU (routing layers).
    pub offset: Dbu,
    /// Default wire width (routing) or cut size (cut) in DBU.
    pub width: Dbu,
    /// Minimum legal shape width in DBU (0 = unchecked).
    pub min_width: Dbu,
    /// Minimum shape area in DBU² (0 = unchecked).
    pub min_area: i128,
    /// Simple minimum spacing in DBU (used when no table is present).
    pub spacing: Dbu,
    /// Width / parallel-run-length spacing table (routing layers).
    pub spacing_table: Option<SpacingTable>,
    /// End-of-line spacing rules.
    pub eol_rules: Vec<EolRule>,
    /// Minimum-step rule.
    pub min_step: Option<MinStepRule>,
}

impl Layer {
    /// Creates a routing layer with the given essentials and no optional
    /// rules.
    #[must_use]
    pub fn routing(
        name: impl Into<Symbol>,
        dir: Dir,
        pitch: Dbu,
        width: Dbu,
        spacing: Dbu,
    ) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Routing,
            dir,
            pitch,
            offset: 0,
            width,
            min_width: width,
            min_area: 0,
            spacing,
            spacing_table: None,
            eol_rules: Vec::new(),
            min_step: None,
        }
    }

    /// Creates a cut layer with the given cut size and cut-to-cut spacing.
    #[must_use]
    pub fn cut(name: impl Into<Symbol>, width: Dbu, spacing: Dbu) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Cut,
            // Direction is meaningless for cuts; Horizontal is the
            // parser's default so LEF round-trips compare equal.
            dir: Dir::Horizontal,
            pitch: 0,
            offset: 0,
            width,
            min_width: width,
            min_area: 0,
            spacing,
            spacing_table: None,
            eol_rules: Vec::new(),
            min_step: None,
        }
    }

    /// `true` for routing layers.
    #[must_use]
    pub fn is_routing(&self) -> bool {
        self.kind == LayerKind::Routing
    }

    /// `true` for cut layers.
    #[must_use]
    pub fn is_cut(&self) -> bool {
        self.kind == LayerKind::Cut
    }

    /// Required spacing between two shapes of widths `w1`, `w2` with
    /// parallel run length `prl`, consulting the spacing table when present
    /// and falling back to the simple spacing value.
    #[must_use]
    pub fn required_spacing(&self, w1: Dbu, w2: Dbu, prl: Dbu) -> Dbu {
        match &self.spacing_table {
            Some(t) => t.lookup(w1.max(w2), prl).max(self.spacing),
            None => self.spacing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify() {
        let m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 60);
        assert!(m1.is_routing() && !m1.is_cut());
        assert_eq!(m1.min_width, 60);
        let v1 = Layer::cut("V1", 70, 80);
        assert!(v1.is_cut() && !v1.is_routing());
    }

    #[test]
    fn required_spacing_without_table_is_simple() {
        let m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        assert_eq!(m1.required_spacing(60, 60, 0), 70);
        assert_eq!(m1.required_spacing(600, 600, 10_000), 70);
    }

    #[test]
    fn required_spacing_with_table_takes_max() {
        let mut m1 = Layer::routing("M1", Dir::Horizontal, 200, 60, 70);
        m1.spacing_table = Some(SpacingTable::new(
            vec![0, 200],
            vec![0, 500],
            vec![vec![70, 70], vec![70, 140]],
        ));
        assert_eq!(m1.required_spacing(60, 60, 0), 70);
        assert_eq!(m1.required_spacing(300, 60, 600), 140);
        // Table value below the simple spacing is clamped up.
        m1.spacing = 200;
        assert_eq!(m1.required_spacing(300, 60, 600), 200);
    }

    #[test]
    fn layer_id_display_and_index() {
        assert_eq!(LayerId(3).to_string(), "L3");
        assert_eq!(LayerId(3).index(), 3);
        assert!(LayerId(1) < LayerId(2));
    }
}
