//! Design-rule data carried by layers.

use pao_geom::Dbu;

/// A LEF `SPACINGTABLE PARALLELRUNLENGTH` rule: required spacing as a
/// function of the wider shape's width and the parallel run length (PRL)
/// between the two shapes.
///
/// Rows are indexed by width thresholds, columns by PRL thresholds; the
/// applicable entry is the one with the largest threshold not exceeding the
/// queried value (both axes must be sorted ascending and start at 0).
///
/// ```
/// use pao_tech::SpacingTable;
/// let t = SpacingTable::new(
///     vec![0, 200],          // width thresholds
///     vec![0, 500],          // PRL thresholds
///     vec![vec![70, 70],     // width < 200
///          vec![70, 140]],   // width ≥ 200
/// );
/// assert_eq!(t.lookup(100, 1000), 70);
/// assert_eq!(t.lookup(300, 1000), 140);
/// assert_eq!(t.lookup(300, 100), 70);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpacingTable {
    widths: Vec<Dbu>,
    prls: Vec<Dbu>,
    /// `spacing[width_row][prl_col]`.
    spacing: Vec<Vec<Dbu>>,
}

impl SpacingTable {
    /// Creates a spacing table.
    ///
    /// # Panics
    ///
    /// Panics when the thresholds are not ascending from 0 or the matrix
    /// dimensions do not match the thresholds.
    #[must_use]
    pub fn new(widths: Vec<Dbu>, prls: Vec<Dbu>, spacing: Vec<Vec<Dbu>>) -> SpacingTable {
        assert!(
            !widths.is_empty() && widths[0] == 0,
            "width rows must start at 0"
        );
        assert!(
            !prls.is_empty() && prls[0] == 0,
            "PRL columns must start at 0"
        );
        assert!(widths.windows(2).all(|w| w[0] < w[1]), "widths ascending");
        assert!(prls.windows(2).all(|w| w[0] < w[1]), "PRLs ascending");
        assert_eq!(spacing.len(), widths.len(), "one row per width threshold");
        for row in &spacing {
            assert_eq!(row.len(), prls.len(), "one column per PRL threshold");
        }
        SpacingTable {
            widths,
            prls,
            spacing,
        }
    }

    /// Width thresholds (row axis).
    #[must_use]
    pub fn widths(&self) -> &[Dbu] {
        &self.widths
    }

    /// PRL thresholds (column axis).
    #[must_use]
    pub fn prls(&self) -> &[Dbu] {
        &self.prls
    }

    /// Spacing matrix, `rows × cols = widths × prls`.
    #[must_use]
    pub fn matrix(&self) -> &[Vec<Dbu>] {
        &self.spacing
    }

    /// Required spacing for the given (max) shape width and PRL.
    ///
    /// Width uses ≥ bucketing ("width at least threshold"); PRL uses strict
    /// > ("run length more than threshold"), matching common router
    /// > implementations of the LEF semantics.
    #[must_use]
    pub fn lookup(&self, width: Dbu, prl: Dbu) -> Dbu {
        let wi = self.widths.iter().rposition(|&t| t <= width).unwrap_or(0);
        let pi = self.prls.iter().rposition(|&t| t < prl).unwrap_or(0);
        self.spacing[wi][pi]
    }

    /// The largest spacing anywhere in the table — a safe search halo.
    #[must_use]
    pub fn max_spacing(&self) -> Dbu {
        self.spacing
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// A LEF `SPACING ... ENDOFLINE` rule: edges shorter than `eol_width`
/// require `space` clearance within a `within` band beyond the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EolRule {
    /// Required end-of-line spacing in DBU.
    pub space: Dbu,
    /// Edges strictly shorter than this width are EOL edges.
    pub eol_width: Dbu,
    /// Lateral extension of the check region past the edge ends.
    pub within: Dbu,
}

/// A simplified LEF `MINSTEP` rule: boundary edges shorter than
/// `min_step_length` are *steps*; at most `max_edges` consecutive steps are
/// allowed. Without `MAXEDGES` the LEF rule forbids steps outright
/// (`max_edges = 0`), which is how a via enclosure protruding slightly from
/// a pin shape becomes a violation (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinStepRule {
    /// Minimum legal edge length in DBU.
    pub min_step_length: Dbu,
    /// Maximum number of consecutive edges shorter than the minimum.
    pub max_edges: u32,
}

impl MinStepRule {
    /// The plain `MINSTEP x ;` form: no boundary edge may be shorter than
    /// `min_step_length`.
    #[must_use]
    pub fn simple(min_step_length: Dbu) -> MinStepRule {
        MinStepRule {
            min_step_length,
            max_edges: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SpacingTable {
        SpacingTable::new(
            vec![0, 200, 400],
            vec![0, 500, 1500],
            vec![vec![70, 70, 70], vec![70, 140, 140], vec![70, 140, 300]],
        )
    }

    #[test]
    fn lookup_buckets() {
        let t = table();
        // Narrow shapes: always first row.
        assert_eq!(t.lookup(60, 10_000), 70);
        // Width exactly at a threshold falls into that row.
        assert_eq!(t.lookup(200, 600), 140);
        // PRL exactly at a threshold stays in the previous column.
        assert_eq!(t.lookup(200, 500), 70);
        assert_eq!(t.lookup(200, 501), 140);
        // Big and long: bottom-right corner.
        assert_eq!(t.lookup(1000, 2000), 300);
        // Zero / tiny values: top-left corner.
        assert_eq!(t.lookup(0, 0), 70);
    }

    #[test]
    fn max_spacing() {
        assert_eq!(table().max_spacing(), 300);
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn rejects_nonzero_first_threshold() {
        let _ = SpacingTable::new(vec![10], vec![0], vec![vec![70]]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_thresholds() {
        let _ = SpacingTable::new(vec![0, 5, 3], vec![0], vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "one row per width")]
    fn rejects_mismatched_matrix() {
        let _ = SpacingTable::new(vec![0, 5], vec![0], vec![vec![1]]);
    }

    #[test]
    fn min_step_simple() {
        let r = MinStepRule::simple(50);
        assert_eq!(r.max_edges, 0);
        assert_eq!(r.min_step_length, 50);
    }
}
