//! Fixed via definitions.

use crate::layer::LayerId;
use crate::symbol::Symbol;
use pao_geom::{Point, Rect};
use std::fmt;

/// Index of a via definition in its [`Tech`](crate::Tech).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViaId(pub u32);

impl ViaId {
    /// The via index as a `usize` for direct slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// A fixed (LEF `VIA`) via definition: one or more rectangles on each of a
/// bottom routing layer, a cut layer, and a top routing layer, in
/// master coordinates centered on the via origin.
///
/// ```
/// use pao_geom::Rect;
/// use pao_tech::{LayerId, ViaDef};
///
/// let v = ViaDef::new(
///     "via1_0",
///     LayerId(0), vec![Rect::new(-65, -35, 65, 35)],
///     LayerId(1), vec![Rect::new(-35, -35, 35, 35)],
///     LayerId(2), vec![Rect::new(-35, -65, 35, 65)],
/// );
/// assert_eq!(v.bottom_bbox(), Rect::new(-65, -35, 65, 35));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViaDef {
    /// Via name, e.g. `"via1_0"` (interned).
    pub name: Symbol,
    /// Bottom routing layer.
    pub bottom_layer: LayerId,
    /// Bottom-layer enclosure shapes.
    pub bottom_shapes: Vec<Rect>,
    /// Cut layer.
    pub cut_layer: LayerId,
    /// Cut shapes.
    pub cut_shapes: Vec<Rect>,
    /// Top routing layer.
    pub top_layer: LayerId,
    /// Top-layer enclosure shapes.
    pub top_shapes: Vec<Rect>,
    /// `true` for the LEF `DEFAULT` via of its cut layer.
    pub is_default: bool,
}

impl ViaDef {
    /// Creates a via definition.
    ///
    /// # Panics
    ///
    /// Panics when any of the three shape lists is empty.
    #[must_use]
    pub fn new(
        name: impl Into<Symbol>,
        bottom_layer: LayerId,
        bottom_shapes: Vec<Rect>,
        cut_layer: LayerId,
        cut_shapes: Vec<Rect>,
        top_layer: LayerId,
        top_shapes: Vec<Rect>,
    ) -> ViaDef {
        assert!(
            !bottom_shapes.is_empty() && !cut_shapes.is_empty() && !top_shapes.is_empty(),
            "via definition needs shapes on all three layers"
        );
        ViaDef {
            name: name.into(),
            bottom_layer,
            bottom_shapes,
            cut_layer,
            cut_shapes,
            top_layer,
            top_shapes,
            is_default: false,
        }
    }

    /// Bounding box of the bottom-layer enclosure.
    #[must_use]
    pub fn bottom_bbox(&self) -> Rect {
        shapes_bbox(&self.bottom_shapes)
    }

    /// Bounding box of the cut shapes.
    #[must_use]
    pub fn cut_bbox(&self) -> Rect {
        shapes_bbox(&self.cut_shapes)
    }

    /// Bounding box of the top-layer enclosure.
    #[must_use]
    pub fn top_bbox(&self) -> Rect {
        shapes_bbox(&self.top_shapes)
    }

    /// The via's shapes translated so its origin sits at `at`, flattened as
    /// `(layer, rect)` pairs.
    #[must_use]
    pub fn placed_shapes(&self, at: Point) -> Vec<(LayerId, Rect)> {
        let mut out = Vec::with_capacity(
            self.bottom_shapes.len() + self.cut_shapes.len() + self.top_shapes.len(),
        );
        for &r in &self.bottom_shapes {
            out.push((self.bottom_layer, r.translated(at)));
        }
        for &r in &self.cut_shapes {
            out.push((self.cut_layer, r.translated(at)));
        }
        for &r in &self.top_shapes {
            out.push((self.top_layer, r.translated(at)));
        }
        out
    }

    /// Allocation-free form of [`Self::placed_shapes`]: yields the
    /// translated `(layer, rect)` pairs without building a `Vec`. Hot
    /// paths that probe one via pair at a time (cluster-selection
    /// boundary compatibility) iterate this instead.
    pub fn each_placed_shape(&self, at: Point) -> impl Iterator<Item = (LayerId, Rect)> + '_ {
        self.bottom_shapes
            .iter()
            .map(move |&r| (self.bottom_layer, r.translated(at)))
            .chain(
                self.cut_shapes
                    .iter()
                    .map(move |&r| (self.cut_layer, r.translated(at))),
            )
            .chain(
                self.top_shapes
                    .iter()
                    .map(move |&r| (self.top_layer, r.translated(at))),
            )
    }

    /// A 90°-rotated variant of this via (shapes transposed about the
    /// origin), named `<name>_R90`. Useful when the bottom enclosure's long
    /// axis must follow a vertical pin.
    #[must_use]
    pub fn rotated90(&self) -> ViaDef {
        let rot = |r: &Rect| Rect::new(r.ylo(), r.xlo(), r.yhi(), r.xhi());
        ViaDef {
            name: Symbol::intern(&format!("{}_R90", self.name)),
            bottom_layer: self.bottom_layer,
            bottom_shapes: self.bottom_shapes.iter().map(rot).collect(),
            cut_layer: self.cut_layer,
            cut_shapes: self.cut_shapes.iter().map(rot).collect(),
            top_layer: self.top_layer,
            top_shapes: self.top_shapes.iter().map(rot).collect(),
            is_default: false,
        }
    }
}

/// Hull of a shape list. The [`ViaDef`] constructor guarantees each layer
/// has at least one shape; an empty list degrades to a point rect at the
/// origin rather than panicking.
fn shapes_bbox(shapes: &[Rect]) -> Rect {
    let mut it = shapes.iter().copied();
    let first = it.next().unwrap_or_else(|| Rect::new(0, 0, 0, 0));
    it.fold(first, Rect::hull)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn via() -> ViaDef {
        ViaDef::new(
            "via1_0",
            LayerId(0),
            vec![Rect::new(-65, -35, 65, 35)],
            LayerId(1),
            vec![Rect::new(-35, -35, 35, 35)],
            LayerId(2),
            vec![Rect::new(-35, -65, 35, 65)],
        )
    }

    #[test]
    fn bboxes() {
        let v = via();
        assert_eq!(v.bottom_bbox(), Rect::new(-65, -35, 65, 35));
        assert_eq!(v.cut_bbox(), Rect::new(-35, -35, 35, 35));
        assert_eq!(v.top_bbox(), Rect::new(-35, -65, 35, 65));
    }

    #[test]
    fn placed_shapes_translate() {
        let v = via();
        let shapes = v.placed_shapes(Point::new(1000, 2000));
        assert_eq!(shapes.len(), 3);
        assert_eq!(shapes[0], (LayerId(0), Rect::new(935, 1965, 1065, 2035)));
        assert_eq!(shapes[1], (LayerId(1), Rect::new(965, 1965, 1035, 2035)));
    }

    #[test]
    fn rotation_transposes() {
        let v = via().rotated90();
        assert_eq!(v.bottom_bbox(), Rect::new(-35, -65, 35, 65));
        assert_eq!(v.top_bbox(), Rect::new(-65, -35, 65, 35));
        assert_eq!(v.name, "via1_0_R90");
        // Cut is square; unchanged.
        assert_eq!(v.cut_bbox(), Rect::new(-35, -35, 35, 35));
    }

    #[test]
    #[should_panic(expected = "needs shapes")]
    fn rejects_empty_shapes() {
        let _ = ViaDef::new(
            "bad",
            LayerId(0),
            vec![],
            LayerId(1),
            vec![Rect::new(0, 0, 1, 1)],
            LayerId(2),
            vec![Rect::new(0, 0, 1, 1)],
        );
    }
}
