#![warn(missing_docs)]

//! Technology and cell-library model for the PAAF pin access framework.
//!
//! This crate models the subset of LEF that pin access analysis and
//! detailed routing need:
//!
//! * [`Layer`]s — routing and cut layers with preferred direction, pitch,
//!   default width and their design rules ([`rules`]),
//! * [`ViaDef`]s — fixed via definitions with per-layer shapes,
//! * [`Site`]s and [`Macro`]s — placement sites and cell masters with
//!   [`Pin`]s (rectangles and polygons per layer) and obstructions,
//! * a [`Tech`] database tying everything together, and
//! * a [LEF parser](lef) and writer round-tripping the above.
//!
//! # Examples
//!
//! ```
//! use pao_tech::{lef, Tech};
//!
//! let src = "\
//! UNITS DATABASE MICRONS 1000 ; END UNITS
//! LAYER M1 TYPE ROUTING ; DIRECTION HORIZONTAL ; PITCH 0.2 ; WIDTH 0.06 ;
//!   SPACING 0.06 ; END M1
//! END LIBRARY
//! ";
//! let tech: Tech = lef::parse_lef(src)?;
//! assert_eq!(tech.layer_by_name("M1").unwrap().pitch, 200);
//! # Ok::<(), pao_tech::lef::ParseLefError>(())
//! ```

pub mod layer;
pub mod lef;
pub mod macros;
pub mod rules;
pub mod site;
pub mod symbol;
pub mod tech;
pub mod via;

pub use layer::{Layer, LayerId, LayerKind};
pub use macros::{Macro, MacroClass, Pin, PinDir, PinUse, Port};
pub use rules::{EolRule, MinStepRule, SpacingTable};
pub use site::Site;
pub use symbol::{symbol_stats, Symbol, SymbolStats};
pub use tech::Tech;
pub use via::{ViaDef, ViaId};
