//! The technology database.

use crate::layer::{Layer, LayerId, LayerKind};
use crate::macros::Macro;
use crate::site::Site;
use crate::symbol::Symbol;
use crate::via::{ViaDef, ViaId};
use pao_geom::Dbu;
use std::collections::HashMap;

/// A complete technology + library database (the contents of a LEF file).
///
/// Layers are stored bottom-up in LEF declaration order, interleaving
/// routing and cut layers. Lookup helpers resolve layer adjacency, the cut
/// layer between two routing layers, and the via definitions landing on a
/// given routing layer.
///
/// ```
/// use pao_geom::Dir;
/// use pao_tech::{Layer, Tech};
///
/// let mut tech = Tech::new(1000);
/// let m1 = tech.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 60));
/// let v1 = tech.add_layer(Layer::cut("V1", 70, 80));
/// let m2 = tech.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 60));
/// assert_eq!(tech.routing_layer_above(m1), Some(m2));
/// assert_eq!(tech.cut_between(m1, m2), Some(v1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tech {
    /// Database units per micron (LEF `UNITS DATABASE MICRONS`).
    pub dbu_per_micron: Dbu,
    /// Manufacturing grid in DBU (0 = unspecified).
    pub manufacturing_grid: Dbu,
    layers: Vec<Layer>,
    layer_names: HashMap<Symbol, LayerId>,
    vias: Vec<ViaDef>,
    via_names: HashMap<Symbol, ViaId>,
    sites: Vec<Site>,
    macros: Vec<Macro>,
    macro_names: HashMap<Symbol, usize>,
}

impl Tech {
    /// Creates an empty technology with the given DBU scale.
    #[must_use]
    pub fn new(dbu_per_micron: Dbu) -> Tech {
        Tech {
            dbu_per_micron,
            ..Tech::default()
        }
    }

    /// Converts a micron quantity to DBU with round-to-nearest.
    #[must_use]
    pub fn microns_to_dbu(&self, um: f64) -> Dbu {
        (um * self.dbu_per_micron as f64).round() as Dbu
    }

    /// Converts DBU to microns.
    #[must_use]
    pub fn dbu_to_microns(&self, dbu: Dbu) -> f64 {
        dbu as f64 / self.dbu_per_micron as f64
    }

    /// Appends a layer (bottom-up order) and returns its id.
    pub fn add_layer(&mut self, layer: Layer) -> LayerId {
        let id = LayerId(self.layers.len() as u32);
        self.layer_names.insert(layer.name, id);
        self.layers.push(layer);
        id
    }

    /// Appends a via definition and returns its id.
    pub fn add_via(&mut self, via: ViaDef) -> ViaId {
        let id = ViaId(self.vias.len() as u32);
        self.via_names.insert(via.name, id);
        self.vias.push(via);
        id
    }

    /// Appends a site.
    pub fn add_site(&mut self, site: Site) {
        self.sites.push(site);
    }

    /// Appends a cell master.
    pub fn add_macro(&mut self, m: Macro) {
        self.macro_names.insert(m.name, self.macros.len());
        self.macros.push(m);
    }

    /// All layers, bottom-up.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layer with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.index()]
    }

    /// Mutable access to a layer.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn layer_mut(&mut self, id: LayerId) -> &mut Layer {
        &mut self.layers[id.index()]
    }

    /// Looks up a layer by name.
    #[must_use]
    pub fn layer_id(&self, name: &str) -> Option<LayerId> {
        let sym = Symbol::lookup(name)?;
        self.layer_names.get(&sym).copied()
    }

    /// Looks up a layer by interned name (no string hashing).
    #[must_use]
    pub fn layer_id_sym(&self, name: Symbol) -> Option<LayerId> {
        self.layer_names.get(&name).copied()
    }

    /// Looks up a layer by name, returning the layer itself.
    #[must_use]
    pub fn layer_by_name(&self, name: &str) -> Option<&Layer> {
        self.layer_id(name).map(|id| self.layer(id))
    }

    /// Ids of all routing layers, bottom-up.
    #[must_use]
    pub fn routing_layers(&self) -> Vec<LayerId> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == LayerKind::Routing)
            .map(|(i, _)| LayerId(i as u32))
            .collect()
    }

    /// The routing layer immediately above `id`, if any.
    #[must_use]
    pub fn routing_layer_above(&self, id: LayerId) -> Option<LayerId> {
        self.layers
            .iter()
            .enumerate()
            .skip(id.index() + 1)
            .find(|(_, l)| l.kind == LayerKind::Routing)
            .map(|(i, _)| LayerId(i as u32))
    }

    /// The routing layer immediately below `id`, if any.
    #[must_use]
    pub fn routing_layer_below(&self, id: LayerId) -> Option<LayerId> {
        self.layers
            .iter()
            .enumerate()
            .take(id.index())
            .rev()
            .find(|(_, l)| l.kind == LayerKind::Routing)
            .map(|(i, _)| LayerId(i as u32))
    }

    /// The cut layer strictly between two routing layers (in either order),
    /// if exactly the adjacent-pair relationship holds.
    #[must_use]
    pub fn cut_between(&self, a: LayerId, b: LayerId) -> Option<LayerId> {
        let (lo, hi) = (a.min(b), a.max(b));
        self.layers
            .iter()
            .enumerate()
            .skip(lo.index() + 1)
            .take(hi.index().saturating_sub(lo.index() + 1))
            .find(|(_, l)| l.kind == LayerKind::Cut)
            .map(|(i, _)| LayerId(i as u32))
    }

    /// All via definitions.
    #[must_use]
    pub fn vias(&self) -> &[ViaDef] {
        &self.vias
    }

    /// The via with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn via(&self, id: ViaId) -> &ViaDef {
        &self.vias[id.index()]
    }

    /// Looks up a via definition by name.
    #[must_use]
    pub fn via_id(&self, name: &str) -> Option<ViaId> {
        let sym = Symbol::lookup(name)?;
        self.via_names.get(&sym).copied()
    }

    /// Looks up a via definition by interned name.
    #[must_use]
    pub fn via_id_sym(&self, name: Symbol) -> Option<ViaId> {
        self.via_names.get(&name).copied()
    }

    /// Ids of the vias whose bottom layer is `layer` (the candidates for an
    /// up-via access from that layer), in declaration order with `DEFAULT`
    /// vias first.
    #[must_use]
    pub fn up_vias_from(&self, layer: LayerId) -> Vec<ViaId> {
        let mut ids: Vec<ViaId> = self
            .vias
            .iter()
            .enumerate()
            .filter(|(_, v)| v.bottom_layer == layer)
            .map(|(i, _)| ViaId(i as u32))
            .collect();
        ids.sort_by_key(|&id| (!self.via(id).is_default, id));
        ids
    }

    /// All sites.
    #[must_use]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Looks up a site by name.
    #[must_use]
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// All cell masters.
    #[must_use]
    pub fn macros(&self) -> &[Macro] {
        &self.macros
    }

    /// Looks up a master by name.
    #[must_use]
    pub fn macro_by_name(&self, name: &str) -> Option<&Macro> {
        let sym = Symbol::lookup(name)?;
        self.macro_names.get(&sym).map(|&i| &self.macros[i])
    }

    /// Looks up a master by interned name — the hot path for
    /// component→master resolution (a u32 hash instead of a string hash).
    #[must_use]
    pub fn macro_by_symbol(&self, name: Symbol) -> Option<&Macro> {
        self.macro_names.get(&name).map(|&i| &self.macros[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pao_geom::{Dir, Rect};

    fn stack3() -> (Tech, LayerId, LayerId, LayerId, LayerId, LayerId) {
        let mut t = Tech::new(2000);
        let m1 = t.add_layer(Layer::routing("M1", Dir::Horizontal, 200, 60, 60));
        let v1 = t.add_layer(Layer::cut("V1", 70, 80));
        let m2 = t.add_layer(Layer::routing("M2", Dir::Vertical, 200, 60, 60));
        let v2 = t.add_layer(Layer::cut("V2", 70, 80));
        let m3 = t.add_layer(Layer::routing("M3", Dir::Horizontal, 200, 60, 60));
        (t, m1, v1, m2, v2, m3)
    }

    #[test]
    fn unit_conversion_rounds() {
        let t = Tech::new(2000);
        assert_eq!(t.microns_to_dbu(0.19), 380);
        assert_eq!(t.microns_to_dbu(0.0001), 0);
        assert_eq!(t.microns_to_dbu(0.00026), 1);
        assert!((t.dbu_to_microns(380) - 0.19).abs() < 1e-12);
    }

    #[test]
    fn adjacency() {
        let (t, m1, v1, m2, v2, m3) = stack3();
        assert_eq!(t.routing_layer_above(m1), Some(m2));
        assert_eq!(t.routing_layer_above(m2), Some(m3));
        assert_eq!(t.routing_layer_above(m3), None);
        assert_eq!(t.routing_layer_below(m2), Some(m1));
        assert_eq!(t.routing_layer_below(m1), None);
        assert_eq!(t.cut_between(m1, m2), Some(v1));
        assert_eq!(t.cut_between(m2, m1), Some(v1));
        assert_eq!(t.cut_between(m2, m3), Some(v2));
        assert_eq!(t.routing_layers(), vec![m1, m2, m3]);
    }

    #[test]
    fn name_lookup() {
        let (t, m1, ..) = stack3();
        assert_eq!(t.layer_id("M1"), Some(m1));
        assert_eq!(t.layer_id("M9"), None);
        assert_eq!(t.layer_by_name("M2").map(|l| l.dir), Some(Dir::Vertical));
    }

    #[test]
    fn up_vias_prefer_default() {
        let (mut t, m1, v1, m2, ..) = stack3();
        let mk = |name: &str| {
            ViaDef::new(
                name,
                m1,
                vec![Rect::new(-65, -35, 65, 35)],
                v1,
                vec![Rect::new(-35, -35, 35, 35)],
                m2,
                vec![Rect::new(-35, -65, 35, 65)],
            )
        };
        let a = t.add_via(mk("via1_a"));
        let mut dflt = mk("via1_d");
        dflt.is_default = true;
        let d = t.add_via(dflt);
        let ups = t.up_vias_from(m1);
        assert_eq!(ups, vec![d, a]);
        assert!(t.up_vias_from(m2).is_empty());
        assert_eq!(t.via_id("via1_a"), Some(a));
    }

    #[test]
    fn macro_and_site_lookup() {
        let (mut t, ..) = stack3();
        t.add_site(Site::new("core", 380, 2800));
        t.add_macro(Macro::new("INVX1", 380, 2800));
        assert!(t.site_by_name("core").is_some());
        assert!(t.macro_by_name("INVX1").is_some());
        assert!(t.macro_by_name("NANDX1").is_none());
    }
}
