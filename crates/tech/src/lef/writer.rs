//! The LEF writer.

use crate::layer::LayerKind;
use crate::tech::Tech;
use pao_geom::{Dbu, Dir, Rect};
use std::fmt::Write as _;

fn um(t: &Tech, v: Dbu) -> String {
    let s = format!("{:.6}", t.dbu_to_microns(v));
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

fn write_rect(out: &mut String, t: &Tech, r: Rect, indent: &str) {
    let _ = writeln!(
        out,
        "{indent}RECT {} {} {} {} ;",
        um(t, r.xlo()),
        um(t, r.ylo()),
        um(t, r.xhi()),
        um(t, r.yhi())
    );
}

/// Serializes a [`Tech`] back to LEF text.
///
/// The output is a normal form: polygons that were decomposed at parse
/// time are written as rectangles, and only the supported rule subset is
/// emitted. `parse_lef(write_lef(t))` reproduces the same database.
#[must_use]
pub fn write_lef(tech: &Tech) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(
        out,
        "UNITS DATABASE MICRONS {} ; END UNITS",
        tech.dbu_per_micron
    );
    if tech.manufacturing_grid > 0 {
        let _ = writeln!(
            out,
            "MANUFACTURINGGRID {} ;",
            um(tech, tech.manufacturing_grid)
        );
    }
    for layer in tech.layers() {
        let _ = writeln!(out, "LAYER {}", layer.name);
        match layer.kind {
            LayerKind::Routing => {
                let _ = writeln!(out, "  TYPE ROUTING ;");
                let dir = if layer.dir == Dir::Horizontal {
                    "HORIZONTAL"
                } else {
                    "VERTICAL"
                };
                let _ = writeln!(out, "  DIRECTION {dir} ;");
                if layer.pitch > 0 {
                    let _ = writeln!(out, "  PITCH {} ;", um(tech, layer.pitch));
                }
                if layer.offset > 0 {
                    let _ = writeln!(out, "  OFFSET {} ;", um(tech, layer.offset));
                }
            }
            LayerKind::Cut => {
                let _ = writeln!(out, "  TYPE CUT ;");
            }
        }
        if layer.width > 0 {
            let _ = writeln!(out, "  WIDTH {} ;", um(tech, layer.width));
        }
        if layer.min_width > 0 && layer.min_width != layer.width {
            let _ = writeln!(out, "  MINWIDTH {} ;", um(tech, layer.min_width));
        }
        if layer.min_area > 0 {
            let s = tech.dbu_per_micron as f64;
            let _ = writeln!(out, "  AREA {:.6} ;", layer.min_area as f64 / (s * s));
        }
        if let Some(step) = layer.min_step {
            let _ = writeln!(
                out,
                "  MINSTEP {} MAXEDGES {} ;",
                um(tech, step.min_step_length),
                step.max_edges
            );
        }
        if layer.spacing > 0 {
            let _ = writeln!(out, "  SPACING {} ;", um(tech, layer.spacing));
        }
        for eol in &layer.eol_rules {
            let _ = writeln!(
                out,
                "  SPACING {} ENDOFLINE {} WITHIN {} ;",
                um(tech, eol.space),
                um(tech, eol.eol_width),
                um(tech, eol.within)
            );
        }
        if let Some(table) = &layer.spacing_table {
            let _ = write!(out, "  SPACINGTABLE PARALLELRUNLENGTH");
            for &p in table.prls() {
                let _ = write!(out, " {}", um(tech, p));
            }
            let _ = writeln!(out);
            for (wi, &w) in table.widths().iter().enumerate() {
                let _ = write!(out, "    WIDTH {}", um(tech, w));
                for &s in &table.matrix()[wi] {
                    let _ = write!(out, " {}", um(tech, s));
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(out, "  ;");
        }
        let _ = writeln!(out, "END {}", layer.name);
    }
    for via in tech.vias() {
        let dflt = if via.is_default { " DEFAULT" } else { "" };
        let _ = writeln!(out, "VIA {}{dflt}", via.name);
        for (layer, shapes) in [
            (via.bottom_layer, &via.bottom_shapes),
            (via.cut_layer, &via.cut_shapes),
            (via.top_layer, &via.top_shapes),
        ] {
            let _ = writeln!(out, "  LAYER {} ;", tech.layer(layer).name);
            for &r in shapes {
                write_rect(&mut out, tech, r, "    ");
            }
        }
        let _ = writeln!(out, "END {}", via.name);
    }
    for site in tech.sites() {
        let _ = writeln!(out, "SITE {}", site.name);
        let _ = writeln!(out, "  CLASS CORE ;");
        let _ = writeln!(
            out,
            "  SIZE {} BY {} ;",
            um(tech, site.width),
            um(tech, site.height)
        );
        let _ = writeln!(out, "END {}", site.name);
    }
    for m in tech.macros() {
        let _ = writeln!(out, "MACRO {}", m.name);
        let _ = writeln!(out, "  CLASS {} ;", m.class);
        let _ = writeln!(out, "  ORIGIN 0 0 ;");
        let _ = writeln!(
            out,
            "  SIZE {} BY {} ;",
            um(tech, m.width),
            um(tech, m.height)
        );
        if let Some(site) = &m.site {
            let _ = writeln!(out, "  SITE {site} ;");
        }
        for pin in &m.pins {
            let _ = writeln!(out, "  PIN {}", pin.name);
            let _ = writeln!(out, "    DIRECTION {} ;", pin.dir.as_str());
            let _ = writeln!(out, "    USE {} ;", pin.use_.as_str());
            let _ = writeln!(out, "    PORT");
            for port in &pin.ports {
                let _ = writeln!(out, "      LAYER {} ;", tech.layer(port.layer).name);
                for r in port.flat_rects() {
                    write_rect(&mut out, tech, r, "        ");
                }
            }
            let _ = writeln!(out, "    END");
            let _ = writeln!(out, "  END {}", pin.name);
        }
        if !m.obs.is_empty() {
            let _ = writeln!(out, "  OBS");
            let mut last_layer = None;
            for &(layer, r) in &m.obs {
                if last_layer != Some(layer) {
                    let _ = writeln!(out, "    LAYER {} ;", tech.layer(layer).name);
                    last_layer = Some(layer);
                }
                write_rect(&mut out, tech, r, "      ");
            }
            let _ = writeln!(out, "  END");
        }
        let _ = writeln!(out, "END {}", m.name);
    }
    let _ = writeln!(out, "END LIBRARY");
    out
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_lef;
    use super::*;

    const SAMPLE: &str = r#"
UNITS DATABASE MICRONS 2000 ; END UNITS
MANUFACTURINGGRID 0.005 ;
LAYER M1
  TYPE ROUTING ; DIRECTION HORIZONTAL ; PITCH 0.19 ; OFFSET 0.095 ;
  WIDTH 0.06 ; AREA 0.02 ; MINSTEP 0.05 MAXEDGES 1 ; SPACING 0.06 ;
  SPACING 0.07 ENDOFLINE 0.08 WITHIN 0.025 ;
  SPACINGTABLE PARALLELRUNLENGTH 0 0.5
    WIDTH 0 0.06 0.06
    WIDTH 0.2 0.06 0.14 ;
END M1
LAYER V1 TYPE CUT ; WIDTH 0.05 ; SPACING 0.08 ; END V1
LAYER M2 TYPE ROUTING ; DIRECTION VERTICAL ; PITCH 0.2 ; WIDTH 0.06 ; SPACING 0.06 ; END M2
VIA via1_0 DEFAULT
  LAYER M1 ; RECT -0.065 -0.035 0.065 0.035 ;
  LAYER V1 ; RECT -0.025 -0.025 0.025 0.025 ;
  LAYER M2 ; RECT -0.035 -0.065 0.035 0.065 ;
END via1_0
SITE core CLASS CORE ; SIZE 0.19 BY 1.4 ; END core
MACRO INVX1
  CLASS CORE ; SIZE 0.38 BY 1.4 ; SITE core ;
  PIN A DIRECTION INPUT ; USE SIGNAL ;
    PORT LAYER M1 ; RECT 0.05 0.2 0.12 0.6 ; END
  END A
  OBS LAYER M1 ; RECT 0.3 0.0 0.35 1.0 ; END
END INVX1
END LIBRARY
"#;

    #[test]
    fn roundtrip_preserves_database() {
        let t1 = parse_lef(SAMPLE).unwrap();
        let text = write_lef(&t1);
        let t2 = parse_lef(&text).unwrap();
        assert_eq!(t1.dbu_per_micron, t2.dbu_per_micron);
        assert_eq!(t1.manufacturing_grid, t2.manufacturing_grid);
        assert_eq!(t1.layers(), t2.layers());
        assert_eq!(t1.vias(), t2.vias());
        assert_eq!(t1.sites(), t2.sites());
        assert_eq!(t1.macros(), t2.macros());
    }

    #[test]
    fn micron_formatting_trims_zeros() {
        let t = parse_lef("UNITS DATABASE MICRONS 2000 ; END UNITS\nEND LIBRARY").unwrap();
        assert_eq!(um(&t, 380), "0.19");
        assert_eq!(um(&t, 0), "0");
        assert_eq!(um(&t, 2000), "1");
        assert_eq!(um(&t, -380), "-0.19");
    }
}
