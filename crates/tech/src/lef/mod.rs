//! LEF reading and writing.
//!
//! Supports the LEF 5.8 subset that pin access analysis needs: units,
//! manufacturing grid, routing/cut layers with the rules in
//! [`rules`](crate::rules), fixed vias, sites, and macros with pins
//! (RECT and POLYGON ports) and obstructions. Unknown statements are
//! skipped, so real-world LEF headers parse cleanly.
//!
//! ```
//! use pao_tech::lef;
//!
//! let src = "\
//! UNITS DATABASE MICRONS 2000 ; END UNITS
//! LAYER M1 TYPE ROUTING ; DIRECTION HORIZONTAL ; PITCH 0.19 ; WIDTH 0.06 ;
//!   SPACING 0.06 ; END M1
//! END LIBRARY
//! ";
//! let tech = lef::parse_lef(src)?;
//! let out = lef::write_lef(&tech);
//! let again = lef::parse_lef(&out)?;
//! assert_eq!(again.layers().len(), 1);
//! # Ok::<(), lef::ParseLefError>(())
//! ```

mod lexer;
mod parser;
mod writer;

pub use lexer::{Lexer, Token};
pub use parser::{parse_lef, ParseLefError};
pub use writer::write_lef;
