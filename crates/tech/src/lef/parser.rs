//! The LEF parser.

use super::lexer::Cursor;
use crate::layer::{Layer, LayerId, LayerKind};
use crate::macros::{Macro, MacroClass, Pin, PinDir, Port};
use crate::rules::{EolRule, MinStepRule, SpacingTable};
use crate::site::Site;
use crate::tech::Tech;
use crate::via::ViaDef;
use pao_geom::{Dbu, Dir, Point, Polygon, Rect};
use std::fmt;

/// Error produced while parsing LEF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLefError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line where the error was detected (0 = end of input).
    pub line: u32,
}

impl ParseLefError {
    fn new(message: impl Into<String>, line: u32) -> ParseLefError {
        ParseLefError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseLefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLefError {}

struct LefParser {
    cur: Cursor,
    tech: Tech,
}

type Result<T> = std::result::Result<T, ParseLefError>;

impl LefParser {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseLefError::new(msg, self.cur.line()))
    }

    fn next_word(&mut self) -> Result<String> {
        match self.cur.next() {
            Some(t) => Ok(t.text.clone()),
            None => Err(ParseLefError::new("unexpected end of input", 0)),
        }
    }

    fn expect(&mut self, kw: &str) -> Result<()> {
        let t = self.next_word()?;
        if t == kw {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{t}`"))
        }
    }

    fn number(&mut self) -> Result<f64> {
        let t = self.next_word()?;
        t.parse::<f64>().map_err(|_| {
            ParseLefError::new(format!("expected a number, found `{t}`"), self.cur.line())
        })
    }

    fn dbu(&mut self) -> Result<Dbu> {
        let v = self.number()?;
        Ok(self.tech.microns_to_dbu(v))
    }

    fn parse(mut self) -> Result<Tech> {
        while let Some(t) = self.cur.peek() {
            let kw = t.text.clone();
            match kw.as_str() {
                "UNITS" => self.parse_units()?,
                "MANUFACTURINGGRID" => {
                    self.cur.next();
                    let g = self.dbu()?;
                    self.tech.manufacturing_grid = g;
                    self.expect(";")?;
                }
                "LAYER" => self.parse_layer()?,
                "VIA" => self.parse_via()?,
                "SITE" => self.parse_site()?,
                "MACRO" => self.parse_macro()?,
                "END" => {
                    self.cur.next();
                    // `END LIBRARY` (or a bare trailing END) terminates the
                    // file; `END <something>` closes a skipped block (e.g.
                    // PROPERTYDEFINITIONS) — consume its name and continue.
                    match self.cur.next() {
                        None => break,
                        Some(t) if t.text == "LIBRARY" => break,
                        Some(_) => {}
                    }
                }
                _ => {
                    // VERSION, BUSBITCHARS, PROPERTYDEFINITIONS body, …
                    self.cur.next();
                    self.cur.skip_statement();
                }
            }
        }
        Ok(self.tech)
    }

    fn parse_units(&mut self) -> Result<()> {
        self.expect("UNITS")?;
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "DATABASE" => {
                    self.expect("MICRONS")?;
                    let n = self.number()?;
                    if n <= 0.0 {
                        return self.err("DATABASE MICRONS must be positive");
                    }
                    self.tech.dbu_per_micron = n as Dbu;
                    self.expect(";")?;
                }
                "END" => {
                    self.expect("UNITS")?;
                    break;
                }
                _ => self.cur.skip_statement(),
            }
        }
        if self.tech.dbu_per_micron == 0 {
            self.tech.dbu_per_micron = 1000; // LEF default when UNITS omits it
        }
        Ok(())
    }

    fn parse_layer(&mut self) -> Result<()> {
        self.expect("LAYER")?;
        let name = self.next_word()?;
        if self.tech.dbu_per_micron == 0 {
            self.tech.dbu_per_micron = 1000;
        }
        let mut layer = Layer::routing(name.clone(), Dir::Horizontal, 0, 0, 0);
        layer.min_width = 0;
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "TYPE" => {
                    let k = self.next_word()?;
                    layer.kind = match k.as_str() {
                        "ROUTING" => LayerKind::Routing,
                        "CUT" => LayerKind::Cut,
                        other => {
                            // MASTERSLICE / OVERLAP etc.: keep as cut-like
                            // non-routing so it is never used for wires.
                            let _ = other;
                            LayerKind::Cut
                        }
                    };
                    self.expect(";")?;
                }
                "DIRECTION" => {
                    let d = self.next_word()?;
                    layer.dir = match d.as_str() {
                        "HORIZONTAL" => Dir::Horizontal,
                        "VERTICAL" => Dir::Vertical,
                        other => return self.err(format!("unknown DIRECTION `{other}`")),
                    };
                    self.expect(";")?;
                }
                "PITCH" => {
                    let p = self.dbu()?;
                    // PITCH may carry one or two values; keep the first.
                    if !self.cur.eat(";") {
                        let _second = self.number()?;
                        self.expect(";")?;
                    }
                    layer.pitch = p;
                }
                "OFFSET" => {
                    let o = self.dbu()?;
                    if !self.cur.eat(";") {
                        let _second = self.number()?;
                        self.expect(";")?;
                    }
                    layer.offset = o;
                }
                "WIDTH" => {
                    layer.width = self.dbu()?;
                    if layer.min_width == 0 {
                        layer.min_width = layer.width;
                    }
                    self.expect(";")?;
                }
                "MINWIDTH" => {
                    layer.min_width = self.dbu()?;
                    self.expect(";")?;
                }
                "AREA" => {
                    // Given in µm²; convert with the square of the scale.
                    let a = self.number()?;
                    let s = self.tech.dbu_per_micron as f64;
                    layer.min_area = (a * s * s).round() as i128;
                    self.expect(";")?;
                }
                "MINSTEP" => {
                    let len = self.dbu()?;
                    let mut rule = MinStepRule::simple(len);
                    if self.cur.eat("MAXEDGES") {
                        rule.max_edges = self.number()? as u32;
                    }
                    layer.min_step = Some(rule);
                    self.cur.skip_statement();
                }
                "SPACING" => {
                    let s = self.dbu()?;
                    if self.cur.eat("ENDOFLINE") {
                        let w = self.dbu()?;
                        self.expect("WITHIN")?;
                        let within = self.dbu()?;
                        layer.eol_rules.push(EolRule {
                            space: s,
                            eol_width: w,
                            within,
                        });
                        self.cur.skip_statement();
                    } else {
                        layer.spacing = layer.spacing.max(s);
                        self.cur.skip_statement();
                    }
                }
                "SPACINGTABLE" => {
                    layer.spacing_table = Some(self.parse_spacing_table()?);
                }
                "END" => {
                    let n = self.next_word()?;
                    if n != name {
                        return self.err(format!("LAYER END name mismatch: `{n}` vs `{name}`"));
                    }
                    break;
                }
                _ => self.cur.skip_statement(),
            }
        }
        if layer.kind == LayerKind::Cut && layer.min_width == 0 {
            layer.min_width = layer.width;
        }
        self.tech.add_layer(layer);
        Ok(())
    }

    fn parse_spacing_table(&mut self) -> Result<SpacingTable> {
        self.expect("PARALLELRUNLENGTH")?;
        let mut prls = Vec::new();
        loop {
            match self.cur.peek() {
                Some(t) if t.text == "WIDTH" => break,
                Some(_) => prls.push(self.dbu()?),
                None => return self.err("unterminated SPACINGTABLE"),
            }
        }
        let mut widths = Vec::new();
        let mut matrix = Vec::new();
        while self.cur.eat("WIDTH") {
            widths.push(self.dbu()?);
            let mut row = Vec::with_capacity(prls.len());
            for _ in 0..prls.len() {
                row.push(self.dbu()?);
            }
            matrix.push(row);
        }
        self.expect(";")?;
        if prls.is_empty() || widths.is_empty() {
            return self.err("SPACINGTABLE must have PRL columns and WIDTH rows");
        }
        Ok(SpacingTable::new(widths, prls, matrix))
    }

    fn layer_id(&self, name: &str) -> Result<LayerId> {
        self.tech
            .layer_id(name)
            .ok_or_else(|| ParseLefError::new(format!("unknown layer `{name}`"), self.cur.line()))
    }

    fn parse_rect(&mut self) -> Result<Rect> {
        let x1 = self.dbu()?;
        let y1 = self.dbu()?;
        let x2 = self.dbu()?;
        let y2 = self.dbu()?;
        self.expect(";")?;
        Ok(Rect::new(x1, y1, x2, y2))
    }

    fn parse_polygon(&mut self) -> Result<Polygon> {
        let mut pts = Vec::new();
        loop {
            match self.cur.peek() {
                Some(t) if t.text == ";" => {
                    self.cur.next();
                    break;
                }
                Some(_) => {
                    let x = self.dbu()?;
                    let y = self.dbu()?;
                    pts.push(Point::new(x, y));
                }
                None => return self.err("unterminated POLYGON"),
            }
        }
        Polygon::new(pts).map_err(|e| ParseLefError::new(e.to_string(), self.cur.line()))
    }

    fn parse_via(&mut self) -> Result<()> {
        self.expect("VIA")?;
        let name = self.next_word()?;
        let is_default = self.cur.eat("DEFAULT");
        let mut per_layer: Vec<(LayerId, Vec<Rect>)> = Vec::new();
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "LAYER" => {
                    let lname = self.next_word()?;
                    let id = self.layer_id(&lname)?;
                    self.expect(";")?;
                    per_layer.push((id, Vec::new()));
                }
                "RECT" => {
                    let r = self.parse_rect()?;
                    match per_layer.last_mut() {
                        Some((_, v)) => v.push(r),
                        None => return self.err("RECT before LAYER in VIA"),
                    }
                }
                "END" => {
                    let n = self.next_word()?;
                    if n != name {
                        return self.err(format!("VIA END name mismatch: `{n}` vs `{name}`"));
                    }
                    break;
                }
                _ => self.cur.skip_statement(),
            }
        }
        // Classify bottom/cut/top by layer kind and stack order.
        per_layer.sort_by_key(|(id, _)| *id);
        let mut bottom = None;
        let mut cut = None;
        let mut top = None;
        for (id, shapes) in per_layer {
            match self.tech.layer(id).kind {
                LayerKind::Cut => cut = Some((id, shapes)),
                LayerKind::Routing if bottom.is_none() => bottom = Some((id, shapes)),
                LayerKind::Routing => top = Some((id, shapes)),
            }
        }
        let (Some(bottom), Some(cut), Some(top)) = (bottom, cut, top) else {
            return self.err(format!("VIA `{name}` must have bottom, cut and top layers"));
        };
        let mut via = ViaDef::new(name, bottom.0, bottom.1, cut.0, cut.1, top.0, top.1);
        via.is_default = is_default;
        self.tech.add_via(via);
        Ok(())
    }

    fn parse_site(&mut self) -> Result<()> {
        self.expect("SITE")?;
        let name = self.next_word()?;
        let mut size = None;
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "SIZE" => {
                    let w = self.dbu()?;
                    self.expect("BY")?;
                    let h = self.dbu()?;
                    self.expect(";")?;
                    size = Some((w, h));
                }
                "END" => {
                    let n = self.next_word()?;
                    if n != name {
                        return self.err(format!("SITE END name mismatch: `{n}` vs `{name}`"));
                    }
                    break;
                }
                _ => self.cur.skip_statement(),
            }
        }
        let Some((w, h)) = size else {
            return self.err(format!("SITE `{name}` missing SIZE"));
        };
        self.tech.add_site(Site::new(name, w, h));
        Ok(())
    }

    fn parse_macro(&mut self) -> Result<()> {
        self.expect("MACRO")?;
        let name = self.next_word()?;
        let mut m = Macro::new(name.clone(), 0, 0);
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "CLASS" => {
                    let c = self.next_word()?;
                    m.class = match c.as_str() {
                        "CORE" => MacroClass::Core,
                        "BLOCK" => MacroClass::Block,
                        "PAD" => MacroClass::Pad,
                        _ => MacroClass::Core,
                    };
                    self.cur.skip_statement();
                }
                "SIZE" => {
                    m.width = self.dbu()?;
                    self.expect("BY")?;
                    m.height = self.dbu()?;
                    self.expect(";")?;
                }
                "SITE" => {
                    m.site = Some(self.next_word()?.into());
                    self.cur.skip_statement();
                }
                "PIN" => {
                    let pin = self.parse_pin()?;
                    m.pins.push(pin);
                }
                "OBS" => {
                    self.parse_obs(&mut m)?;
                }
                "END" => {
                    let n = self.next_word()?;
                    if n != name {
                        return self.err(format!("MACRO END name mismatch: `{n}` vs `{name}`"));
                    }
                    break;
                }
                _ => self.cur.skip_statement(),
            }
        }
        self.tech.add_macro(m);
        Ok(())
    }

    fn parse_pin(&mut self) -> Result<Pin> {
        let name = self.next_word()?;
        let mut pin = Pin::new(name.clone(), PinDir::Input, Vec::new());
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "DIRECTION" => {
                    let d = self.next_word()?;
                    pin.dir = d
                        .parse()
                        .map_err(|e: String| ParseLefError::new(e, self.cur.line()))?;
                    self.cur.skip_statement();
                }
                "USE" => {
                    let u = self.next_word()?;
                    pin.use_ = u
                        .parse()
                        .map_err(|e: String| ParseLefError::new(e, self.cur.line()))?;
                    self.expect(";")?;
                }
                "PORT" => {
                    let mut current: Option<Port> = None;
                    loop {
                        let t = self.next_word()?;
                        match t.as_str() {
                            "LAYER" => {
                                if let Some(p) = current.take() {
                                    pin.ports.push(p);
                                }
                                let lname = self.next_word()?;
                                let id = self.layer_id(&lname)?;
                                self.cur.skip_statement();
                                current = Some(Port::rects(id, Vec::new()));
                            }
                            "RECT" => {
                                let r = self.parse_rect()?;
                                match current.as_mut() {
                                    Some(p) => p.rects.push(r),
                                    None => return self.err("RECT before LAYER in PORT"),
                                }
                            }
                            "POLYGON" => {
                                let poly = self.parse_polygon()?;
                                match current.as_mut() {
                                    Some(p) => p.polygons.push(poly),
                                    None => return self.err("POLYGON before LAYER in PORT"),
                                }
                            }
                            "END" => break,
                            _ => self.cur.skip_statement(),
                        }
                    }
                    if let Some(p) = current.take() {
                        pin.ports.push(p);
                    }
                }
                "END" => {
                    let n = self.next_word()?;
                    if n != name {
                        return self.err(format!("PIN END name mismatch: `{n}` vs `{name}`"));
                    }
                    break;
                }
                _ => self.cur.skip_statement(),
            }
        }
        Ok(pin)
    }

    fn parse_obs(&mut self, m: &mut Macro) -> Result<()> {
        let mut layer: Option<LayerId> = None;
        loop {
            let t = self.next_word()?;
            match t.as_str() {
                "LAYER" => {
                    let lname = self.next_word()?;
                    layer = Some(self.layer_id(&lname)?);
                    self.cur.skip_statement();
                }
                "RECT" => {
                    let r = self.parse_rect()?;
                    match layer {
                        Some(id) => m.obs.push((id, r)),
                        None => return self.err("RECT before LAYER in OBS"),
                    }
                }
                "POLYGON" => {
                    let poly = self.parse_polygon()?;
                    match layer {
                        Some(id) => m.obs.extend(poly.to_rects().into_iter().map(|r| (id, r))),
                        None => return self.err("POLYGON before LAYER in OBS"),
                    }
                }
                "END" => break,
                _ => self.cur.skip_statement(),
            }
        }
        Ok(())
    }
}

/// Parses LEF source into a [`Tech`].
///
/// # Errors
///
/// Returns [`ParseLefError`] (with a line number) on malformed input —
/// unknown layers referenced by vias/pins, mismatched `END` names, or
/// non-numeric values where numbers are required. Unknown statements are
/// skipped rather than rejected.
pub fn parse_lef(src: &str) -> std::result::Result<Tech, ParseLefError> {
    LefParser {
        cur: Cursor::new(src),
        tech: Tech::new(0),
    }
    .parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
VERSION 5.8 ;
BUSBITCHARS "[]" ;
UNITS DATABASE MICRONS 2000 ; END UNITS
MANUFACTURINGGRID 0.005 ;
LAYER M1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.19 ;
  OFFSET 0.095 ;
  WIDTH 0.06 ;
  AREA 0.02 ;
  MINSTEP 0.05 MAXEDGES 1 ;
  SPACING 0.06 ;
  SPACING 0.07 ENDOFLINE 0.08 WITHIN 0.025 ;
  SPACINGTABLE PARALLELRUNLENGTH 0 0.5
    WIDTH 0 0.06 0.06
    WIDTH 0.2 0.06 0.14 ;
END M1
LAYER V1
  TYPE CUT ;
  WIDTH 0.05 ;
  SPACING 0.08 ;
END V1
LAYER M2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.2 ;
  WIDTH 0.06 ;
  SPACING 0.06 ;
END M2
VIA via1_0 DEFAULT
  LAYER M1 ;
    RECT -0.065 -0.035 0.065 0.035 ;
  LAYER V1 ;
    RECT -0.025 -0.025 0.025 0.025 ;
  LAYER M2 ;
    RECT -0.035 -0.065 0.035 0.065 ;
END via1_0
SITE core
  CLASS CORE ;
  SIZE 0.19 BY 1.4 ;
END core
MACRO NAND2X1
  CLASS CORE ;
  ORIGIN 0 0 ;
  SIZE 0.57 BY 1.4 ;
  SITE core ;
  PIN A
    DIRECTION INPUT ;
    USE SIGNAL ;
    PORT
      LAYER M1 ;
        RECT 0.05 0.2 0.12 0.6 ;
        POLYGON 0.2 0.2 0.4 0.2 0.4 0.3 0.3 0.3 0.3 0.6 0.2 0.6 ;
    END
  END A
  PIN VDD
    DIRECTION INOUT ;
    USE POWER ;
    PORT
      LAYER M1 ;
        RECT 0.0 1.3 0.57 1.4 ;
    END
  END VDD
  OBS
    LAYER M1 ;
      RECT 0.45 0.0 0.5 1.0 ;
  END
END NAND2X1
END LIBRARY
"#;

    #[test]
    fn parses_full_sample() {
        let t = parse_lef(SAMPLE).unwrap();
        assert_eq!(t.dbu_per_micron, 2000);
        assert_eq!(t.manufacturing_grid, 10);
        assert_eq!(t.layers().len(), 3);

        let m1 = t.layer_by_name("M1").unwrap();
        assert_eq!(m1.pitch, 380);
        assert_eq!(m1.offset, 190);
        assert_eq!(m1.width, 120);
        assert_eq!(m1.min_area, (0.02 * 2000.0 * 2000.0) as i128);
        assert_eq!(m1.spacing, 120);
        assert_eq!(m1.eol_rules.len(), 1);
        assert_eq!(m1.eol_rules[0].space, 140);
        assert_eq!(m1.min_step.unwrap().min_step_length, 100);
        let st = m1.spacing_table.as_ref().unwrap();
        assert_eq!(st.lookup(500, 2000), 280);

        let v1 = t.layer_by_name("V1").unwrap();
        assert!(v1.is_cut());
        assert_eq!(v1.width, 100);

        assert_eq!(t.vias().len(), 1);
        let via = t.via(t.via_id("via1_0").unwrap());
        assert!(via.is_default);
        assert_eq!(via.bottom_layer, t.layer_id("M1").unwrap());
        assert_eq!(via.top_layer, t.layer_id("M2").unwrap());
        assert_eq!(via.cut_bbox(), Rect::new(-50, -50, 50, 50));

        assert_eq!(t.sites().len(), 1);
        let nand = t.macro_by_name("NAND2X1").unwrap();
        assert_eq!((nand.width, nand.height), (1140, 2800));
        assert_eq!(nand.site.as_deref(), Some("core"));
        assert_eq!(nand.pins.len(), 2);
        let a = nand.pin("A").unwrap();
        assert_eq!(a.ports.len(), 1);
        assert_eq!(a.ports[0].rects.len(), 1);
        assert_eq!(a.ports[0].polygons.len(), 1);
        assert_eq!(nand.obs.len(), 1);
        assert_eq!(nand.signal_pins().count(), 1);
    }

    #[test]
    fn default_units_when_missing() {
        let t = parse_lef("LAYER M1 TYPE ROUTING ; WIDTH 0.1 ; END M1\nEND LIBRARY").unwrap();
        assert_eq!(t.dbu_per_micron, 1000);
        assert_eq!(t.layer_by_name("M1").unwrap().width, 100);
    }

    #[test]
    fn error_on_unknown_layer_in_via() {
        let src =
            "UNITS DATABASE MICRONS 1000 ; END UNITS\nVIA v LAYER BOGUS ; RECT 0 0 1 1 ; END v";
        let err = parse_lef(src).unwrap_err();
        assert!(err.message.contains("unknown layer"));
        assert!(err.line > 0);
    }

    #[test]
    fn error_on_end_name_mismatch() {
        let src = "LAYER M1 TYPE ROUTING ; END M2";
        let err = parse_lef(src).unwrap_err();
        assert!(err.message.contains("mismatch"));
    }

    #[test]
    fn error_on_bad_number() {
        let src = "UNITS DATABASE MICRONS banana ; END UNITS";
        let err = parse_lef(src).unwrap_err();
        assert!(err.message.contains("expected a number"));
    }

    #[test]
    fn skips_unknown_statements() {
        let src = "\
NAMESCASESENSITIVE ON ;\n\
UNITS DATABASE MICRONS 1000 ; END UNITS\n\
LAYER M1 TYPE ROUTING ; FANCYNEWRULE 1 2 3 ; WIDTH 0.1 ; END M1\n\
END LIBRARY";
        let t = parse_lef(src).unwrap();
        assert_eq!(t.layers().len(), 1);
    }
}
