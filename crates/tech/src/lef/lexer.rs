//! Whitespace tokenizer shared by the LEF and DEF readers.

use std::fmt;

/// A token with its 1-based source line, as produced by [`Lexer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (words, numbers, or the punctuation `;` `(` `)` `+` `-`
    /// when standing alone).
    pub text: String,
    /// 1-based line number for error reporting.
    pub line: u32,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` (line {})", self.text, self.line)
    }
}

/// Splits LEF/DEF source into whitespace-separated tokens, treating `;`,
/// `(` and `)` as standalone tokens and `#` comments as line comments.
///
/// ```
/// use pao_tech::lef::Lexer;
/// let toks: Vec<String> = Lexer::tokenize("RECT 0 0 1 1 ; # c\nEND")
///     .into_iter().map(|t| t.text).collect();
/// assert_eq!(toks, vec!["RECT", "0", "0", "1", "1", ";", "END"]);
/// ```
#[derive(Debug)]
pub struct Lexer;

impl Lexer {
    /// Tokenizes `src` (see type-level docs).
    #[must_use]
    pub fn tokenize(src: &str) -> Vec<Token> {
        let mut out = Vec::new();
        for (lineno, line) in src.lines().enumerate() {
            let line = match line.find('#') {
                Some(i) => &line[..i],
                None => line,
            };
            let lineno = lineno as u32 + 1;
            let mut word = String::new();
            let flush = |word: &mut String, out: &mut Vec<Token>| {
                if !word.is_empty() {
                    out.push(Token {
                        text: std::mem::take(word),
                        line: lineno,
                    });
                }
            };
            for c in line.chars() {
                match c {
                    ';' | '(' | ')' => {
                        flush(&mut word, &mut out);
                        out.push(Token {
                            text: c.to_string(),
                            line: lineno,
                        });
                    }
                    c if c.is_whitespace() => flush(&mut word, &mut out),
                    c => word.push(c),
                }
            }
            flush(&mut word, &mut out);
        }
        out
    }
}

/// A cursor over a token stream with the lookahead helpers the parsers
/// share.
#[derive(Debug)]
pub(crate) struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    pub(crate) fn new(src: &str) -> Cursor {
        Cursor {
            tokens: Lexer::tokenize(src),
            pos: 0,
        }
    }

    /// The next token without consuming it.
    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// Consumes and returns the next token.
    pub(crate) fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The line of the most recently consumed token (for errors).
    pub(crate) fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map_or(0, |t| t.line)
    }

    /// `true` and consume when the next token equals `kw`.
    pub(crate) fn eat(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.text == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes tokens up to and including the next `;`.
    pub(crate) fn skip_statement(&mut self) {
        while let Some(t) = self.next() {
            if t.text == ";" {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn punctuation_splits() {
        let toks = Lexer::tokenize("A;B ( C )");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["A", ";", "B", "(", "C", ")"]);
    }

    #[test]
    fn comments_stripped_and_lines_tracked() {
        let toks = Lexer::tokenize("A # comment ; hidden\nB");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn cursor_basics() {
        let mut c = Cursor::new("WIDTH 0.06 ; NEXT");
        assert!(c.eat("WIDTH"));
        assert_eq!(c.next().unwrap().text, "0.06");
        c.skip_statement();
        assert_eq!(c.peek().unwrap().text, "NEXT");
        assert!(!c.eat("WIDTH"));
    }

    #[test]
    fn empty_input() {
        assert!(Lexer::tokenize("").is_empty());
        assert!(Lexer::tokenize("# only a comment").is_empty());
    }
}
