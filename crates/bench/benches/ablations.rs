//! Runtime ablations: k (APs per pin) and coordinate-type restriction
//! (quality ablations live in `tables -- ablations`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pao_core::{CoordType, PaoConfig, PinAccessOracle};
use pao_testgen::{generate, SuiteCase};

fn bench_ablations(c: &mut Criterion) {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for k in [1usize, 3, 8] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            let mut cfg = PaoConfig::default();
            cfg.apgen.k = k;
            b.iter(|| PinAccessOracle::with_config(cfg.clone()).analyze(&tech, &design))
        });
    }
    g.bench_function("on_track_only", |b| {
        let mut cfg = PaoConfig::default();
        cfg.apgen.pref_types = vec![CoordType::OnTrack];
        cfg.apgen.nonpref_types = vec![CoordType::OnTrack];
        b.iter(|| PinAccessOracle::with_config(cfg.clone()).analyze(&tech, &design))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
