//! Benchmarks the routing scaffold (Experiment 3's two arms).

use criterion::{criterion_group, criterion_main, Criterion};
use pao_core::PinAccessOracle;
use pao_router::route::{RouteConfig, Router};
use pao_testgen::{generate, SuiteCase};

fn bench_routing(c: &mut Criterion) {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let mut g = c.benchmark_group("routing");
    g.sample_size(10);
    g.bench_function("route_with_pao", |b| {
        b.iter(|| Router::new(&tech, &design, RouteConfig::default()).route_with_pao(&pao))
    });
    g.bench_function("route_with_center_access", |b| {
        b.iter(|| {
            Router::new(&tech, &design, RouteConfig::default()).route_with_accessor(|_, _| None)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
