//! Benchmarks DRC engine primitives (the inner loop of Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion};
use pao_core::unique::{build_instance_context, local_pin_owner};
use pao_drc::{DrcEngine, DrcScratch};
use pao_geom::Point;
use pao_testgen::{generate, SuiteCase};

fn bench_drc(c: &mut Criterion) {
    let (tech, design) = generate(&SuiteCase::small_smoke());
    let engine = DrcEngine::new(&tech);
    let comp = pao_design::CompId(0);
    let ctx = build_instance_context(&tech, &design, comp);
    let pin_shape = design
        .placed_pin_shapes(&tech, comp)
        .first()
        .copied()
        .expect("component has pins");
    let at = pin_shape.2.center();
    let via = tech.via(tech.up_vias_from(pin_shape.1)[0]);
    let mut g = c.benchmark_group("drc");
    g.bench_function("check_via_placement", |b| {
        b.iter(|| engine.check_via_placement(via, at, local_pin_owner(pin_shape.0), &ctx))
    });
    g.bench_function("check_via_placement_offset", |b| {
        b.iter(|| {
            engine.check_via_placement(
                via,
                at + Point::new(37, 53),
                local_pin_owner(pin_shape.0),
                &ctx,
            )
        })
    });
    // Steady-state first-verdict probing through a reused scratch: after a
    // short warm-up the buffers stop growing, so the hot loop is
    // allocation-free.
    g.bench_function("via_placement_clean_scratch", |b| {
        let mut ws = DrcScratch::new();
        let owner = local_pin_owner(pin_shape.0);
        for _ in 0..64 {
            engine.via_placement_clean(via, at, owner, &ctx, &mut ws);
            engine.via_placement_clean(via, at + Point::new(37, 53), owner, &ctx, &mut ws);
        }
        let warm = ws.high_water();
        b.iter(|| {
            let a = engine.via_placement_clean(via, at, owner, &ctx, &mut ws);
            let b = engine.via_placement_clean(via, at + Point::new(37, 53), owner, &ctx, &mut ws);
            (a, b)
        });
        assert_eq!(
            ws.high_water(),
            warm,
            "scratch capacities must be stable after warm-up"
        );
    });
    g.finish();
}

criterion_group!(benches, bench_drc);
criterion_main!(benches);
