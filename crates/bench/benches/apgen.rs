//! Benchmarks step 1 (access point generation): PAAF vs the TrRte-like
//! baseline (Table II's runtime columns).

use criterion::{criterion_group, criterion_main, Criterion};
use pao_core::PinAccessOracle;
use pao_router::{baseline_pin_access, BaselineConfig};
use pao_testgen::{generate, SuiteCase, TechFlavor};

fn bench_case() -> SuiteCase {
    SuiteCase {
        name: "bench300".into(),
        flavor: TechFlavor::N45,
        cells: 300,
        macros: 0,
        nets: 250,
        io_pins: 8,
        utilization: 82,
        seed: 77,
    }
}

fn bench_apgen(c: &mut Criterion) {
    let (tech, design) = generate(&bench_case());
    let mut g = c.benchmark_group("apgen");
    g.sample_size(10);
    g.bench_function("paaf_full_analysis", |b| {
        b.iter(|| PinAccessOracle::new().analyze(&tech, &design))
    });
    g.bench_function("trrte_baseline", |b| {
        b.iter(|| baseline_pin_access(&tech, &design, &BaselineConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_apgen);
criterion_main!(benches);
