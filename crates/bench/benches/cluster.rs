//! Benchmarks step 3 (cluster-based pattern selection) in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use pao_core::cluster::{build_clusters, select_patterns, select_patterns_budget, SelectTuning};
use pao_core::{CancelToken, PhaseBudget, PinAccessOracle};
use pao_drc::DrcEngine;
use pao_testgen::{generate, SuiteCase, TechFlavor};

fn bench_cluster(c: &mut Criterion) {
    let case = SuiteCase {
        name: "bench600".into(),
        flavor: TechFlavor::N45,
        cells: 600,
        macros: 0,
        nets: 450,
        io_pins: 8,
        utilization: 85,
        seed: 79,
    };
    let (tech, design) = generate(&case);
    let result = PinAccessOracle::new().analyze(&tech, &design);
    let engine = DrcEngine::new(&tech);
    let mut g = c.benchmark_group("cluster");
    g.bench_function("build_clusters", |b| {
        b.iter(|| build_clusters(&tech, &design))
    });
    g.bench_function("select_patterns", |b| {
        b.iter(|| select_patterns(&tech, &engine, &design, &result.comp_uniq, &result.unique))
    });
    // A/B the boundary-compat memo: identical selections, fewer probes.
    g.bench_function("select_patterns_memo_off", |b| {
        let token = CancelToken::never();
        let tuning = SelectTuning {
            memo: false,
            ..SelectTuning::default()
        };
        b.iter(|| {
            select_patterns_budget(
                &tech,
                &engine,
                &design,
                &result.comp_uniq,
                &result.unique,
                1,
                &tuning,
                PhaseBudget::new(&token, None),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
