//! Benchmarks step 2 (access pattern generation): the DP with and
//! without BCA (Table III's runtime columns).

use criterion::{criterion_group, criterion_main, Criterion};
use pao_core::{PaoConfig, PinAccessOracle};
use pao_testgen::{generate, SuiteCase, TechFlavor};

fn bench_patterns(c: &mut Criterion) {
    let case = SuiteCase {
        name: "bench300".into(),
        flavor: TechFlavor::N32A,
        cells: 300,
        macros: 0,
        nets: 250,
        io_pins: 8,
        utilization: 82,
        seed: 78,
    };
    let (tech, design) = generate(&case);
    let mut g = c.benchmark_group("patterns");
    g.sample_size(10);
    g.bench_function("with_bca_3_patterns", |b| {
        b.iter(|| PinAccessOracle::new().analyze(&tech, &design))
    });
    g.bench_function("without_bca_1_pattern", |b| {
        let mut cfg = PaoConfig::default();
        cfg.pattern.bca = false;
        cfg.pattern.max_patterns = 1;
        b.iter(|| PinAccessOracle::with_config(cfg.clone()).analyze(&tech, &design))
    });
    g.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
