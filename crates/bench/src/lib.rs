//! Experiment harness shared by the `tables` binary and the Criterion
//! benches: runs the paper's Experiments 1–3 on the synthetic suite and
//! formats the corresponding tables.

pub mod experiments;
pub mod report;

pub use experiments::{run_expt1, run_expt2, run_expt3, Expt1Row, Expt2Row, Expt3Outcome};
pub use report::{print_table, Table};
