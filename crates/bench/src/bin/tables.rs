//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p pao-bench --bin tables -- [COMMAND] [--fast]
//!
//! COMMANDS
//!   table1       Table I   — testcase information
//!   table2       Table II  — Expt 1: per-unique-instance AP quality
//!   table3       Table III — Expt 2: per-instance-pin quality
//!   expt3        Expt 3    — routed #DRCs, naive vs PAAF (+ Fig. 8 SVGs)
//!   expt3-14nm   14 nm AES study (+ Fig. 9 SVG)
//!   ablations    design-choice sweeps (k, α, BCA, history, coord types)
//!   all          everything above
//!
//! --fast restricts the suite to the three 45 nm testcases.
//! ```
//!
//! Rendered tables are also written under `out/`.

use pao_bench::experiments::{run_expt1, run_expt2};
use pao_bench::report::{print_table, Table};
use pao_core::oracle::count_failed_pins_with;
use pao_core::{CoordType, PaoConfig, PinAccessOracle};
use pao_router::route::{RouteConfig, Router};
use pao_router::score;
use pao_testgen::{aes14_case, generate, ispd18s_suite, SuiteCase, TechFlavor};
use std::fs;
use std::path::Path;

fn out_dir() -> &'static Path {
    let p = Path::new("out");
    let _ = fs::create_dir_all(p);
    p
}

fn save(name: &str, content: &str) {
    let path = out_dir().join(name);
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  -> wrote {}", path.display());
    }
}

fn suite(fast: bool) -> Vec<SuiteCase> {
    let mut s = ispd18s_suite();
    if fast {
        s.truncate(3);
    }
    s
}

fn flavor_name(f: TechFlavor) -> &'static str {
    match f {
        TechFlavor::N45 => "45nm",
        TechFlavor::N32A | TechFlavor::N32B => "32nm",
        TechFlavor::N14 => "14nm",
    }
}

fn table1(fast: bool) {
    let mut t = Table::new(
        "Table I: testcase information (ispd18s suite, 1/20 scale)",
        &[
            "Benchmark",
            "#StdCell",
            "#Macro",
            "#Net",
            "#IO",
            "#Layer",
            "Die (mm^2)",
            "Node",
        ],
    );
    for case in suite(fast) {
        let (tech, design) = generate(&case);
        let die = design.die_area;
        let die_mm = format!(
            "{:.2}x{:.2}",
            die.width() as f64 / 1e6,
            die.height() as f64 / 1e6
        );
        let std_cells = design
            .components()
            .iter()
            .filter(|c| c.master != "RAM16X4")
            .count();
        let macros = design.components().len() - std_cells;
        t.row(vec![
            case.name.clone(),
            std_cells.to_string(),
            macros.to_string(),
            design.nets().len().to_string(),
            design.io_pins().len().to_string(),
            tech.routing_layers().len().to_string(),
            die_mm,
            flavor_name(case.flavor).to_owned(),
        ]);
    }
    print_table(&t);
    save("table1.txt", &t.render());
}

fn table2(fast: bool) {
    let mut t = Table::new(
        "Table II (Expt 1): unique-instance access points, TrRte baseline vs PAAF",
        &[
            "Benchmark",
            "#UniqInst",
            "APs TrRte",
            "APs PAAF",
            "Dirty TrRte",
            "Dirty PAAF",
            "t TrRte (s)",
            "t PAAF (s)",
        ],
    );
    for case in suite(fast) {
        let row = run_expt1(&case);
        t.row(vec![
            row.name,
            row.unique_insts.to_string(),
            row.trrte_aps.to_string(),
            row.paaf_aps.to_string(),
            row.trrte_dirty.to_string(),
            row.paaf_dirty.to_string(),
            format!("{:.2}", row.trrte_time.as_secs_f64()),
            format!("{:.2}", row.paaf_time.as_secs_f64()),
        ]);
    }
    print_table(&t);
    save("table2.txt", &t.render());
}

fn table3(fast: bool) {
    let mut t = Table::new(
        "Table III (Expt 2): instance-pin access, TrRte vs PAAF w/o BCA vs w/ BCA",
        &[
            "Benchmark",
            "#Pins",
            "Fail TrRte",
            "Fail w/oBCA",
            "Fail w/BCA",
            "t TrRte (s)",
            "t w/oBCA (s)",
            "t w/BCA (s)",
        ],
    );
    for case in suite(fast) {
        let row = run_expt2(&case);
        t.row(vec![
            row.name,
            row.total_pins.to_string(),
            row.trrte_failed.to_string(),
            row.paaf_failed_no_bca.to_string(),
            row.paaf_failed_bca.to_string(),
            format!("{:.2}", row.trrte_time.as_secs_f64()),
            format!("{:.2}", row.no_bca_time.as_secs_f64()),
            format!("{:.2}", row.bca_time.as_secs_f64()),
        ]);
    }
    print_table(&t);
    save("table3.txt", &t.render());
}

fn expt3(fast: bool) {
    let case = if fast {
        SuiteCase {
            name: "ispd18s_test5(fast)".into(),
            cells: 400,
            nets: 380,
            ..ispd18s_suite()[4].clone()
        }
    } else {
        ispd18s_suite()[4].clone()
    };
    println!(
        "Experiment 3: routed-design DRC comparison on {}",
        case.name
    );
    let t0 = std::time::Instant::now();
    let (tech, design) = generate(&case);
    let router = Router::new(&tech, &design, RouteConfig::default());
    let naive = router.route_with_accessor(|_, _| None);
    let naive_viol = score::audit_routed(&tech, &design, &naive);
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let routed = router.route_with_pao(&pao);
    let pao_viol = score::audit_routed(&tech, &design, &routed);
    let naive_access = score::access_drcs(&tech, &design, &naive);
    let pao_access = score::access_drcs(&tech, &design, &routed);
    let mut t = Table::new(
        "Expt 3: final routed #DRCs (shared router, different pin access)",
        &[
            "Benchmark",
            "#Nets",
            "DRCs naive",
            "DRCs PAAF",
            "AccessDRC naive",
            "AccessDRC PAAF",
            "t (s)",
        ],
    );
    t.row(vec![
        case.name.clone(),
        design.nets().len().to_string(),
        naive_viol.len().to_string(),
        pao_viol.len().to_string(),
        naive_access.to_string(),
        pao_access.to_string(),
        format!("{:.1}", t0.elapsed().as_secs_f64()),
    ]);
    print_table(&t);
    save("expt3.txt", &t.render());

    // Fig. 8: two windows around naive-arm violations, both arms rendered.
    for (i, v) in naive_viol.iter().take(2).enumerate() {
        let window = v.marker.expanded(4000);
        let svg = pao_viz::render_window(
            &tech,
            &design,
            Some(&naive.shapes),
            &[],
            &naive_viol,
            window,
            &pao_viz::RenderOptions::default(),
        );
        save(&format!("fig8_case{}_naive.svg", i + 1), &svg);
        let svg = pao_viz::render_window(
            &tech,
            &design,
            Some(&routed.shapes),
            &[],
            &pao_viol,
            window,
            &pao_viz::RenderOptions::default(),
        );
        save(&format!("fig8_case{}_paaf.svg", i + 1), &svg);
    }
}

fn expt3_14nm(fast: bool) {
    let mut case = aes14_case();
    if fast {
        case.cells = 400;
        case.nets = 380;
    }
    println!("14 nm study: {} ({} instances)", case.name, case.cells);
    let (tech, design) = generate(&case);
    let result = PinAccessOracle::new().analyze(&tech, &design);
    let s = &result.stats;
    let mut off_track = 0usize;
    let mut total = 0usize;
    for u in &result.unique {
        for aps in &u.pin_aps {
            for ap in aps {
                total += 1;
                off_track += usize::from(ap.is_off_track());
            }
        }
    }
    let mut t = Table::new(
        "14 nm AES study (Fig. 9): PAAF on the 14 nm flavour",
        &[
            "Benchmark",
            "#Inst",
            "#UniqInst",
            "#Pins",
            "Failed",
            "Off-track APs",
            "t (s)",
        ],
    );
    t.row(vec![
        case.name.clone(),
        design.components().len().to_string(),
        s.unique_instances.to_string(),
        s.total_pins.to_string(),
        s.failed_pins.to_string(),
        format!(
            "{off_track}/{total} ({:.0}%)",
            100.0 * off_track as f64 / total.max(1) as f64
        ),
        format!("{:.2}", s.total_time().as_secs_f64()),
    ]);
    print_table(&t);
    save("expt3_14nm.txt", &t.render());

    // Fig. 9: a cell access overview (off-track APs enabled automatically).
    let comp = pao_design::CompId(0);
    let svg = pao_viz::render_cell_access(&tech, &design, &result, comp);
    save("fig9_aes14.svg", &svg);
}

fn ablations(fast: bool) {
    let case = if fast {
        SuiteCase::small_smoke()
    } else {
        ispd18s_suite()[4].clone()
    };
    let (tech, design) = generate(&case);
    println!("Ablations on {}:", case.name);

    // k sweep (Algorithm 1 early termination).
    let mut t = Table::new(
        "Ablation: APs per pin (k)",
        &["k", "total APs", "failed pins", "t apgen (s)"],
    );
    for k in [1usize, 2, 3, 5, 8] {
        let mut cfg = PaoConfig::default();
        cfg.apgen.k = k;
        let r = PinAccessOracle::with_config(cfg).analyze(&tech, &design);
        t.row(vec![
            k.to_string(),
            r.stats.total_aps.to_string(),
            r.stats.failed_pins.to_string(),
            format!("{:.2}", r.stats.apgen_time.as_secs_f64()),
        ]);
    }
    print_table(&t);
    save("ablation_k.txt", &t.render());

    // Coordinate-type restriction.
    let mut t = Table::new(
        "Ablation: coordinate types enabled",
        &["types", "total APs", "pins w/o APs", "failed pins"],
    );
    let settings: Vec<(&str, Vec<CoordType>, Vec<CoordType>)> = vec![
        (
            "on-track only",
            vec![CoordType::OnTrack],
            vec![CoordType::OnTrack],
        ),
        (
            "+half-track",
            vec![CoordType::OnTrack, CoordType::HalfTrack],
            vec![CoordType::OnTrack, CoordType::HalfTrack],
        ),
        (
            "+shape-center",
            vec![
                CoordType::OnTrack,
                CoordType::HalfTrack,
                CoordType::ShapeCenter,
            ],
            CoordType::NON_PREFERRED.to_vec(),
        ),
        (
            "all four (paper)",
            CoordType::PREFERRED.to_vec(),
            CoordType::NON_PREFERRED.to_vec(),
        ),
    ];
    for (label, pref, nonpref) in settings {
        let mut cfg = PaoConfig::default();
        cfg.apgen.pref_types = pref;
        cfg.apgen.nonpref_types = nonpref;
        let r = PinAccessOracle::with_config(cfg).analyze(&tech, &design);
        t.row(vec![
            label.to_owned(),
            r.stats.total_aps.to_string(),
            r.stats.pins_without_aps.to_string(),
            r.stats.failed_pins.to_string(),
        ]);
    }
    print_table(&t);
    save("ablation_coords.txt", &t.render());

    // BCA / history / max_patterns (repair disabled so the selection
    // stage is measured in isolation).
    let mut t = Table::new(
        "Ablation: pattern DP features (repair off)",
        &["setting", "failed pins", "t total (s)"],
    );
    let settings: Vec<(&str, bool, bool, usize)> = vec![
        ("BCA + history, 3 patterns (paper)", true, true, 3),
        ("no BCA, 1 pattern", false, true, 1),
        ("BCA, no history", true, false, 3),
        ("BCA, 5 patterns", true, true, 5),
    ];
    for (label, bca, history, max_patterns) in settings {
        let mut cfg = PaoConfig::default();
        cfg.pattern.bca = bca;
        cfg.pattern.history = history;
        cfg.pattern.max_patterns = max_patterns;
        cfg.repair_rounds = 0;
        let r = PinAccessOracle::with_config(cfg).analyze(&tech, &design);
        t.row(vec![
            label.to_owned(),
            r.stats.failed_pins.to_string(),
            format!("{:.2}", r.stats.total_time().as_secs_f64()),
        ]);
    }
    print_table(&t);
    save("ablation_patterns.txt", &t.render());

    // Alpha sweep (pin ordering weight).
    let mut t = Table::new(
        "Ablation: pin-ordering weight alpha",
        &["alpha", "failed pins"],
    );
    for alpha in [0.0, 0.1, 0.3, 0.6, 1.0] {
        let mut cfg = PaoConfig::default();
        cfg.pattern.alpha = alpha;
        let r = PinAccessOracle::with_config(cfg).analyze(&tech, &design);
        t.row(vec![format!("{alpha:.1}"), r.stats.failed_pins.to_string()]);
    }
    print_table(&t);
    save("ablation_alpha.txt", &t.render());

    // Sanity: baseline comparison on the same case via the generic counter.
    let base =
        pao_router::baseline_pin_access(&tech, &design, &pao_router::BaselineConfig::default());
    let (_, failed) =
        count_failed_pins_with(&tech, &design, |c, p| base.access_point(&design, c, p));
    println!("(reference: baseline fails {failed} pins on this case)");
}

fn scaling(fast: bool) {
    // The paper's "scalable" claim, quantified: single-threaded analysis
    // runtime and unique-instance count vs design size.
    let sizes: &[usize] = if fast {
        &[250, 500, 1000]
    } else {
        &[500, 1000, 2000, 4000, 8000, 14519]
    };
    let mut t = Table::new(
        "Scaling: PAAF analysis vs design size (N32B flavour, 1 thread)",
        &[
            "#Cells",
            "#Pins",
            "#UniqInst",
            "APs",
            "t apgen (s)",
            "t total (s)",
            "us/pin",
        ],
    );
    for &cells in sizes {
        let case = SuiteCase {
            name: format!("scale{cells}"),
            cells,
            nets: cells,
            ..ispd18s_suite()[8].clone()
        };
        let (tech, design) = generate(&case);
        let r = PinAccessOracle::new().analyze(&tech, &design);
        let s = &r.stats;
        t.row(vec![
            cells.to_string(),
            s.total_pins.to_string(),
            s.unique_instances.to_string(),
            s.total_aps.to_string(),
            format!("{:.2}", s.apgen_time.as_secs_f64()),
            format!("{:.2}", s.total_time().as_secs_f64()),
            format!(
                "{:.1}",
                s.total_time().as_secs_f64() * 1e6 / s.total_pins.max(1) as f64
            ),
        ]);
    }
    print_table(&t);
    save("scaling.txt", &t.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", |s| s.as_str());
    match cmd {
        "table1" => table1(fast),
        "table2" => table2(fast),
        "table3" => table3(fast),
        "expt3" => expt3(fast),
        "expt3-14nm" => expt3_14nm(fast),
        "ablations" => ablations(fast),
        "scaling" => scaling(fast),
        "all" => {
            table1(fast);
            table2(fast);
            table3(fast);
            scaling(fast);
            expt3(fast);
            expt3_14nm(fast);
            ablations(fast);
        }
        other => {
            eprintln!("unknown command `{other}`; see the source header for usage");
            std::process::exit(2);
        }
    }
}
