//! Plain-text table formatting (the harness prints the same row/column
//! structure as the paper's tables).

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title printed above the header.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Prints a table to stdout.
pub fn print_table(t: &Table) {
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["name", "count"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long_name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[1].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
