//! The paper's three experiments, runnable per testcase.

use pao_core::oracle::count_failed_pins_with;
use pao_core::unique::{build_instance_context, local_pin_owner};
use pao_core::{PaoConfig, PinAccessOracle};
use pao_design::Design;
use pao_drc::DrcEngine;
use pao_router::baseline::{baseline_pin_access, BaselineConfig, BaselineResult};
use pao_router::route::{RouteConfig, Router};
use pao_router::score;
use pao_tech::Tech;
use pao_testgen::{generate, SuiteCase};
use std::time::{Duration, Instant};

/// One row of Table II (Experiment 1): per-unique-instance access point
/// quality, baseline ("TrRte") vs PAAF.
#[derive(Debug, Clone)]
pub struct Expt1Row {
    /// Testcase name.
    pub name: String,
    /// Unique instance count.
    pub unique_insts: usize,
    /// Baseline total access points.
    pub trrte_aps: usize,
    /// PAAF total access points.
    pub paaf_aps: usize,
    /// Baseline dirty access points.
    pub trrte_dirty: usize,
    /// PAAF dirty access points.
    pub paaf_dirty: usize,
    /// Baseline runtime.
    pub trrte_time: Duration,
    /// PAAF step-1 runtime.
    pub paaf_time: Duration,
}

/// Audits every baseline access point's chosen via against the unique
/// instance's own context (same check PAAF applies during generation).
#[must_use]
pub fn audit_baseline_aps(tech: &Tech, design: &Design, result: &BaselineResult) -> usize {
    let engine = DrcEngine::new(tech);
    let mut dirty = 0usize;
    for u in &result.unique {
        let ctx = build_instance_context(tech, design, u.info.rep);
        for (pi, aps) in u.pin_aps.iter().enumerate() {
            for ap in aps {
                match ap.primary_via() {
                    Some(v) => {
                        if !engine
                            .check_via_placement(tech.via(v), ap.pos, local_pin_owner(pi), &ctx)
                            .is_empty()
                        {
                            dirty += 1;
                        }
                    }
                    None => dirty += 1,
                }
            }
        }
    }
    dirty
}

/// Runs Experiment 1 on one testcase.
#[must_use]
pub fn run_expt1(case: &SuiteCase) -> Expt1Row {
    let (tech, design) = generate(case);
    let base = baseline_pin_access(&tech, &design, &BaselineConfig::default());
    let trrte_dirty = audit_baseline_aps(&tech, &design, &base);
    let pao = PinAccessOracle::new().analyze(&tech, &design);
    Expt1Row {
        name: case.name.clone(),
        unique_insts: pao.stats.unique_instances,
        trrte_aps: base.total_aps,
        paaf_aps: pao.stats.total_aps,
        trrte_dirty,
        paaf_dirty: pao.stats.dirty_aps,
        trrte_time: base.elapsed,
        paaf_time: pao.stats.apgen_time,
    }
}

/// One row of Table III (Experiment 2): per-instance-pin quality.
#[derive(Debug, Clone)]
pub struct Expt2Row {
    /// Testcase name.
    pub name: String,
    /// Total connected instance pins.
    pub total_pins: usize,
    /// Baseline failed pins.
    pub trrte_failed: usize,
    /// PAAF failed pins, single pattern (no BCA diversity).
    pub paaf_failed_no_bca: usize,
    /// PAAF failed pins, full flow.
    pub paaf_failed_bca: usize,
    /// Baseline runtime.
    pub trrte_time: Duration,
    /// PAAF runtime without BCA.
    pub no_bca_time: Duration,
    /// PAAF runtime with BCA.
    pub bca_time: Duration,
}

/// Runs Experiment 2 on one testcase.
#[must_use]
pub fn run_expt2(case: &SuiteCase) -> Expt2Row {
    let (tech, design) = generate(case);

    let t0 = Instant::now();
    let base = baseline_pin_access(&tech, &design, &BaselineConfig::default());
    let (total_pins, trrte_failed) =
        count_failed_pins_with(&tech, &design, |c, p| base.access_point(&design, c, p));
    let trrte_time = t0.elapsed();

    // The w/o-BCA arm isolates the selection stage (no per-pin repair),
    // matching how the paper measured Table III.
    let mut cfg = PaoConfig::default();
    cfg.pattern.bca = false;
    cfg.pattern.max_patterns = 1;
    cfg.repair_rounds = 0;
    let no_bca = PinAccessOracle::with_config(cfg).analyze(&tech, &design);

    let bca = PinAccessOracle::new().analyze(&tech, &design);

    Expt2Row {
        name: case.name.clone(),
        total_pins,
        trrte_failed,
        paaf_failed_no_bca: no_bca.stats.failed_pins,
        paaf_failed_bca: bca.stats.failed_pins,
        trrte_time,
        no_bca_time: no_bca.stats.total_time(),
        bca_time: bca.stats.total_time(),
    }
}

/// The outcome of Experiment 3: routed-design DRC comparison.
#[derive(Debug, Clone)]
pub struct Expt3Outcome {
    /// Testcase name.
    pub name: String,
    /// Routed DRCs with distance-cost (Dr.CU-like, non-DRC-aware) access.
    pub naive_drcs: usize,
    /// Routed DRCs with PAAF access.
    pub paaf_drcs: usize,
    /// Pin-access-attributable DRCs, naive arm.
    pub naive_access_drcs: usize,
    /// Pin-access-attributable DRCs, PAAF arm.
    pub paaf_access_drcs: usize,
    /// Routed nets (both arms share the router).
    pub nets: usize,
    /// Wall time of the two routing runs.
    pub elapsed: Duration,
}

/// Runs Experiment 3 (both routing arms) on one testcase.
#[must_use]
pub fn run_expt3(case: &SuiteCase) -> Expt3Outcome {
    let (tech, design) = generate(case);
    let t0 = Instant::now();
    let router = Router::new(&tech, &design, RouteConfig::default());

    let naive = router.route_with_accessor(|_, _| None);
    let naive_drcs = score::count_drcs(&tech, &design, &naive);
    let naive_access_drcs = score::access_drcs(&tech, &design, &naive);

    let pao = PinAccessOracle::new().analyze(&tech, &design);
    let routed = router.route_with_pao(&pao);
    let paaf_drcs = score::count_drcs(&tech, &design, &routed);
    let paaf_access_drcs = score::access_drcs(&tech, &design, &routed);

    Expt3Outcome {
        name: case.name.clone(),
        naive_drcs,
        paaf_drcs,
        naive_access_drcs,
        paaf_access_drcs,
        nets: design.nets().len(),
        elapsed: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expt1_shape_holds_on_smoke() {
        let row = run_expt1(&SuiteCase::small_smoke());
        assert_eq!(row.paaf_dirty, 0);
        assert!(row.trrte_dirty > 0, "baseline must have dirty APs");
        assert!(row.paaf_aps > 0 && row.trrte_aps > 0);
        assert!(row.unique_insts > 0);
    }

    #[test]
    fn expt2_shape_holds_on_smoke() {
        let row = run_expt2(&SuiteCase::small_smoke());
        assert_eq!(row.paaf_failed_bca, 0);
        assert!(row.trrte_failed > row.paaf_failed_bca);
        assert!(row.paaf_failed_no_bca >= row.paaf_failed_bca);
        assert!(row.total_pins > 0);
    }

    #[test]
    fn expt3_shape_holds_on_smoke() {
        let out = run_expt3(&SuiteCase::small_smoke());
        assert!(
            out.paaf_drcs < out.naive_drcs,
            "PAAF {} vs naive {}",
            out.paaf_drcs,
            out.naive_drcs
        );
        assert!(
            out.paaf_access_drcs < out.naive_access_drcs,
            "access DRCs: PAAF {} vs naive {}",
            out.paaf_access_drcs,
            out.naive_access_drcs
        );
    }
}
