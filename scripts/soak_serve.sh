#!/usr/bin/env bash
# Chaos soak for `pao serve` (DESIGN.md §17): hostile traffic, crash
# recovery and fault-injection arms, at 1 and 4 worker threads.
#
# Phase 1 (hostile): a daemon with deliberately tight admission limits
#   takes `pao soak --mode hostile` floods — concurrent valid, malformed,
#   oversized, binary-garbage and half-closed requests — in two halves
#   with a VmHWM sample between them. Asserts: the soak client reports
#   zero protocol violations, the daemon's peak RSS plateaus between the
#   halves (no per-connection leak), the serve.* counters recorded the
#   abuse, and shutdown still exits 0.
# Phase 2 (crash): a journaled daemon is SIGKILLed mid-ECO-burst, then
#   restarted with --resume. The resumed dump must be byte-identical to
#   a fresh twin daemon that serially replays the recovered journal
#   (soak --mode emit | pao call).
# Phase 3 (degrade): --inject-fault / --inject-stall arm a one-shot
#   fault against the first ECO re-analysis. That ECO must answer the
#   typed -32004 degrade error while the previous snapshot keeps
#   serving; the next ECO must succeed.
#
# Env: SOAK_SECS   seconds per hostile half (default 10)
#      SOAK_BENCH  1 = append a soak entry to BENCH_pao.json
set -euo pipefail
cd "$(dirname "$0")/.."

SOAK_SECS="${SOAK_SECS:-10}"
PAO=target/release/pao
LEF=benchmarks/smoke.lef
DEF=benchmarks/smoke.def
[[ -x "$PAO" ]] || { echo "build first: cargo build --release"; exit 1; }
command -v python3 > /dev/null || { echo "soak needs python3"; exit 1; }

dir="$(mktemp -d /tmp/pao_soak_XXXXXX)"
daemon_pid=""
cleanup() {
    [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2> /dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

# Any placed component works as an ECO target; take the first two from
# the DEF.
insts="$(awk '$1 == "-" && NF > 2 { print $2 }' "$DEF" | head -2 | paste -sd,)"
[[ -n "$insts" ]] || { echo "no instances found in $DEF"; exit 1; }
first_inst="${insts%%,*}"

# Blocks until the daemon answers a stats round trip.
wait_ready() { # socket
    "$PAO" call --socket "$1" --timeout-ms 20000 \
        '{"id":0,"method":"stats"}' > /dev/null
}

vm_hwm_kb() { # pid
    awk '/^VmHWM:/ { print $2 }' "/proc/$1/status"
}

dump_to() { # socket file
    "$PAO" call --socket "$1" '{"id":1,"method":"dump_selection"}' \
        | python3 -c \
          "import json,sys; print(json.loads(sys.stdin.read())['result']['dump'], end='')" \
        > "$2"
}

hostile_summary=""
for t in 1 4; do
    echo "== soak (threads $t): phase 1 — hostile traffic =="
    sock="$dir/hostile-$t.sock"
    "$PAO" serve "$LEF" "$DEF" --socket "$sock" --threads "$t" \
        --max-frame-bytes 4096 --max-conns 8 --max-inflight 2 \
        --idle-ms 2000 > "$dir/hostile-$t.log" 2>&1 &
    daemon_pid=$!
    wait_ready "$sock"
    hostile_ms=$((SOAK_SECS * 1000))
    "$PAO" soak --socket "$sock" --mode hostile --clients 4 \
        --duration-ms "$hostile_ms" --seed "$t" --inst "$first_inst" \
        > "$dir/soak1-$t.json" \
        || { echo "hostile soak (half 1) failed"; cat "$dir/hostile-$t.log"; exit 1; }
    hwm1="$(vm_hwm_kb "$daemon_pid")"
    "$PAO" soak --socket "$sock" --mode hostile --clients 4 \
        --duration-ms "$hostile_ms" --seed "$((t + 100))" --inst "$first_inst" \
        > "$dir/soak2-$t.json" \
        || { echo "hostile soak (half 2) failed"; cat "$dir/hostile-$t.log"; exit 1; }
    hwm2="$(vm_hwm_kb "$daemon_pid")"
    # Leak check: the second identical half must not grow the peak RSS
    # beyond slack (16 MiB or 20%, whichever is larger).
    python3 - "$hwm1" "$hwm2" << 'PY'
import sys
h1, h2 = int(sys.argv[1]), int(sys.argv[2])
slack = max(16 * 1024, h1 // 5)
assert h2 - h1 <= slack, f"VmHWM grew {h1} -> {h2} kB (> {slack} kB slack): leak?"
print(f"VmHWM plateau ok: {h1} -> {h2} kB")
PY
    # The daemon must have seen (and counted) the abuse, and still
    # answer stats + shut down cleanly.
    "$PAO" call --socket "$sock" '{"id":1,"method":"stats"}' \
        '{"id":2,"method":"shutdown"}' > "$dir/stats-$t.json"
    wait "$daemon_pid" \
        || { echo "hostile daemon exited non-zero"; cat "$dir/hostile-$t.log"; exit 1; }
    daemon_pid=""
    python3 - "$dir/stats-$t.json" "$dir/soak1-$t.json" "$dir/soak2-$t.json" << 'PY'
import json, sys
stats = json.loads(open(sys.argv[1]).readline())["result"]["serve"]
soaks = [json.load(open(p)) for p in sys.argv[2:]]
assert stats["oversized"] > 0, f"no oversized frames counted: {stats}"
assert stats["requests"] > 0, stats
assert all(s["violations"] == 0 for s in soaks), soaks
sent = sum(s["sent"] for s in soaks)
print(f"hostile ok: {sent} requests sent, serve counters: {stats}")
PY
    hostile_summary="$dir/soak2-$t.json"

    echo "== soak (threads $t): phase 2 — kill -9 + journal replay =="
    ckpt="$dir/ckpt-$t"
    rm -rf "$ckpt"
    sock="$dir/crash-$t.sock"
    "$PAO" serve "$LEF" "$DEF" --socket "$sock" --threads "$t" \
        --checkpoint "$ckpt" > "$dir/crash-$t.log" 2>&1 &
    daemon_pid=$!
    wait_ready "$sock"
    # An ECO burst in the background; SIGKILL the daemon mid-burst. The
    # soak client must tolerate the death (exit 0, "died":true or a
    # completed burst — timing dependent) and never crash itself.
    "$PAO" soak --socket "$sock" --mode eco --count 500 --seed "$t" \
        --inst "$insts" > "$dir/eco-$t.json" &
    soak_pid=$!
    sleep 1
    kill -9 "$daemon_pid"
    wait "$daemon_pid" 2> /dev/null || true
    daemon_pid=""
    wait "$soak_pid" \
        || { echo "eco soak client failed after daemon kill"; cat "$dir/eco-$t.json"; exit 1; }
    # Resume from the journal…
    sock2="$dir/resumed-$t.sock"
    "$PAO" serve "$LEF" "$DEF" --socket "$sock2" --threads "$t" \
        --checkpoint "$ckpt" --resume > "$dir/resumed-$t.log" 2>&1 &
    daemon_pid=$!
    wait_ready "$sock2"
    dump_to "$sock2" "$dir/dump-resumed-$t.txt"
    "$PAO" call --socket "$sock2" '{"id":9,"method":"shutdown"}' > /dev/null
    wait "$daemon_pid" || { echo "resumed daemon exited non-zero"; exit 1; }
    daemon_pid=""
    # …and serially replay the same journal against a fresh twin. The
    # burst ran for a second before the kill, so the recovered journal
    # must hold real batches — an empty one would make the byte-identity
    # check below vacuous.
    "$PAO" soak --mode emit --journal "$ckpt/eco.journal" > "$dir/emit-$t.jsonl"
    replayed="$(wc -l < "$dir/emit-$t.jsonl")"
    [[ "$replayed" -gt 0 ]] \
        || { echo "no ECO batches journaled before the kill"; exit 1; }
    sock3="$dir/twin-$t.sock"
    "$PAO" serve "$LEF" "$DEF" --socket "$sock3" --threads "$t" \
        > "$dir/twin-$t.log" 2>&1 &
    daemon_pid=$!
    wait_ready "$sock3"
    "$PAO" call --socket "$sock3" < "$dir/emit-$t.jsonl" \
        > "$dir/twin-replay-$t.jsonl"
    dump_to "$sock3" "$dir/dump-twin-$t.txt"
    "$PAO" call --socket "$sock3" '{"id":9,"method":"shutdown"}' > /dev/null
    wait "$daemon_pid" || { echo "twin daemon exited non-zero"; exit 1; }
    daemon_pid=""
    cmp "$dir/dump-resumed-$t.txt" "$dir/dump-twin-$t.txt" \
        || { echo "resumed dump != serial-replay twin (threads $t)"; exit 1; }
    grep -q "replaying" "$dir/resumed-$t.log" \
        || { echo "resumed daemon did not report a journal replay"; exit 1; }
    echo "crash replay ok: $replayed journaled batch(es), dumps byte-identical"

    echo "== soak (threads $t): phase 3 — fault + stall degrade arms =="
    for arm in "--inject-fault select:0" \
               "--inject-stall select:0:600 --watchdog-ms 100"; do
        sock="$dir/degrade-$t.sock"
        # shellcheck disable=SC2086
        "$PAO" serve "$LEF" "$DEF" --socket "$sock" --threads "$t" \
            $arm > "$dir/degrade-$t.log" 2>&1 &
        daemon_pid=$!
        wait_ready "$sock"
        "$PAO" call --socket "$sock" \
            "{\"id\":1,\"method\":\"eco_update\",\"params\":{\"moves\":[{\"inst\":\"$first_inst\",\"dx\":40,\"dy\":0}]}}" \
            "{\"id\":2,\"method\":\"eco_update\",\"params\":{\"moves\":[{\"inst\":\"$first_inst\",\"dx\":40,\"dy\":0}]}}" \
            '{"id":3,"method":"stats"}' \
            '{"id":4,"method":"shutdown"}' > "$dir/degrade-$t.jsonl" \
            || { echo "degrade calls failed ($arm)"; cat "$dir/degrade-$t.log"; exit 1; }
        wait "$daemon_pid" \
            || { echo "degrade daemon exited non-zero ($arm)"; cat "$dir/degrade-$t.log"; exit 1; }
        daemon_pid=""
        python3 - "$dir/degrade-$t.jsonl" << 'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
first, second, stats = lines[0], lines[1], lines[2]["result"]
err = first.get("error")
assert err and err["code"] == -32004, f"first ECO must degrade: {first}"
d = err["data"]
assert d["quarantined"] + d["stalls"] > 0 or d["skipped"] > 0, d
assert "result" in second, f"second ECO must succeed: {second}"
assert second["result"]["eco_seq"] == 1, second
assert stats["serve"]["eco_degraded"] == 1, stats["serve"]
assert stats["eco_updates"] == 1, stats
print(f"degrade ok: {err['message']!r}, counters {stats['serve']}")
PY
    done
done

if [[ "${SOAK_BENCH:-0}" == "1" && -n "$hostile_summary" ]]; then
    python3 - "$hostile_summary" << 'PY'
import json, os, sys
entry = {
    "workload": "soak_serve",
    "host_threads": os.cpu_count(),
    "soak_secs": int(os.environ.get("SOAK_SECS", "10")),
    "soak": json.load(open(sys.argv[1])),
}
path = "BENCH_pao.json"
hist = json.load(open(path)) if os.path.exists(path) else []
if isinstance(hist, dict):
    hist = [hist]
hist.append(entry)
with open(path, "w") as f:
    json.dump(hist, f, indent=1)
    f.write("\n")
print(f"appended soak entry to {path}")
PY
fi

echo "soak_serve: OK"
