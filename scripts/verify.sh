#!/usr/bin/env bash
# Offline tier-1 verification: formatting, lints, release build and the
# full test suite. Needs no network — the workspace has zero external
# dependencies (the criterion benches live in the excluded crates/bench
# package; see scripts/reproduce.sh for those).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy (panic-freedom gate) =="
# Library and binary code must not contain `unwrap()`/`expect()` — errors
# are typed (`PaoError`) or explicitly degraded (see DESIGN.md §12).
# Tests keep their asserting style; `--lib --bins` leaves them exempt.
cargo clippy --workspace --lib --bins -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== release build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== profile smoke =="
# End-to-end observability check: `pao profile` on the bundled smoke
# case must emit a Chrome trace that python's strict JSON parser accepts.
trace="$(mktemp /tmp/pao_trace_XXXXXX.json)"
trap 'rm -f "$trace"' EXIT
target/release/pao profile benchmarks/smoke.lef benchmarks/smoke.def \
    --trace "$trace" > /dev/null
if command -v python3 > /dev/null; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$trace"
else
    # Fallback: the exporter self-validates, just check non-emptiness.
    test -s "$trace"
fi

echo "== bench history =="
# The bench history appended by scripts/bench_steps.sh must stay valid
# JSON (a top-level array of run objects, or the legacy single object).
if [[ -f BENCH_pao.json ]]; then
    if command -v python3 > /dev/null; then
        python3 -c "
import json, sys
h = json.load(open('BENCH_pao.json'))
runs = h if isinstance(h, list) else [h]
assert runs and all('workload' in r and 'speedup' in r for r in runs), 'malformed bench history'
print(f'BENCH_pao.json: {len(runs)} run(s), ok')
"
    else
        test -s BENCH_pao.json
    fi
fi

echo "verify: OK"
