#!/usr/bin/env bash
# Offline tier-1 verification: formatting, lints, release build and the
# full test suite. Needs no network — the workspace has zero external
# dependencies (the criterion benches live in the excluded crates/bench
# package; see scripts/reproduce.sh for those).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== release build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "verify: OK"
