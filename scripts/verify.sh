#!/usr/bin/env bash
# Offline tier-1 verification: formatting, lints, release build and the
# full test suite. Needs no network — the workspace has zero external
# dependencies (the criterion benches live in the excluded crates/bench
# package; see scripts/reproduce.sh for those).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy (panic-freedom gate) =="
# Library and binary code must not contain `unwrap()`/`expect()` — errors
# are typed (`PaoError`) or explicitly degraded (see DESIGN.md §12).
# Tests keep their asserting style; `--lib --bins` leaves them exempt.
cargo clippy --workspace --lib --bins -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== release build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== profile smoke =="
# End-to-end observability check: `pao profile` on the bundled smoke
# case must emit a Chrome trace that python's strict JSON parser accepts.
trace="$(mktemp /tmp/pao_trace_XXXXXX.json)"
trap 'rm -f "$trace"' EXIT
target/release/pao profile benchmarks/smoke.lef benchmarks/smoke.def \
    --trace "$trace" > /dev/null
if command -v python3 > /dev/null; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$trace"
else
    # Fallback: the exporter self-validates, just check non-emptiness.
    test -s "$trace"
fi

echo "== deadline / watchdog / resume e2e =="
# The anytime contract (DESIGN.md §13), end to end on the release binary.
# 1. A zero budget must yield a *partial* result: exit 6 without
#    --deadline-ok, exit 0 with it — never a hang or an abort.
target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
    --deadline-ms 0 > /dev/null && {
    echo "deadline-partial run must exit 6"; exit 1; }
rc=$?
[[ "$rc" == 6 ]] || { echo "expected exit 6, got $rc"; exit 1; }
target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
    --deadline-ms 0 --deadline-ok > /dev/null
# 2. Checkpoint + resume reproduces an uninterrupted run bit-identically
#    (stable stat lines; timings excluded) at 1 and 4 threads.
ckpt="$(mktemp -d /tmp/pao_ckpt_XXXXXX)"
rep="$(mktemp -d /tmp/pao_rep_XXXXXX)"
trap 'rm -f "$trace"; rm -rf "$ckpt" "$rep"' EXIT
counters() { grep -E '^(unique|total|dirty|pins|off-track|repaired|failed|quarantined)' "$1"; }
for t in 1 4; do
    target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
        --threads "$t" --report "$rep/clean-$t.txt" > /dev/null
    rm -rf "$ckpt"
    target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
        --threads "$t" --deadline-ms 3 --deadline-ok \
        --checkpoint "$ckpt" > /dev/null
    target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
        --threads "$t" --checkpoint "$ckpt" --resume \
        --report "$rep/resumed-$t.txt" > /dev/null
    diff <(counters "$rep/clean-$t.txt") <(counters "$rep/resumed-$t.txt") \
        || { echo "resume x$t diverged from uninterrupted run"; exit 1; }
done
# 3. An injected mid-item stall is detected by the watchdog (exit 6,
#    stall recorded) instead of hanging the run.
out="$rep/stall.txt"
target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
    --threads 2 --inject-stall apgen:0:600 --watchdog-ms 100 \
    --metrics > "$out" && { echo "stall-cut run must exit 6"; exit 1; }
rc=$?
[[ "$rc" == 6 ]] || { echo "expected exit 6 after stall, got $rc"; exit 1; }
grep -q "stalled on item 0" "$out" || { echo "stall not recorded"; exit 1; }
grep -q "watchdog.stalls" "$out" || { echo "watchdog counter missing"; exit 1; }
echo "deadline e2e: OK"

echo "== selection identity =="
# The cluster-selection fast path (compat memo, DP pruning, wavefront
# split) must be output-invariant: --dump-selection files from any
# thread count / memo / split combination are byte-identical
# (DESIGN.md §14). The memo is off by default, so --select-memo combos
# keep the memoized path covered; --select-split 1 forces the
# intra-group split even on small groups so the parallel merge path is
# covered.
ref="$rep/sel-ref.txt"
target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
    --threads 1 --dump-selection "$ref" > /dev/null 2>&1
i=0
for flags in "--threads 4" "--threads 1 --select-memo" \
             "--threads 4 --select-split 1" \
             "--threads 4 --select-split 1 --select-memo"; do
    i=$((i+1))
    # shellcheck disable=SC2086
    target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
        $flags --dump-selection "$rep/sel-$i.txt" > /dev/null 2>&1
    cmp -s "$ref" "$rep/sel-$i.txt" \
        || { echo "selection dump diverged for: $flags"; exit 1; }
done
echo "selection identity: OK"

echo "== selection zero-alloc gate =="
# The warm selection pass must not allocate (counting-allocator
# integration test; criterion is unavailable offline, so the gate lives
# in the test suite and is re-run here explicitly).
cargo test -p pao-core --test select_alloc -q

echo "== sweep scale identity =="
# The tiled spatial index (ShapeSet::from_shards) + streamed scale DEFs
# must keep results thread-count-invariant: the deterministic fields of
# the sweep JSON (everything but the timings and RSS) are identical at
# 1 and 4 threads for both the benchmark size and the streamed 20k
# case.
sweepdir="$(mktemp -d /tmp/pao_sweepchk_XXXXXX)"
trap 'rm -f "$trace"; rm -rf "$ckpt" "$rep" "$sweepdir"' EXIT
det() { # strip timing/rss fields, keep counters
    python3 -c "
import json, sys
d = json.loads(sys.stdin.read())
for k in list(d):
    if k.endswith('_s') or k in ('threads', 'peak_rss_mb'):
        del d[k]
print(json.dumps(d, sort_keys=True))
"
}
if command -v python3 > /dev/null; then
    for case in ispd18s_test2 scale_20k; do
        one="$(target/release/pao sweep --case "$case" --threads 1 \
            --dir "$sweepdir" 2> /dev/null | det)"
        four="$(target/release/pao sweep --case "$case" --threads 4 \
            --dir "$sweepdir" 2> /dev/null | det)"
        [[ "$one" == "$four" ]] \
            || { echo "sweep $case diverged between 1 and 4 threads"; \
                 echo " 1: $one"; echo " 4: $four"; exit 1; }
    done
    echo "sweep scale identity: OK"
else
    echo "sweep scale identity: skipped (no python3)"
fi

echo "== serve smoke gate =="
# Service-mode contract (DESIGN.md §17): the resident daemon must answer
# the same bytes as one-shot `pao analyze` — before and after an ECO —
# at 1 and 4 threads, and shut down cleanly (exit 0). The scripted
# batch covers every method: dump, pin access, a fanned-out batch, one
# signature-preserving ECO, stats, shutdown.
servedir="$(mktemp -d /tmp/pao_serve_XXXXXX)"
trap 'rm -f "$trace"; rm -rf "$ckpt" "$rep" "$sweepdir" "$servedir"' EXIT
if ! command -v python3 > /dev/null; then
    echo "serve smoke gate: skipped (no python3)"
else
# Pick an instance whose master has a pin named A (not every master
# does — the flops use D/CK/Q).
inst="$(python3 - << 'PY'
masters, cur = set(), None
for line in open('benchmarks/smoke.lef'):
    t = line.split()
    if t[:1] == ['MACRO']:
        cur = t[1]
    if t[:2] == ['PIN', 'A'] and cur:
        masters.add(cur)
for line in open('benchmarks/smoke.def'):
    t = line.split()
    if t[:1] == ['-'] and len(t) > 2 and t[2] in masters:
        print(t[1])
        break
PY
)"
[[ -n "$inst" ]] || { echo "no instance with pin A found"; exit 1; }
for t in 1 4; do
    target/release/pao analyze benchmarks/smoke.lef benchmarks/smoke.def \
        --threads "$t" --dump-selection "$servedir/ref-$t.txt" > /dev/null 2>&1
    sock="$servedir/pao-$t.sock"
    target/release/pao serve benchmarks/smoke.lef benchmarks/smoke.def \
        --socket "$sock" --threads "$t" > "$servedir/daemon-$t.log" 2>&1 &
    daemon=$!
    target/release/pao call --socket "$sock" \
        '{"id":1,"method":"dump_selection"}' \
        "{\"id\":2,\"method\":\"get_pin_access\",\"params\":{\"inst\":\"$inst\",\"pin\":\"A\"}}" \
        "{\"id\":3,\"method\":\"batch\",\"params\":[{\"id\":31,\"method\":\"get_instance_patterns\",\"params\":{\"inst\":\"$inst\"}},{\"id\":32,\"method\":\"get_cluster_selection\",\"params\":{\"inst\":\"$inst\"}}]}" \
        "{\"id\":4,\"method\":\"eco_update\",\"params\":{\"moves\":[{\"inst\":\"$inst\",\"dx\":0,\"dy\":0}]}}" \
        '{"id":5,"method":"dump_selection"}' \
        '{"id":6,"method":"stats"}' \
        '{"id":7,"method":"shutdown"}' > "$servedir/resp-$t.jsonl" \
        || { echo "pao call (threads $t) failed"; cat "$servedir/daemon-$t.log"; exit 1; }
    wait "$daemon" \
        || { echo "daemon (threads $t) exited non-zero"; cat "$servedir/daemon-$t.log"; exit 1; }
    [[ "$(wc -l < "$servedir/resp-$t.jsonl")" == 7 ]] \
        || { echo "expected 7 response lines (threads $t)"; exit 1; }
    python3 - "$servedir/resp-$t.jsonl" "$servedir/ref-$t.txt" << 'PY'
import json, sys
resp = [json.loads(l) for l in open(sys.argv[1])]  # strict-parse every line
ref = open(sys.argv[2]).read()
assert resp[0]['result']['dump'] == ref, 'daemon dump != one-shot analyze'
assert resp[1]['result']['selected'] is not None, 'pin has no access'
assert len(resp[2]['result']) == 2, 'batch must answer both sub-requests'
eco = resp[3]['result']
assert eco['eco_seq'] == 1 and eco['cache_misses'] == 0, f'ECO off fast path: {eco}'
assert resp[4]['result']['dump'] == ref, 'dump after no-op ECO diverged'
assert resp[5]['result']['symbol']['interned'] > 0, 'symbol gauges missing'
assert resp[6]['result']['ok'] is True, 'shutdown not acknowledged'
PY
done
# Byte-identity across thread counts: the one-shot dumps and every
# deterministic response line (stats — line 6 — reports measured phase
# fractions, so it is the one line allowed to differ).
cmp -s "$servedir/ref-1.txt" "$servedir/ref-4.txt" \
    || { echo "one-shot dumps diverged between 1 and 4 threads"; exit 1; }
diff <(sed -n '1,5p' "$servedir/resp-1.jsonl") \
     <(sed -n '1,5p' "$servedir/resp-4.jsonl") \
    || { echo "daemon responses diverged between 1 and 4 threads"; exit 1; }
echo "serve smoke gate: OK"
fi

echo "== serve soak gate =="
# Hardening contract (DESIGN.md §17): hostile traffic, kill -9 +
# journal replay, fault/stall degrade arms — short halves here; CI and
# scripts/soak_serve.sh default to longer ones.
if command -v python3 > /dev/null; then
    SOAK_SECS="${SOAK_SECS:-3}" scripts/soak_serve.sh
else
    echo "serve soak gate: skipped (no python3)"
fi

echo "== bench history =="
# The bench history appended by scripts/bench_steps.sh must stay valid
# JSON (a top-level array of run objects, or the legacy single object).
if [[ -f BENCH_pao.json ]]; then
    if command -v python3 > /dev/null; then
        python3 -c "
import json, sys
h = json.load(open('BENCH_pao.json'))
runs = h if isinstance(h, list) else [h]
# Three entry shapes share the history: step-bench runs (speedup +
# parallel phases), size_sweep runs (per-size matrix) and soak_serve
# runs (hostile-traffic soak summaries from scripts/soak_serve.sh).
assert runs, 'empty bench history'
for r in runs:
    assert 'workload' in r, 'entry missing workload'
    if r['workload'] == 'size_sweep':
        assert r.get('sizes'), 'size_sweep entry missing sizes'
    elif r['workload'] == 'soak_serve':
        assert r.get('soak'), 'soak_serve entry missing soak summary'
    else:
        assert 'speedup' in r, 'bench entry missing speedup'
print(f'BENCH_pao.json: {len(runs)} run(s), ok')
"
    else
        test -s BENCH_pao.json
    fi
fi

echo "verify: OK"
