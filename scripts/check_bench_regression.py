#!/usr/bin/env python3
"""Bench-history regression gate.

Compares the newest entry in BENCH_pao.json against the most recent
previous entry for the same workload on the same host class (matched by
`host_threads` — entries timed on different machines are not comparable)
and fails when parallel `total_s` regressed by more than the threshold.

Usage: check_bench_regression.py [BENCH_pao.json] [threshold_pct]

Exit codes: 0 ok / nothing to compare, 1 regression beyond threshold,
2 malformed history file.
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pao.json"
    threshold = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0
    try:
        with open(path) as f:
            hist = json.load(f)
    except FileNotFoundError:
        print(f"{path} not found; nothing to check")
        return 0
    except json.JSONDecodeError as e:
        print(f"error: {path} is not valid JSON: {e}", file=sys.stderr)
        return 2
    if isinstance(hist, dict):  # legacy single-object file
        hist = [hist]
    if not isinstance(hist, list) or not hist:
        print(f"{path} holds no runs; nothing to check")
        return 0

    # Only step-bench entries carry parallel.total_s; size_sweep entries
    # (per-size matrices), soak_serve entries (hostile-traffic soak
    # summaries, no timing baseline) and any future schema have their own
    # shape — skip them rather than crash, comparing the newest
    # *step-bench* run.
    steps = [h for h in hist if isinstance(h.get("parallel"), dict)]
    if not steps:
        print(f"{path} holds no step-bench runs; nothing to check")
        return 0
    newest = steps[-1]
    prev = next(
        (
            h
            for h in reversed(steps[:-1])
            if h.get("workload") == newest.get("workload")
            and h.get("host_threads") == newest.get("host_threads")
        ),
        None,
    )
    if prev is None:
        print(
            f"no previous same-host entry for workload "
            f"`{newest.get('workload')}`; nothing to compare"
        )
        return 0

    try:
        old = float(prev["parallel"]["total_s"])
        new = float(newest["parallel"]["total_s"])
    except (KeyError, TypeError, ValueError) as e:
        print(f"error: entry missing parallel.total_s: {e}", file=sys.stderr)
        return 2
    if old <= 0.0:
        print("previous total_s is zero; nothing to compare")
        return 0

    pct = 100.0 * (new - old) / old
    print(
        f"{newest.get('workload')}: parallel total_s "
        f"{old:.6f}s -> {new:.6f}s ({pct:+.1f}%, threshold +{threshold:.0f}%)"
    )
    if pct > threshold:
        print(
            f"FAIL: newest bench entry regressed total_s by {pct:.1f}% "
            f"(> {threshold:.0f}%) vs the previous same-host run",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
