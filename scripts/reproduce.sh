#!/usr/bin/env bash
# Full reproduction: build, test, regenerate every table/figure, run benches.
# Total wall time is dominated by Experiment 3 (full routing of
# ispd18s_test5) and the Criterion benches; use `tables -- all --fast` for
# a CI-sized pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== tables and figures (out/) =="
# pao-bench is excluded from the workspace so the workspace builds
# offline; its criterion dependency needs registry access once.
cargo run --release --manifest-path crates/bench/Cargo.toml --bin tables -- all

echo "== figure examples =="
cargo run --release --example coordinate_types
cargo run --release --example routed_def

echo "== step timings (offline, BENCH_pao.json) =="
scripts/bench_steps.sh

echo "== criterion benches =="
cargo bench --manifest-path crates/bench/Cargo.toml 2>&1 | tee bench_output.txt

echo "Done. See out/, test_output.txt, bench_output.txt, EXPERIMENTS.md."
