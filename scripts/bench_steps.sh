#!/usr/bin/env bash
# Times the three PAAF steps (std::time::Instant inside the oracle)
# single-threaded vs. parallel and appends the comparison to a history
# array in BENCH_pao.json, printing the delta against the previous run.
# Offline; uses the generated suite, no criterion.
#
# Usage: scripts/bench_steps.sh [case] [threads] [out.json]
#   case     testgen case name (smoke, ispd18s_test1..10, aes14);
#            default ispd18s_test2
#   threads  parallel worker count; default: all available cores
#   out      history file; default BENCH_pao.json
set -euo pipefail
cd "$(dirname "$0")/.."

CASE="${1:-ispd18s_test2}"
OUT="${3:-BENCH_pao.json}"
RUN="$(mktemp /tmp/pao_bench_XXXXXX.json)"
trap 'rm -f "$RUN"' EXIT
ARGS=(bench --case "$CASE" --out "$RUN")
if [[ -n "${2:-}" ]]; then
  ARGS+=(--threads "$2")
fi

cargo run --release -p pao-cli -- "${ARGS[@]}"

if command -v python3 > /dev/null; then
  python3 - "$RUN" "$OUT" <<'EOF'
import json, sys

run_path, out_path = sys.argv[1], sys.argv[2]
run = json.load(open(run_path))
try:
    hist = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    hist = []
if isinstance(hist, dict):  # legacy single-object file from older runs
    hist = [hist]

prev = next((h for h in reversed(hist) if h.get("workload") == run["workload"]), None)
hist.append(run)
with open(out_path, "w") as f:
    json.dump(hist, f, indent=2)
    f.write("\n")

# threads_effective (new field) is what the host can actually deliver;
# fall back to min(requested, host) for history entries predating it.
requested = run.get("threads_requested", run.get("threads", 1))
effective = run.get("threads_effective") or min(requested, run.get("host_threads", 1)) or 1
single_core = effective <= 1
if run.get("host_threads", 0) < requested:
    print(
        f"WARNING: host has only {run['host_threads']} hardware thread(s) but the\n"
        f"WARNING: parallel run asked for {requested} workers (effective {effective}) —\n"
        f"WARNING: wall-clock speedups below are meaningless on this machine\n"
        f"WARNING: (oversubscribed pool); counter identity and per-phase deltas\n"
        f"WARNING: remain valid.",
        file=sys.stderr,
    )

print(f"appended run #{len(hist)} ({run['workload']}) to {out_path}")
sel = run.get("select")
if sel:
    lookups = sel["cache_hits"] + sel["cache_misses"]
    rate = 100.0 * sel["cache_hits"] / lookups if lookups else 0.0
    print(
        f"  select     compat-cache {rate:.1f}% hit rate "
        f"({sel['cache_hits']}/{lookups}), {sel['probes']} probes, "
        f"{sel['edges_pruned']} edges pruned, {sel['pairs_far']} pairs far"
    )
if prev is None:
    print("no previous run for this workload; no delta to report")
else:
    for key in ("apgen_s", "pattern_s", "cluster_s", "total_s"):
        old, new = prev["parallel"][key], run["parallel"][key]
        pct = 100.0 * (new - old) / old if old else 0.0
        speedup = f"  {old / new:5.2f}x vs prev" if new else ""
        print(f"  {key:<10} {old:>9.6f}s -> {new:>9.6f}s  ({pct:+.1f}%){speedup}")
    if single_core:
        # One effective worker: baseline and "parallel" are the same
        # machine configuration, so the ratio is run-to-run noise.
        print(
            f"  speedup    {prev['speedup']:.3f} -> {run['speedup']:.3f} "
            "(single-core host: determinism check only, not a performance number)"
        )
    else:
        print(f"  speedup    {prev['speedup']:.3f} -> {run['speedup']:.3f}")
    # Deadline-mode run (infinite budget, every cancellation poll live):
    # the overhead of the anytime machinery, expected well under 1%.
    old_ov, new_ov = prev.get("deadline_overhead_pct"), run.get("deadline_overhead_pct")
    if new_ov is not None:
        shown = f"{old_ov:+.2f}% -> " if old_ov is not None else ""
        print(f"  deadline-mode overhead {shown}{new_ov:+.2f}%")
EOF
else
  # No python3: keep the raw run so nothing is lost, skip the history.
  cp "$RUN" "$OUT"
  echo "python3 not found; wrote single run to $OUT (no history append)"
fi
