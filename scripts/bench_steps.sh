#!/usr/bin/env bash
# Times the three PAAF steps (std::time::Instant inside the oracle)
# single-threaded vs. parallel and writes the comparison to
# BENCH_pao.json. Offline; uses the generated suite, no criterion.
#
# Usage: scripts/bench_steps.sh [case] [threads] [out.json]
#   case     testgen case name (smoke, ispd18s_test1..10, aes14);
#            default ispd18s_test2
#   threads  parallel worker count; default: all available cores
#   out      output path; default BENCH_pao.json
set -euo pipefail
cd "$(dirname "$0")/.."

CASE="${1:-ispd18s_test2}"
OUT="${3:-BENCH_pao.json}"
ARGS=(bench --case "$CASE" --out "$OUT")
if [[ -n "${2:-}" ]]; then
  ARGS+=(--threads "$2")
fi

cargo run --release -p pao-cli -- "${ARGS[@]}"
echo "wrote $OUT"
