#!/usr/bin/env bash
# Size-sweep benchmark matrix: runs `pao sweep` once per design size in
# a *separate process* (peak RSS is a per-process high-water mark, so
# sharing a process would let the largest size mask the smaller ones)
# and appends one `size_sweep` entry to the BENCH_pao.json history with
# per-size components / parse_s / per-phase seconds / peak_rss_mb.
#
# Usage: scripts/bench_sweep.sh [threads] [out.json]
#   threads  worker count per run; default: all available cores
#   out      history file; default BENCH_pao.json
#
# Sizes: ispd18s_test2 (~1.8k), scale_20k, scale_200k, and — because a
# million-component run needs ~3 GB RAM and ~a minute — scale_1m only
# when PAO_SWEEP_1M=1 is set.
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-$(nproc 2> /dev/null || echo 1)}"
OUT="${2:-BENCH_pao.json}"
DIR="$(mktemp -d /tmp/pao_sweep_XXXXXX)"
LINES="$DIR/lines.jsonl"
trap 'rm -rf "$DIR"' EXIT

cargo build --release -p pao-cli

SIZES=(ispd18s_test2 scale_20k scale_200k)
if [[ "${PAO_SWEEP_1M:-0}" == "1" ]]; then
  SIZES+=(scale_1m)
fi

for case in "${SIZES[@]}"; do
  target/release/pao sweep --case "$case" --threads "$THREADS" \
    --dir "$DIR" >> "$LINES"
done

if ! command -v python3 > /dev/null; then
  cp "$LINES" "$OUT.sweep.jsonl"
  echo "python3 not found; wrote raw lines to $OUT.sweep.jsonl (no history append)"
  exit 0
fi

python3 - "$LINES" "$OUT" "$THREADS" <<'EOF'
import datetime
import json
import os
import subprocess
import sys

lines_path, out_path, threads = sys.argv[1], sys.argv[2], int(sys.argv[3])
sizes = [json.loads(l) for l in open(lines_path) if l.strip()]
try:
    rev = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
except (OSError, subprocess.CalledProcessError):
    rev = None
entry = {
    "workload": "size_sweep",
    "threads": threads,
    "git_rev": rev,
    "host_threads": os.cpu_count() or 1,
    "timestamp": datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    ),
    "sizes": sizes,
}
try:
    hist = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    hist = []
if isinstance(hist, dict):
    hist = [hist]
hist.append(entry)
with open(out_path, "w") as f:
    json.dump(hist, f, indent=2)
    f.write("\n")
print(f"appended size_sweep run #{len(hist)} to {out_path}")
print(f"{'case':<16} {'comps':>9} {'parse_s':>8} {'total_s':>8} {'rss_mb':>7} {'aps':>6}")
for s in sizes:
    print(
        f"{s['case']:<16} {s['components']:>9} {s['parse_s']:>8.3f} "
        f"{s['total_s']:>8.3f} {str(s.get('peak_rss_mb', '-')):>7} "
        f"{s['total_aps']:>6}"
    )
EOF
